#pragma once
// The paper's proof-of-concept FSM: a phase-logic serial adder (Fig. 15).
//
// Combinational full adder from majority logic
//     cout = MAJ(a, b, carry),    sum = MAJ(a, b, carry, ~cout, ~cout)
// with the carry state held in a master-slave D flip-flop made of two
// oscillator latches.  Two realizations:
//   * phase-domain (core::PhaseSystem) — the efficient full-system
//     simulation of Sec. 4.3 / Fig. 16;
//   * circuit-level (SPICE DAE) — the "breadboard substitute" of Sec. 5.2 /
//     Figs. 18-20: ring oscillators, op-amp majority gates, calibrated
//     phase-shift coupling networks.

#include "phlogon/flipflop.hpp"
#include "phlogon/golden.hpp"

namespace phlogon::logic {

// ---------------------------------------------------------------------------
// Phase-domain realization
// ---------------------------------------------------------------------------

struct PhaseSerialAdder {
    core::PhaseSystem::SignalId a = -1, b = -1, clk = -1, clkBar = -1;
    core::PhaseSystem::SignalId cout = -1, sum = -1, coutBar = -1;
    PhaseDff dff;
    core::PhaseSystem::SignalId carry = -1;  ///< = dff.q2
    double bitPeriod = 0.0;
    std::size_t nBits = 0;
};

struct SerialAdderOptions {
    /// Bit-slot duration in reference cycles; each slot holds one (a, b)
    /// input pair.  CLK encodes 0 in the first half-slot (slave transparent,
    /// carry becomes available) and 1 in the second (master samples cout).
    double bitPeriodCycles = 100.0;
    double gateClip = 0.5;  ///< combinational gate saturation
    PhaseDLatchOptions latch{};
};

/// Build the serial adder into `sys` with input bit streams a, b (LSB
/// first).  The carry flip-flop starts at whatever dphi0 the caller passes
/// to simulate() (use the design's phase for carry=0).
PhaseSerialAdder buildPhaseSerialAdder(core::PhaseSystem& sys, const SyncLatchDesign& design,
                                       Bits aBits, Bits bBits,
                                       const SerialAdderOptions& opt = {});

/// Decode a (possibly gate-output) signal's phase-logic value near time
/// `tCenter` by correlating one reference cycle of the signal against the
/// two REF waveforms.
int decodeSignalBit(const core::PhaseSystem& sys, core::PhaseSystem::SignalId sig,
                    const PhaseReference& ref, double tCenter, const num::Vec& dphiAtT);

/// Decode every bit slot of a finished simulation: samples each slot at 90%
/// of its duration.  Returns {sums, couts}.
std::pair<Bits, Bits> decodeSerialAdderRun(const core::PhaseSystem& sys,
                                           const PhaseSerialAdder& adder,
                                           const core::PhaseSystem::Result& res,
                                           const PhaseReference& ref);

/// dphi vector interpolated from a simulation result at time t.
num::Vec dphiAt(const core::PhaseSystem::Result& res, double t);

// ---------------------------------------------------------------------------
// Circuit-level realization (breadboard substitute)
// ---------------------------------------------------------------------------

struct CircuitCouplingSpec {
    /// Transconductance of each gate-to-oscillator write path (A per volt of
    /// gate swing); total write current ~ 2 * gm * Vdd/2 when both S and R
    /// gates push the same phase.
    double gm = 50e-6 / 1.5;
};

struct SerialAdderCircuit {
    std::string aNode, bNode, clkNode, clkBarNode;
    std::string coutNode, coutBarNode, sumNode;
    std::string q1Node, q2Node;  ///< oscillator outputs (carry state)
    std::string refNode;         ///< REF waveform for 'scope comparison
    double bitPeriod = 0.0;
    std::size_t nBits = 0;
};

/// Resistive loads the FSM hangs on each oscillator latch output (two write
/// couplings plus two gate inputs).  Characterize the ring oscillator with
/// these (RingOscSpec::outputLoadsOhms) so the macromodel — and hence f1,
/// the lock phases and the coupling calibration — matches the latch as it
/// behaves inside the FSM.
std::vector<double> serialAdderLatchLoads(const CircuitCouplingSpec& coupling = {},
                                          double rf = 100e3);

/// Build the complete FSM netlist: two ring-oscillator latches with SYNC,
/// eight op-amp majority/NOT stages, phase-shift coupling networks (the
/// calibrated equivalent of the paper's inverting couplings) and
/// REF-aligned voltage sources for a, b, CLK and the constants.
/// `spec` must be the UNLOADED oscillator spec — the loads are the real
/// gates and couplings this builder instantiates (any outputLoadsOhms are
/// cleared); `design` should come from a characterization WITH
/// serialAdderLatchLoads().
SerialAdderCircuit buildSerialAdderCircuit(ckt::Netlist& nl, const SyncLatchDesign& design,
                                           const ckt::RingOscSpec& spec, Bits aBits, Bits bBits,
                                           const SerialAdderOptions& opt = {},
                                           const CircuitCouplingSpec& coupling = {});

/// Couple voltage node `from` into oscillator node `to` as an injected
/// current of magnitude |gm| * swing and phase shift `deltaCycles` at f1
/// (realized with an optional inverting stage plus a first-order RC lead or
/// lag network, gain-compensated at f1).
void buildPhaseShiftCoupling(ckt::Netlist& nl, const std::string& prefix, const std::string& from,
                             const std::string& to, const std::string& biasNode, double gm,
                             double deltaCycles, double f1, ckt::OpampParams opamp = {});

}  // namespace phlogon::logic
