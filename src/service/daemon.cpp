#include "service/daemon.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

#include "obs/log.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "service/shutdown.hpp"

namespace phlogon::svc {

namespace json = io::json;

namespace {

int makeUnixListener(const std::string& path, std::string& err) {
    sockaddr_un addr = {};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = "socket: " + std::string(std::strerror(errno));
        return -1;
    }
    ::unlink(path.c_str());  // stale socket from a previous run
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        err = "bind/listen " + path + ": " + std::string(std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int makeTcpListener(int port, int& boundPort, std::string& err) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = "socket: " + std::string(std::strerror(errno));
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        err = "bind/listen 127.0.0.1:" + std::to_string(port) + ": " +
              std::string(std::strerror(errno));
        ::close(fd);
        return -1;
    }
    sockaddr_in bound = {};
    socklen_t len = sizeof bound;
    boundPort = ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0
                    ? ntohs(bound.sin_port)
                    : port;
    return fd;
}

json::Value snapshotJson(const JobSnapshot& s) {
    json::Value j = json::Value::object();
    j.set("job", json::Value::integer(static_cast<std::int64_t>(s.id)));
    j.set("type", json::Value::string(s.type));
    j.set("state", json::Value::string(jobStateName(s.state)));
    j.set("priority", json::Value::integer(s.priority));
    if (!s.traceId.empty()) j.set("traceId", s.traceId);
    if (s.progressTotal > 0) {
        json::Value prog = json::Value::object();
        prog.set("done", json::Value::integer(static_cast<std::int64_t>(s.progressDone)));
        prog.set("total", json::Value::integer(static_cast<std::int64_t>(s.progressTotal)));
        j.set("progress", prog);
    }
    j.set("queuedMs", json::Value::number(s.queuedMs));
    j.set("runMs", json::Value::number(s.runMs));
    if (!s.result.isNull()) j.set("result", s.result);
    if (!s.error.empty()) j.set("jobError", json::Value::string(s.error));
    return j;
}

/// params.job as a u64 id, or 0 when absent/invalid.
std::uint64_t jobIdParam(const Request& req) {
    const double v = req.params.fieldNumber("job", 0.0);
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

}  // namespace

Daemon::Daemon(const DaemonOptions& opt)
    : opt_(opt),
      cache_(opt.cacheDir.empty() ? io::ArtifactCache()
                                  : io::ArtifactCache(opt.cacheDir, opt.cacheMaxBytes)) {
    env_.cache = &cache_;
    env_.checkpointDir = opt_.checkpointDir;
    if (!opt_.checkpointDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt_.checkpointDir, ec);
    }
    // The queue's lifecycle hooks feed the windowed latency state; `this`
    // outlives the queue (member destruction order), so capturing it is safe.
    opt_.queue.onJobStarted = [this](const JobSnapshot& s) { jobStartedHook(s); };
    opt_.queue.onJobFinished = [this](const JobSnapshot& s) { jobFinishedHook(s); };
    queue_ = std::make_unique<JobQueue>(opt_.queue);
}

Daemon::~Daemon() { stop(JobQueue::Shutdown::Checkpoint); }

bool Daemon::start() {
    if (started_) return true;
    startTime_ = std::chrono::steady_clock::now();
    if (!opt_.socketPath.empty()) {
        const int fd = makeUnixListener(opt_.socketPath, lastError_);
        if (fd >= 0) listenFds_.push_back(fd);
    }
    if (opt_.tcpPort >= 0) {
        const int fd = makeTcpListener(opt_.tcpPort, boundTcpPort_, lastError_);
        if (fd >= 0) listenFds_.push_back(fd);
    }
    // A configured listener that failed to bind is fatal; configuring no
    // listener at all is the dispatch-only mode tests and embedders use.
    const bool wantListener = !opt_.socketPath.empty() || opt_.tcpPort >= 0;
    if (wantListener && listenFds_.empty()) return false;
    started_ = true;
    accepting_ = true;
    for (const int fd : listenFds_) acceptThreads_.emplace_back([this, fd] { acceptLoop(fd); });
    PHLOGON_LOG_INFO("service.start", {"socket", opt_.socketPath},
                     {"tcpPort", boundTcpPort_},
                     {"workers", static_cast<std::uint64_t>(queue_->workers())},
                     {"maxDepth", static_cast<std::uint64_t>(opt_.queue.maxDepth)});
    return true;
}

int Daemon::run() {
    if (!started_ && !start()) return 1;
    JobQueue::Shutdown mode;
    {
        // Poll both wakeup sources: requestStop() (shutdown requests) and
        // the async-signal latch (SIGINT/SIGTERM → checkpointing stop).
        std::unique_lock<std::mutex> lock(stopMu_);
        while (!stopRequested_) {
            if (ShutdownSignal::instance().requested()) {
                stopRequested_ = true;
                stopMode_ = JobQueue::Shutdown::Checkpoint;
                break;
            }
            stopCv_.wait_for(lock, std::chrono::milliseconds(50),
                             [this] { return stopRequested_; });
        }
        mode = stopMode_;
    }
    stop(mode);
    return 0;
}

void Daemon::requestStop(JobQueue::Shutdown mode) {
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        stopRequested_ = true;
        stopMode_ = mode;
    }
    stopCv_.notify_all();
}

void Daemon::stop(JobQueue::Shutdown mode) {
    if (!started_ || stopped_.exchange(true)) return;
    PHLOGON_LOG_INFO("service.shutdown",
                     {"mode", mode == JobQueue::Shutdown::Drain ? "drain" : "checkpoint"});
    // 1. Stop accepting: closing the listeners kicks the accept threads out.
    accepting_ = false;
    for (const int fd : listenFds_) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    for (std::thread& t : acceptThreads_)
        if (t.joinable()) t.join();
    acceptThreads_.clear();
    listenFds_.clear();
    if (!opt_.socketPath.empty()) ::unlink(opt_.socketPath.c_str());

    // 2. Wind down the queue.  Drain lets connection threads blocked in
    // wait() answer their clients with completed results first; Checkpoint
    // has running jobs snapshot and return Cancelled.
    queue_->shutdown(mode);

    // 3. Unblock idle connection readers and join everyone.
    std::vector<std::unique_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        conns.swap(conns_);
    }
    for (const auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
    for (const auto& c : conns) {
        if (c->thread.joinable()) c->thread.join();
        ::close(c->fd);
    }
    PHLOGON_LOG_INFO("service.stopped",
                     {"requests", stats().requests});
#ifndef PHLOGON_NO_OBS
    obs::Logger::instance().flush();
#endif
}

void Daemon::acceptLoop(int listenFd) {
    while (accepting_) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // listener closed (stop) or fatal
        }
        if (!accepting_) {
            ::close(fd);
            return;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        Conn* raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(connMu_);
            // Reap finished connections so a long-lived daemon doesn't
            // accumulate joined-out thread objects.
            for (auto it = conns_.begin(); it != conns_.end();) {
                if ((*it)->done.load(std::memory_order_acquire)) {
                    if ((*it)->thread.joinable()) (*it)->thread.join();
                    ::close((*it)->fd);
                    it = conns_.erase(it);
                } else {
                    ++it;
                }
            }
            conns_.push_back(std::move(conn));
        }
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++stats_.connections;
        }
        PHLOGON_LOG_DEBUG("service.conn.accept", {"fd", fd});
        raw->thread = std::thread([this, raw] {
            serveConnection(raw->fd);
            // Half-close so the peer sees EOF immediately; the fd itself is
            // closed by the reaper above (or stop()), its single owner.
            ::shutdown(raw->fd, SHUT_RDWR);
            raw->done.store(true, std::memory_order_release);
        });
    }
}

void Daemon::serveConnection(int fd) {
    OBS_SPAN("service.connection");
    for (;;) {
        const FrameRead frame = readFrame(fd);
        switch (frame.status) {
            case FrameStatus::Ok: break;
            case FrameStatus::Eof:
                return;
            case FrameStatus::Truncated:
            case FrameStatus::TooLarge: {
                {
                    std::lock_guard<std::mutex> lock(statsMu_);
                    ++stats_.badFrames;
                }
                PHLOGON_LOG_WARN("service.conn.badFrame",
                                 {"status", frameStatusName(frame.status)});
                // Best-effort structured error, then drop the connection —
                // after a bad prefix the stream has no frame boundary left.
                const char* code = frame.status == FrameStatus::TooLarge ? "frame-too-large"
                                                                         : "truncated-frame";
                writeFrame(fd, json::dump(makeError(json::Value::null(), code,
                                                    "unrecoverable framing error: " +
                                                        frameStatusName(frame.status))));
                return;
            }
            case FrameStatus::IoError:
                return;
        }
        const std::string response = dispatch(frame.payload);
        if (!writeFrame(fd, response)) return;
    }
}

std::string Daemon::dispatch(const std::string& payload) {
    const auto t0 = std::chrono::steady_clock::now();
    const Request req = parseRequest(payload);
    // Install the client's trace context before opening the request span so
    // the span (and everything recorded inside handle()) carries it.  The
    // job id is not known yet — the worker installs its own context.
    std::uint32_t traceRef = 0;
    if (obs::traceEnabled() && req.ok && !req.traceId.empty())
        traceRef = obs::Tracer::instance().internTraceId(req.traceId);
    obs::TraceContextScope traceScope(traceRef, 0);
    json::Value response;
    {
        OBS_SPAN("service.request");
        response = req.ok ? handle(req) : makeError(req.id, req.errorCode, req.errorMessage);
        attachObs(response, req);
    }
    const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    requestWall_.observe(wall);
    requestWindow_.observe(wall);
    const bool okResponse = response.fieldBool("ok", true);
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.requests;
        if (!okResponse) ++stats_.errors;
    }
    PHLOGON_COUNT_METRIC("service.requests");
    if (!okResponse) {
        std::string code = req.errorCode;
        if (const json::Value* err = response.field("error"))
            code = err->fieldString("code", code);
        PHLOGON_LOG_WARN("service.request.error",
                         {"type", req.ok ? req.type : std::string("<parse>")},
                         {"code", code}, {"traceId", req.traceId});
    } else {
        PHLOGON_LOG_DEBUG("service.request.done", {"type", req.type},
                          {"ms", wall * 1e3}, {"traceId", req.traceId});
    }
    return json::dump(response);
}

json::Value Daemon::handle(const Request& req) {
    if (req.type == "ping") {
        json::Value r = makeResponse(req.id);
        r.set("pong", json::Value::boolean(true));
        return r;
    }
    if (req.type == "status") {
        json::Value r = makeResponse(req.id);
        r.set("status", statusJson());
        return r;
    }
    if (req.type == "metrics") return handleMetrics(req);
    if (req.type == "list-jobs") {
        json::Value r = makeResponse(req.id);
        json::Value arr = json::Value::array();
        for (const JobSnapshot& s : queue_->list()) arr.push(snapshotJson(s));
        r.set("jobs", arr);
        return r;
    }
    if (req.type == "job-status") {
        const std::uint64_t id = jobIdParam(req);
        const auto snap = id ? queue_->find(id) : std::nullopt;
        if (!snap) return makeError(req.id, "unknown-job", "no such job");
        json::Value r = makeResponse(req.id);
        r.set("job", snapshotJson(*snap));
        return r;
    }
    if (req.type == "cancel") {
        const std::uint64_t id = jobIdParam(req);
        if (!id || !queue_->cancel(id))
            return makeError(req.id, "unknown-job", "no such job (or already terminal)");
        json::Value r = makeResponse(req.id);
        r.set("cancelled", json::Value::integer(static_cast<std::int64_t>(id)));
        return r;
    }
    if (req.type == "shutdown") {
        const std::string mode = req.params.fieldString("mode", "checkpoint");
        if (mode != "checkpoint" && mode != "drain")
            return makeError(req.id, "bad-params", "\"mode\" must be \"checkpoint\" or \"drain\"");
        requestStop(mode == "drain" ? JobQueue::Shutdown::Drain : JobQueue::Shutdown::Checkpoint);
        json::Value r = makeResponse(req.id);
        r.set("stopping", json::Value::string(mode));
        return r;
    }
    return handleSubmit(req);
}

json::Value Daemon::handleSubmit(const Request& req) {
    BuiltJob built = buildJob(req.type, req.params, env_);
    if (!built.ok) return makeError(req.id, built.errorCode, built.errorMessage);
    const SubmitResult sub =
        queue_->submit(req.type, req.priority, std::move(built.body), req.traceId);
    if (!sub.accepted) {
        json::Value r = makeError(req.id, "queue-full",
                                  "queue at capacity; retry after retryAfterMs");
        r.set("retryAfterMs", json::Value::integer(sub.retryAfterMs));
        return r;
    }
    // Flow start on the connection thread, inside the service.request span;
    // the worker's matching finish binds it to the job slice.
    if (obs::traceEnabled() && !req.traceId.empty())
        obs::Tracer::instance().recordFlow("service.job.dispatch",
                                           jobFlowId(req.traceId, sub.id), true);
    PHLOGON_ADD_METRIC("service.queue.depthSum", queue_->stats().depth);
    if (!req.wait) {
        json::Value r = makeResponse(req.id);
        r.set("job", json::Value::integer(static_cast<std::int64_t>(sub.id)));
        r.set("state", json::Value::string("queued"));
        return r;
    }
    const auto snap = queue_->wait(sub.id);
    if (!snap) return makeError(req.id, "internal", "job vanished");
    if (snap->state == JobState::Failed) {
        json::Value r = makeError(req.id, "job-failed", snap->error);
        r.set("job", snapshotJson(*snap));
        return r;
    }
    json::Value r = makeResponse(req.id);
    r.set("job", snapshotJson(*snap));
    return r;
}

json::Value Daemon::statusJson() {
    json::Value s = json::Value::object();
    s.set("uptimeSeconds",
          json::Value::number(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                            startTime_)
                                  .count()));
    json::Value types = json::Value::array();
    for (const std::string& t : jobTypes()) types.push(json::Value::string(t));
    s.set("types", types);

    const QueueStats q = queue_->stats();
    json::Value qj = json::Value::object();
    qj.set("workers", json::Value::integer(static_cast<std::int64_t>(queue_->workers())));
    qj.set("depth", json::Value::integer(static_cast<std::int64_t>(q.depth)));
    qj.set("running", json::Value::integer(static_cast<std::int64_t>(q.running)));
    qj.set("submitted", json::Value::integer(static_cast<std::int64_t>(q.submitted)));
    qj.set("rejected", json::Value::integer(static_cast<std::int64_t>(q.rejected)));
    qj.set("completed", json::Value::integer(static_cast<std::int64_t>(q.completed)));
    qj.set("failed", json::Value::integer(static_cast<std::int64_t>(q.failed)));
    qj.set("cancelled", json::Value::integer(static_cast<std::int64_t>(q.cancelled)));
    s.set("queue", qj);

    const io::CacheStats c = cache_.stats();
    json::Value cj = json::Value::object();
    cj.set("enabled", json::Value::boolean(cache_.enabled()));
    cj.set("hits", json::Value::integer(static_cast<std::int64_t>(c.hits)));
    cj.set("misses", json::Value::integer(static_cast<std::int64_t>(c.misses)));
    cj.set("stores", json::Value::integer(static_cast<std::int64_t>(c.stores)));
    cj.set("evictions", json::Value::integer(static_cast<std::int64_t>(c.evictions)));
    const std::uint64_t lookups = c.hits + c.misses;
    if (lookups > 0)
        cj.set("hitRate", json::Value::number(static_cast<double>(c.hits) /
                                              static_cast<double>(lookups)));
    s.set("cache", cj);

    DaemonStats d = stats();
    json::Value dj = json::Value::object();
    dj.set("requests", json::Value::integer(static_cast<std::int64_t>(d.requests)));
    dj.set("errors", json::Value::integer(static_cast<std::int64_t>(d.errors)));
    dj.set("badFrames", json::Value::integer(static_cast<std::int64_t>(d.badFrames)));
    dj.set("connections", json::Value::integer(static_cast<std::int64_t>(d.connections)));
    s.set("daemon", dj);

    // Trailing-window latency (the operator's "now" view); the lifetime
    // aggregates survive as a sub-object for run-total accounting.
    const obs::WindowedHistogram::Stats rw = requestWindow_.stats();
    json::Value lat = json::Value::object();
    lat.set("count", rw.count);
    lat.set("windowSeconds", rw.windowSeconds);
    lat.set("ratePerSec", rw.ratePerSec);
    lat.set("p50Ms", rw.p50Seconds * 1e3);
    lat.set("p95Ms", rw.p95Seconds * 1e3);
    lat.set("p99Ms", rw.p99Seconds * 1e3);
    json::Value lifetime = json::Value::object();
    lifetime.set("count", json::Value::integer(static_cast<std::int64_t>(requestWall_.count())));
    lifetime.set("p50Ms", requestWall_.quantileSeconds(0.50) * 1e3);
    lifetime.set("p95Ms", requestWall_.quantileSeconds(0.95) * 1e3);
    lifetime.set("p99Ms", requestWall_.quantileSeconds(0.99) * 1e3);
    lat.set("lifetime", lifetime);
    s.set("latency", lat);

    // Per-job-type windowed breakdown: end-to-end wall plus the queue-wait
    // component, so "slow jobs" and "starved jobs" are distinguishable.
    json::Value windows = json::Value::object();
    json::Value recent = json::Value::array();
    {
        std::lock_guard<std::mutex> lock(windowMu_);
        for (const auto& [type, tw] : typeWindows_) {
            const obs::WindowedHistogram::Stats w = tw.wall.stats();
            const obs::WindowedHistogram::Stats qw = tw.queueWait.stats();
            json::Value t = json::Value::object();
            t.set("finished", tw.finished);
            t.set("n", w.count);
            t.set("ratePerSec", w.ratePerSec);
            t.set("p50Ms", w.p50Seconds * 1e3);
            t.set("p95Ms", w.p95Seconds * 1e3);
            t.set("p99Ms", w.p99Seconds * 1e3);
            t.set("maxMs", w.maxSeconds * 1e3);
            t.set("queueWaitP50Ms", qw.p50Seconds * 1e3);
            t.set("queueWaitP95Ms", qw.p95Seconds * 1e3);
            windows.set(type, t);
        }
        for (const JobSnapshot& snap : recent_) recent.push(snapshotJson(snap));
    }
    s.set("window", windows);
    s.set("recent", recent);
    return s;
}

json::Value Daemon::handleMetrics(const Request& req) {
    json::Value r = makeResponse(req.id);
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();

    json::Value m = json::Value::object();
    json::Value counters = json::Value::object();
    for (const auto& c : snap.counters) counters.set(c.name, c.value);
    m.set("counters", counters);
    json::Value gauges = json::Value::object();
    for (const auto& g : snap.gauges) {
        json::Value gv = json::Value::object();
        gv.set("value", json::Value::integer(g.value));
        gv.set("max", json::Value::integer(g.max));
        gauges.set(g.name, gv);
    }
    m.set("gauges", gauges);
    json::Value hists = json::Value::object();
    for (const auto& h : snap.histograms) {
        json::Value hv = json::Value::object();
        hv.set("count", h.count);
        hv.set("totalSeconds", h.totalSeconds);
        hv.set("p50Seconds", h.p50Seconds);
        hv.set("p95Seconds", h.p95Seconds);
        hv.set("maxSeconds", h.maxSeconds);
        hists.set(h.name, hv);
    }
    m.set("histograms", hists);
    r.set("metrics", m);
    r.set("status", statusJson());
    r.set("prometheus", obs::prometheusText(snap) + servicePrometheus());
    return r;
}

std::string Daemon::servicePrometheus() {
    std::string out;
    char buf[160];
    auto line = [&](const char* name, double v) {
        std::snprintf(buf, sizeof buf, "%s %.9g\n", name, v);
        out += buf;
    };
    const DaemonStats d = stats();
    const QueueStats q = queue_->stats();
    const io::CacheStats c = cache_.stats();
    out += "# TYPE phlogon_service_requests_total counter\n";
    line("phlogon_service_requests_total", static_cast<double>(d.requests));
    line("phlogon_service_errors_total", static_cast<double>(d.errors));
    line("phlogon_service_connections_total", static_cast<double>(d.connections));
    out += "# TYPE phlogon_service_queue_depth gauge\n";
    line("phlogon_service_queue_depth", static_cast<double>(q.depth));
    line("phlogon_service_queue_running", static_cast<double>(q.running));
    line("phlogon_service_cache_hits_total", static_cast<double>(c.hits));
    line("phlogon_service_cache_misses_total", static_cast<double>(c.misses));
    const obs::WindowedHistogram::Stats rw = requestWindow_.stats();
    out += "# TYPE phlogon_service_request_seconds summary\n";
    line("phlogon_service_request_seconds{quantile=\"0.5\"}", rw.p50Seconds);
    line("phlogon_service_request_seconds{quantile=\"0.95\"}", rw.p95Seconds);
    line("phlogon_service_request_seconds{quantile=\"0.99\"}", rw.p99Seconds);
    line("phlogon_service_request_seconds_count", static_cast<double>(rw.count));
    std::lock_guard<std::mutex> lock(windowMu_);
    for (const auto& [type, tw] : typeWindows_) {
        const obs::WindowedHistogram::Stats w = tw.wall.stats();
        for (const auto& [q2, v] :
             {std::pair<const char*, double>{"0.5", w.p50Seconds},
              {"0.95", w.p95Seconds},
              {"0.99", w.p99Seconds}}) {
            std::snprintf(buf, sizeof buf,
                          "phlogon_service_job_seconds{type=\"%s\",quantile=\"%s\"} %.9g\n",
                          type.c_str(), q2, v);
            out += buf;
        }
        std::snprintf(buf, sizeof buf,
                      "phlogon_service_job_seconds_count{type=\"%s\"} %llu\n", type.c_str(),
                      static_cast<unsigned long long>(w.count));
        out += buf;
    }
    return out;
}

void Daemon::jobStartedHook(const JobSnapshot& s) {
    std::lock_guard<std::mutex> lock(windowMu_);
    typeWindows_[s.type].queueWait.observe(s.queuedMs / 1e3);
}

void Daemon::jobFinishedHook(const JobSnapshot& s) {
    const double wallMs = s.queuedMs + s.runMs;
    {
        std::lock_guard<std::mutex> lock(windowMu_);
        TypeWindow& tw = typeWindows_[s.type];
        tw.wall.observe(wallMs / 1e3);
        ++tw.finished;
        JobSnapshot lean = s;
        lean.result = json::Value();  // keep the ring cheap: timings only
        recent_.push_back(std::move(lean));
        if (recent_.size() > kRecentJobs) recent_.pop_front();
    }
    if (s.runMs >= opt_.slowJobMs) {
        PHLOGON_LOG_WARN("service.job.slow", {"job", s.id}, {"type", s.type},
                         {"runMs", s.runMs}, {"queuedMs", s.queuedMs},
                         {"traceId", s.traceId});
    }
}

void Daemon::attachObs(io::json::Value& response, const Request& req) {
    json::Value envl = json::Value::object();
    const QueueStats q = queue_->stats();
    envl.set("queueDepth", json::Value::integer(static_cast<std::int64_t>(q.depth)));
    envl.set("running", json::Value::integer(static_cast<std::int64_t>(q.running)));
    const io::CacheStats c = cache_.stats();
    envl.set("cacheHits", json::Value::integer(static_cast<std::int64_t>(c.hits)));
    envl.set("cacheMisses", json::Value::integer(static_cast<std::int64_t>(c.misses)));
    envl.set("requestP95Ms", requestWindow_.stats().p95Seconds * 1e3);
    if (req.fullEnvelope && obs::metricsEnabled()) {
        // Full structured run report (counters, gauges, histograms across
        // every instrumented layer) — already JSON, parsed into the tree.
        // Opt-in per request: collecting + parsing it on every response was
        // a measurable tax on the saturation bench.
        const json::ParseResult rep = json::parse(obs::RunReport::collect().toJson());
        if (rep.ok) envl.set("report", rep.value);
    }
    response.set("obs", envl);
}

DaemonStats Daemon::stats() const {
    std::lock_guard<std::mutex> lock(statsMu_);
    DaemonStats d = stats_;
    std::lock_guard<std::mutex> lock2(connMu_);
    d.activeConnections = conns_.size();
    return d;
}

}  // namespace phlogon::svc
