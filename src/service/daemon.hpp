#pragma once
// phlogond: the long-running characterization/simulation service.
//
// One Daemon owns
//   * the listening sockets (Unix-domain and/or loopback TCP),
//   * the bounded priority JobQueue and its workers,
//   * the shared ArtifactCache every request's characterization goes
//     through (repeat requests for the same oscillator spec are cache
//     hits regardless of which connection asked),
//   * the checkpoint directory long jobs snapshot into.
//
// Threading model: one accept thread per listening socket; one thread per
// connection running a readFrame → dispatch → writeFrame loop.  Analysis
// requests are admitted into the queue; `"wait": true` (the default)
// blocks the *connection* thread on the job, never a worker.  Control
// requests (status, list-jobs, cancel, shutdown, ping) are answered
// inline.
//
// Every response carries an observability envelope: the job's state and
// timings, cumulative queue/cache/latency summaries, and — when metrics
// are enabled — the full obs::RunReport as a JSON object under "obs".
//
// Shutdown (request or SIGINT/SIGTERM via ShutdownSignal + run()):
// stop accepting, then either Drain (run the backlog dry) or Checkpoint
// (cancel queued jobs, have running jobs write their §11 snapshot and
// return), answer the still-connected waiters, close connections, exit 0.
// A Checkpoint-stopped job resumes from its snapshot when resubmitted to
// the next daemon instance — bit-identically (tests/service).

#include <cstdint>
#include <filesystem>
#include <string>

#include "io/cache.hpp"
#include "obs/metrics.hpp"
#include "service/job_queue.hpp"
#include "service/jobs.hpp"
#include "service/protocol.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace phlogon::svc {

struct DaemonOptions {
    /// Unix-domain socket path; empty disables the Unix listener.
    std::string socketPath;
    /// Loopback TCP port: -1 disables, 0 binds an ephemeral port
    /// (read back via tcpPort()).
    int tcpPort = -1;
    JobQueue::Options queue;
    /// Artifact cache directory; empty = disabled cache (every
    /// characterization recomputes).
    std::filesystem::path cacheDir;
    std::uintmax_t cacheMaxBytes = io::ArtifactCache::kDefaultMaxBytes;
    /// Job checkpoint directory; empty disables checkpointing.
    std::filesystem::path checkpointDir;
    /// Jobs running at least this long get a "service.job.slow" warn log
    /// record and lead the status/"recent" slow-job list.
    double slowJobMs = 1000.0;
};

struct DaemonStats {
    std::uint64_t requests = 0;       ///< frames dispatched
    std::uint64_t errors = 0;         ///< error responses sent
    std::uint64_t badFrames = 0;      ///< truncated/oversized frames
    std::uint64_t connections = 0;    ///< accepted over the lifetime
    std::size_t activeConnections = 0;
};

class Daemon {
public:
    explicit Daemon(const DaemonOptions& opt);
    ~Daemon();
    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Bind, listen and start the accept/worker threads.  False (with a
    /// diagnostic in lastError()) when no listener could be bound.
    bool start();

    /// Serve until a shutdown is requested (a "shutdown" request, or
    /// ShutdownSignal once installed), then stop with the requested mode.
    /// Returns 0 on a clean exit — the daemon's whole main().
    int run();

    /// Stop accepting, wind down the queue per `mode`, close connections.
    /// Idempotent.
    void stop(JobQueue::Shutdown mode = JobQueue::Shutdown::Checkpoint);

    /// Ask run() to wind down (same as receiving a "shutdown" request).
    void requestStop(JobQueue::Shutdown mode);

    bool running() const { return started_ && !stopped_; }
    const std::string& lastError() const { return lastError_; }
    const std::string& socketPath() const { return opt_.socketPath; }
    /// Actual TCP port (after ephemeral binding); -1 when disabled.
    int tcpPort() const { return boundTcpPort_; }

    const io::ArtifactCache& cache() const { return cache_; }
    JobQueue& queue() { return *queue_; }
    DaemonStats stats() const;

    /// Dispatch one request payload to a response payload — the exact
    /// per-frame path of a connection thread, callable without a socket
    /// (unit tests, in-process harnesses).
    std::string dispatch(const std::string& payload);

private:
    void acceptLoop(int listenFd);
    void serveConnection(int fd);
    io::json::Value statusJson();
    io::json::Value handle(const Request& req);
    io::json::Value handleSubmit(const Request& req);
    io::json::Value handleMetrics(const Request& req);
    /// Cheap envelope always (queue depth, cache counters, windowed p95);
    /// the full RunReport only when the request asked for "envelope":"full"
    /// and metrics are enabled — building and JSON-parsing the report on
    /// every response was measurable on the saturation bench.
    void attachObs(io::json::Value& response, const Request& req);
    void jobStartedHook(const JobSnapshot& s);
    void jobFinishedHook(const JobSnapshot& s);
    std::string servicePrometheus();

    DaemonOptions opt_;
    io::ArtifactCache cache_;
    JobEnv env_;
    std::unique_ptr<JobQueue> queue_;
    std::string lastError_;

    std::vector<int> listenFds_;
    std::vector<std::thread> acceptThreads_;
    int boundTcpPort_ = -1;

    struct Conn {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };
    mutable std::mutex connMu_;
    std::vector<std::unique_ptr<Conn>> conns_;

    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> accepting_{false};

    mutable std::mutex stopMu_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    JobQueue::Shutdown stopMode_ = JobQueue::Shutdown::Checkpoint;

    std::chrono::steady_clock::time_point startTime_;
    mutable std::mutex statsMu_;
    DaemonStats stats_;
    obs::Histogram requestWall_;  ///< per-request latency, lifetime aggregate

    /// Trailing-window latency state (status/"metrics"/phlogon_top read it;
    /// job-queue lifecycle hooks feed it).  windowMu_ guards the map shape
    /// and the recent ring; the histograms lock internally.
    obs::WindowedHistogram requestWindow_;  ///< dispatch wall, all requests
    struct TypeWindow {
        obs::WindowedHistogram wall;       ///< queuedMs + runMs per job
        obs::WindowedHistogram queueWait;  ///< queuedMs, observed at start
        std::uint64_t finished = 0;
    };
    mutable std::mutex windowMu_;
    std::map<std::string, TypeWindow> typeWindows_;
    /// Last finished jobs, results dropped (id/type/timing/traceId only).
    static constexpr std::size_t kRecentJobs = 32;
    std::deque<JobSnapshot> recent_;
};

}  // namespace phlogon::svc
