#include "service/job_queue.hpp"

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phlogon::svc {

namespace {
double msBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}
}  // namespace

std::string jobStateName(JobState s) {
    switch (s) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Done: return "done";
        case JobState::Failed: return "failed";
        case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

JobQueue::JobQueue(const Options& opt) : opt_(opt) {
    if (opt_.workers == 0) opt_.workers = 1;
    threads_.reserve(opt_.workers);
    for (std::size_t i = 0; i < opt_.workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

JobQueue::~JobQueue() { shutdown(Shutdown::Checkpoint); }

SubmitResult JobQueue::submit(const std::string& type, int priority, JobBody body,
                              const std::string& traceId) {
    SubmitResult res;
    std::shared_ptr<Record> rec;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
            res.retryAfterMs = opt_.retryAfterMs;
            ++stats_.rejected;
            return res;
        }
        if (ready_.size() >= opt_.maxDepth) {
            res.retryAfterMs = opt_.retryAfterMs;
            ++stats_.rejected;
            PHLOGON_COUNT_METRIC("service.queue.rejected");
            PHLOGON_LOG_WARN("service.queue.full", {"type", type},
                             {"depth", static_cast<std::uint64_t>(ready_.size())});
            return res;
        }
        rec = std::make_shared<Record>();
        rec->id = nextId_++;
        rec->type = type;
        rec->traceId = traceId;
        rec->priority = priority;
        rec->body = std::move(body);
        rec->submitted = std::chrono::steady_clock::now();
        jobs_.emplace(rec->id, rec);
        ready_.emplace(-priority, rec->id);
        ++stats_.submitted;
        res.accepted = true;
        res.id = rec->id;
    }
    PHLOGON_COUNT_METRIC("service.queue.submitted");
    cv_.notify_one();
    return res;
}

void JobQueue::workerLoop() {
    for (;;) {
        std::shared_ptr<Record> rec;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
            if (ready_.empty()) return;  // stopping_ and nothing left to run
            if (abandonQueued_) {
                // Checkpoint shutdown: flush the backlog as Cancelled.
                while (!ready_.empty()) {
                    auto it = ready_.begin();
                    auto& r = *jobs_.at(it->second);
                    ready_.erase(it);
                    r.state = JobState::Cancelled;
                    r.finished = std::chrono::steady_clock::now();
                    ++stats_.cancelled;
                }
                cv_.notify_all();
                continue;
            }
            auto it = ready_.begin();
            rec = jobs_.at(it->second);
            ready_.erase(it);
            rec->state = JobState::Running;
            rec->started = std::chrono::steady_clock::now();
            ++running_;
        }

        // Re-establish the submitting client's trace context on this worker
        // thread: every span/instant/log the body emits inherits it.
        obs::TraceContext jobCtx;
        jobCtx.jobId = rec->id;
#ifndef PHLOGON_NO_OBS
        if (obs::traceEnabled() && !rec->traceId.empty())
            jobCtx.traceRef = obs::Tracer::instance().internTraceId(rec->traceId);
#endif
        obs::TraceContextScope traceScope(jobCtx.traceRef, jobCtx.jobId);

#ifndef PHLOGON_NO_OBS
        if (obs::traceEnabled()) {
            // Queue-wait span with explicit endpoints (submit -> start): the
            // record's clocks are the trace clock, so this back-dates cleanly.
            const auto toNs = [](std::chrono::steady_clock::time_point t) {
                return std::chrono::duration_cast<std::chrono::nanoseconds>(
                           t.time_since_epoch())
                    .count();
            };
            obs::Tracer::instance().recordSpan("service.queueWait", toNs(rec->submitted),
                                               toNs(rec->started));
        }
#endif

        if (opt_.onJobStarted) {
            JobSnapshot snap;
            {
                std::lock_guard<std::mutex> lock(mu_);
                snap = snapshotLocked(*rec);
            }
            opt_.onJobStarted(snap);
        }
        PHLOGON_LOG_DEBUG("service.job.start", {"job", rec->id}, {"type", rec->type},
                          {"traceId", rec->traceId});

        JobContext ctx;
        ctx.stop_ = &rec->stop;
        ctx.done_ = &rec->progressDone;
        ctx.total_ = &rec->progressTotal;
        io::json::Value result;
        std::string error;
        bool failed = false;
        {
            OBS_SPAN("service.job");
#ifndef PHLOGON_NO_OBS
            // Bind the connection thread's flow start to this slice.
            if (obs::traceEnabled() && !rec->traceId.empty())
                obs::Tracer::instance().recordFlow(
                    "service.job.dispatch", jobFlowId(rec->traceId, rec->id), false);
#endif
            try {
                result = rec->body(ctx);
            } catch (const std::exception& e) {
                failed = true;
                error = e.what();
            } catch (...) {
                failed = true;
                error = "unknown exception";
            }
        }

        JobSnapshot finishedSnap;
        {
            std::lock_guard<std::mutex> lock(mu_);
            rec->finished = std::chrono::steady_clock::now();
            rec->result = result;
            rec->error = error;
            if (failed) {
                rec->state = JobState::Failed;
                ++stats_.failed;
            } else if (ctx.stoppedEarly()) {
                rec->state = JobState::Cancelled;
                ++stats_.cancelled;
            } else {
                rec->state = JobState::Done;
                ++stats_.completed;
            }
            rec->body = nullptr;  // release captures promptly
            --running_;
            PHLOGON_ADD_METRIC("service.job.ms",
                               static_cast<std::uint64_t>(msBetween(rec->started, rec->finished)));
            finishedSnap = snapshotLocked(*rec);
        }
        PHLOGON_COUNT_METRIC(failed ? "service.job.failed" : "service.job.finished");
        if (failed) {
            PHLOGON_LOG_ERROR("service.job.failed", {"job", rec->id}, {"type", rec->type},
                              {"traceId", rec->traceId}, {"error", error});
        } else {
            PHLOGON_LOG_INFO("service.job.done", {"job", rec->id}, {"type", rec->type},
                             {"traceId", rec->traceId},
                             {"state", jobStateName(finishedSnap.state)},
                             {"queuedMs", finishedSnap.queuedMs},
                             {"runMs", finishedSnap.runMs});
        }
        if (opt_.onJobFinished) opt_.onJobFinished(finishedSnap);
        cv_.notify_all();
    }
}

JobSnapshot JobQueue::snapshotLocked(const Record& r) const {
    JobSnapshot s;
    s.id = r.id;
    s.type = r.type;
    s.traceId = r.traceId;
    s.priority = r.priority;
    s.state = r.state;
    s.result = r.result;
    s.error = r.error;
    s.progressDone = r.progressDone.load(std::memory_order_relaxed);
    s.progressTotal = r.progressTotal.load(std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    switch (r.state) {
        case JobState::Queued: s.queuedMs = msBetween(r.submitted, now); break;
        case JobState::Running:
            s.queuedMs = msBetween(r.submitted, r.started);
            s.runMs = msBetween(r.started, now);
            break;
        default:
            // Terminal.  A job cancelled straight out of the queue has no
            // started time; count its whole life as queued.
            if (r.started.time_since_epoch().count() == 0) {
                s.queuedMs = msBetween(r.submitted, r.finished);
            } else {
                s.queuedMs = msBetween(r.submitted, r.started);
                s.runMs = msBetween(r.started, r.finished);
            }
            break;
    }
    return s;
}

std::optional<JobSnapshot> JobQueue::find(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    return snapshotLocked(*it->second);
}

std::vector<JobSnapshot> JobQueue::list() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobSnapshot> out;
    out.reserve(jobs_.size());
    for (const auto& [id, rec] : jobs_) out.push_back(snapshotLocked(*rec));
    return out;
}

std::optional<JobSnapshot> JobQueue::wait(std::uint64_t id) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    const std::shared_ptr<Record> rec = it->second;
    cv_.wait(lock, [&] {
        return rec->state == JobState::Done || rec->state == JobState::Failed ||
               rec->state == JobState::Cancelled;
    });
    return snapshotLocked(*rec);
}

bool JobQueue::cancel(std::uint64_t id) {
    bool notify = false;
    bool ok = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) return false;
        Record& r = *it->second;
        switch (r.state) {
            case JobState::Queued:
                ready_.erase({-r.priority, r.id});
                r.state = JobState::Cancelled;
                r.finished = std::chrono::steady_clock::now();
                ++stats_.cancelled;
                notify = ok = true;
                break;
            case JobState::Running:
                r.stop.store(true, std::memory_order_relaxed);
                ok = true;
                break;
            default:
                break;  // already terminal
        }
    }
    if (notify) cv_.notify_all();
    if (ok) PHLOGON_COUNT_METRIC("service.job.cancelRequests");
    return ok;
}

void JobQueue::shutdown(Shutdown mode) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        if (mode == Shutdown::Checkpoint) {
            abandonQueued_ = true;
            // Running jobs: checkpoint at the next poll and come home.
            for (auto& [id, rec] : jobs_)
                if (rec->state == JobState::Running)
                    rec->stop.store(true, std::memory_order_relaxed);
        }
    }
    cv_.notify_all();
    for (std::thread& t : threads_)
        if (t.joinable()) t.join();
    threads_.clear();
    // Workers are gone; anything still marked queued (possible when zero
    // workers ever woke) is flushed here so waiters can't hang.
    bool flushed = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        while (!ready_.empty()) {
            auto it = ready_.begin();
            auto& r = *jobs_.at(it->second);
            ready_.erase(it);
            r.state = JobState::Cancelled;
            r.finished = std::chrono::steady_clock::now();
            ++stats_.cancelled;
            flushed = true;
        }
    }
    if (flushed) cv_.notify_all();
}

QueueStats JobQueue::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    QueueStats s = stats_;
    s.depth = ready_.size();
    s.running = running_;
    return s;
}

}  // namespace phlogon::svc
