#pragma once
// Bounded priority job queue feeding a fixed worker set.
//
// The queue is the daemon's admission-control point: submissions past
// maxDepth are *rejected* with a retry-after hint rather than buffered, so
// a saturated daemon sheds load at the cheapest possible place (one queue
// probe) instead of accumulating unbounded work.  Ordering is by
// (priority desc, id asc) — strict priority, FIFO within a class.
//
// Workers are plain std::threads owned by the queue.  Job bodies do their
// heavy lifting through the library's existing entry points, whose inner
// loops fan out on the process-global num::ThreadPool; concurrent run()
// calls from several workers are safe (the pool serializes them), so the
// worker count trades per-job latency against cross-job concurrency
// without oversubscribing cores.
//
// Cancellation is cooperative: cancel() flips a per-job stop flag that
// long-running bodies poll at chunk boundaries (after writing a
// checkpoint), so a cancelled job always leaves a resumable snapshot.
// shutdown(Checkpoint) applies the same mechanism to every in-flight job
// at once — the SIGTERM path of the daemon.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"

namespace phlogon::svc {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

std::string jobStateName(JobState s);

/// Chrome-trace flow correlation id linking the connection thread's flow
/// start to the worker thread's finish: FNV-1a over (traceId, jobId), so
/// both sides derive the same id from data they each already hold, with no
/// extra coordination.  Content-keyed on purpose — a resumed job in a
/// restarted daemon (new pid, new tids) gets a *new* job id and therefore a
/// new flow, while its spans still join the old trace via args.traceId.
inline std::uint64_t jobFlowId(const std::string& traceId, std::uint64_t jobId) {
    std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
    auto mix = [&h](unsigned char c) {
        h ^= c;
        h *= 1099511628211ull;  // FNV prime
    };
    for (char c : traceId) mix(static_cast<unsigned char>(c));
    for (int i = 0; i < 8; ++i) mix(static_cast<unsigned char>(jobId >> (8 * i)));
    return h ? h : 1;  // 0 is the "no flow" sentinel in TraceEvent
}

/// Handle a running job body polls and reports through.
class JobContext {
public:
    /// True once cancel() or a checkpointing shutdown wants the body to
    /// write its snapshot and return.  Poll between chunks.
    bool shouldStop() const { return stop_->load(std::memory_order_relaxed); }
    /// Body sets this before returning early on shouldStop(); the job then
    /// finishes as Cancelled-with-checkpoint instead of Done.
    void markStoppedEarly() { stoppedEarly_ = true; }
    bool stoppedEarly() const { return stoppedEarly_; }
    /// Coarse progress for list-jobs (chunks, trials, slots — body's pick).
    void setProgress(std::uint64_t done, std::uint64_t total) {
        done_->store(done, std::memory_order_relaxed);
        total_->store(total, std::memory_order_relaxed);
    }

private:
    friend class JobQueue;
    const std::atomic<bool>* stop_ = nullptr;
    std::atomic<std::uint64_t>* done_ = nullptr;
    std::atomic<std::uint64_t>* total_ = nullptr;
    bool stoppedEarly_ = false;
};

/// A job body: computes a JSON result.  Exceptions fail the job with the
/// exception message; returning after shouldStop() with markStoppedEarly()
/// ends it as Cancelled.
using JobBody = std::function<io::json::Value(JobContext&)>;

struct JobSnapshot {
    std::uint64_t id = 0;
    std::string type;
    std::string traceId;  ///< client-supplied correlation id; may be empty
    int priority = 0;
    JobState state = JobState::Queued;
    io::json::Value result;  ///< null until Done (or partial on Cancelled)
    std::string error;       ///< set when Failed
    std::uint64_t progressDone = 0;
    std::uint64_t progressTotal = 0;
    double queuedMs = 0.0;   ///< time spent waiting for a worker
    double runMs = 0.0;      ///< execution time (0 until started)
    bool terminal() const {
        return state == JobState::Done || state == JobState::Failed ||
               state == JobState::Cancelled;
    }
};

struct SubmitResult {
    bool accepted = false;
    std::uint64_t id = 0;       ///< valid when accepted
    int retryAfterMs = 0;       ///< backoff hint when rejected (queue full)
};

struct QueueStats {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::size_t depth = 0;    ///< queued, not yet running
    std::size_t running = 0;
};

class JobQueue {
public:
    struct Options {
        std::size_t workers = 2;
        std::size_t maxDepth = 64;   ///< queued-job bound (running excluded)
        int retryAfterMs = 200;      ///< hint attached to rejections
        /// Lifecycle hooks (daemon feeds its windowed latency histograms and
        /// slow-job log from these).  Invoked from worker threads with no
        /// queue lock held; must not call back into the queue.
        std::function<void(const JobSnapshot&)> onJobStarted;
        std::function<void(const JobSnapshot&)> onJobFinished;
    };

    enum class Shutdown {
        Drain,       ///< run every queued job to completion, then stop
        Checkpoint,  ///< cancel queued jobs, checkpoint-and-stop running ones
    };

    JobQueue() : JobQueue(Options{}) {}
    explicit JobQueue(const Options& opt);
    ~JobQueue();
    JobQueue(const JobQueue&) = delete;
    JobQueue& operator=(const JobQueue&) = delete;

    /// Admit a job or reject with the retry-after hint.  Rejections and
    /// post-shutdown submissions never block.  `traceId` (optional) is the
    /// client's correlation id: the worker installs it as the ambient trace
    /// context while the body runs, so every span/instant/log record the job
    /// emits carries it.
    SubmitResult submit(const std::string& type, int priority, JobBody body,
                        const std::string& traceId = std::string());

    /// Snapshot by id; nullopt for unknown ids (never submitted — finished
    /// jobs stay queryable for the queue's lifetime).
    std::optional<JobSnapshot> find(std::uint64_t id) const;
    std::vector<JobSnapshot> list() const;

    /// Block until the job reaches a terminal state; returns its snapshot.
    std::optional<JobSnapshot> wait(std::uint64_t id);

    /// Queued jobs become Cancelled immediately; running jobs get their
    /// stop flag set and finish at the next poll.  False for unknown ids or
    /// jobs already terminal.
    bool cancel(std::uint64_t id);

    /// Stop the queue (idempotent).  Joins all workers before returning.
    void shutdown(Shutdown mode);

    QueueStats stats() const;
    std::size_t workers() const { return threads_.size(); }

private:
    struct Record {
        std::uint64_t id = 0;
        std::string type;
        std::string traceId;
        int priority = 0;
        JobState state = JobState::Queued;
        JobBody body;
        io::json::Value result;
        std::string error;
        std::atomic<bool> stop{false};
        std::atomic<std::uint64_t> progressDone{0};
        std::atomic<std::uint64_t> progressTotal{0};
        std::chrono::steady_clock::time_point submitted;
        std::chrono::steady_clock::time_point started;
        std::chrono::steady_clock::time_point finished;
    };

    void workerLoop();
    JobSnapshot snapshotLocked(const Record& r) const;

    Options opt_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;    ///< no further submissions
    bool abandonQueued_ = false;  ///< workers must not start queued jobs
    std::map<std::uint64_t, std::shared_ptr<Record>> jobs_;
    /// (-priority, id): set order = pop order.
    std::set<std::pair<int, std::uint64_t>> ready_;
    std::uint64_t nextId_ = 1;
    std::size_t running_ = 0;
    QueueStats stats_;
    std::vector<std::thread> threads_;
};

}  // namespace phlogon::svc
