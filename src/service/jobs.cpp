#include "service/jobs.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/dae.hpp"
#include "circuit/netlist.hpp"
#include "circuit/subckt.hpp"
#include "core/gae.hpp"
#include "core/gae_transient.hpp"
#include "core/noise.hpp"
#include "io/artifact.hpp"
#include "io/checkpoint.hpp"
#include "io/hash.hpp"
#include "io/model_cache.hpp"
#include "io/serialize.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "phlogon/latch.hpp"

namespace phlogon::svc {

namespace json = io::json;

namespace {

// ---- parameter plumbing ---------------------------------------------------

/// Throwing typed reads used only at admission time (buildJob catches).
struct ParamError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

double numParam(const json::Value& p, const std::string& key, double fallback) {
    const json::Value* v = p.field(key);
    if (!v) return fallback;
    if (!v->isNumber() || !std::isfinite(v->num))
        throw ParamError("\"" + key + "\" must be a finite number");
    return v->num;
}

std::size_t countParam(const json::Value& p, const std::string& key, std::size_t fallback,
                       std::size_t lo, std::size_t hi) {
    const double v = numParam(p, key, static_cast<double>(fallback));
    if (v < static_cast<double>(lo) || v > static_cast<double>(hi) ||
        v != std::floor(v))
        throw ParamError("\"" + key + "\" must be an integer in [" + std::to_string(lo) + ", " +
                         std::to_string(hi) + "]");
    return static_cast<std::size_t>(v);
}

/// The oscillator/latch parameters every analysis type shares.
struct LatchParams {
    ckt::RingOscSpec spec;
    double f1 = 9.6e3;
    double syncAmp = 100e-6;
    std::size_t gridSize = 512;
};

LatchParams parseLatchParams(const json::Value& p) {
    LatchParams lp;
    lp.spec.stages = static_cast<int>(countParam(p, "stages", 3, 3, 15));
    if (lp.spec.stages % 2 == 0) throw ParamError("\"stages\" must be odd");
    lp.spec.nmosM = numParam(p, "nmosM", 1.0);
    lp.spec.capFarads = numParam(p, "cap", 4.7e-9);
    lp.spec.vdd = numParam(p, "vdd", 3.0);
    lp.f1 = numParam(p, "f1", 9.6e3);
    lp.syncAmp = numParam(p, "syncAmp", 100e-6);
    lp.gridSize = countParam(p, "gridSize", 512, 64, 1u << 16);
    if (!(lp.spec.nmosM >= 1.0 && lp.spec.nmosM <= 16.0)) throw ParamError("\"nmosM\" out of range");
    if (!(lp.spec.capFarads > 0) || !(lp.spec.vdd > 0) || !(lp.f1 > 0) || !(lp.syncAmp >= 0))
        throw ParamError("\"cap\", \"vdd\", \"f1\" must be positive, \"syncAmp\" non-negative");
    return lp;
}

void hashLatchParams(io::Fnv1a64& h, const LatchParams& lp) {
    h.u64(static_cast<std::uint64_t>(lp.spec.stages))
        .f64(lp.spec.nmosM)
        .f64(lp.spec.capFarads)
        .f64(lp.spec.vdd)
        .f64(lp.f1)
        .f64(lp.syncAmp)
        .u64(lp.gridSize);
}

// ---- shared characterization step -----------------------------------------

struct CharacterizedLatch {
    core::PpvModel model;
    std::size_t outputUnknown = 0;
    io::CacheOutcome outcome = io::CacheOutcome::Disabled;
    std::uint64_t key = 0;
};

const io::ArtifactCache* envCache(const JobEnv& env) {
    return env.cache ? env.cache : &io::ArtifactCache::global();
}

/// Build + characterize the ring oscillator through the daemon's cache
/// (the explicit-cache twin of logic::RingOscCharacterization::run).
CharacterizedLatch characterize(const LatchParams& lp, const io::ArtifactCache& cache) {
    OBS_SPAN("service.characterize");
    ckt::Netlist nl;
    const ckt::RingOscNodes nodes = ckt::buildRingOscillator(nl, "osc", lp.spec);
    const ckt::Dae dae(nl);
    const auto outIdx = static_cast<std::size_t>(nl.findNode(nodes.out()));
    const an::PssOptions pssOpt = logic::RingOscCharacterization::defaultPssOptions();
    io::CachedCharacterization cc = io::characterizeCached(dae, nl, pssOpt, {}, cache);
    if (!cc.value.pss.ok) throw std::runtime_error("PSS failed: " + cc.value.pss.message);
    if (!cc.value.ppv.ok) throw std::runtime_error("PPV failed: " + cc.value.ppv.message);
    CharacterizedLatch out;
    out.model = core::PpvModel::build(cc.value.pss, cc.value.ppv, outIdx, nl.unknownNames());
    out.outputUnknown = outIdx;
    out.outcome = cc.outcome;
    out.key = cc.key;
    return out;
}

json::Value cacheJson(io::CacheOutcome outcome, std::uint64_t key) {
    json::Value c = json::Value::object();
    c.set("outcome", json::Value::string(io::cacheOutcomeName(outcome)));
    c.set("key", json::Value::string(io::hashHex(key)));
    return c;
}

// ---- characterize-latch ----------------------------------------------------

JobBody makeCharacterizeLatch(const LatchParams& lp, const JobEnv& env) {
    const io::ArtifactCache* cache = envCache(env);
    return [lp, cache](JobContext&) {
        const CharacterizedLatch ch = characterize(lp, *cache);
        const logic::SyncLatchDesign d = logic::designSyncLatch(
            ch.model, ch.outputUnknown, lp.f1, lp.syncAmp, lp.spec.vdd);
        json::Value r = json::Value::object();
        r.set("f0", json::Value::number(ch.model.f0()));
        r.set("f1", json::Value::number(d.f1));
        r.set("syncAmp", json::Value::number(d.syncAmp));
        r.set("phase1", json::Value::number(d.reference.phase1));
        r.set("phase0", json::Value::number(d.reference.phase0));
        r.set("inputPhaseOffset", json::Value::number(d.inputPhaseOffset));
        r.set("cache", cacheJson(ch.outcome, ch.key));
        return r;
    };
}

// ---- locking-range-sweep ---------------------------------------------------

JobBody makeLockingRangeSweep(const json::Value& p, const JobEnv& env) {
    const LatchParams lp = parseLatchParams(p);
    const double ampMin = numParam(p, "ampMin", 20e-6);
    const double ampMax = numParam(p, "ampMax", 200e-6);
    const std::size_t ampCount = countParam(p, "ampCount", 8, 2, 4096);
    if (!(ampMin > 0) || !(ampMax > ampMin)) throw ParamError("need 0 < ampMin < ampMax");
    const io::ArtifactCache* cache = envCache(env);
    return [lp, ampMin, ampMax, ampCount, cache](JobContext&) {
        const CharacterizedLatch ch = characterize(lp, *cache);
        core::Vec amps(ampCount);
        for (std::size_t i = 0; i < ampCount; ++i)
            amps[i] = ampMin + (ampMax - ampMin) * static_cast<double>(i) /
                                   static_cast<double>(ampCount - 1);
        const core::Injection unit = core::Injection::tone(ch.outputUnknown, 1.0, 2, 0.0, "sync");
        io::CachedSweepInfo info;
        const std::vector<core::LockingRangePoint> pts = io::cachedLockingRangeVsAmplitude(
            ch.model, unit, amps, lp.gridSize, 0, *cache, &info);
        json::Value rows = json::Value::array();
        for (const core::LockingRangePoint& pt : pts) {
            json::Value row = json::Value::object();
            row.set("amplitude", json::Value::number(pt.amplitude));
            row.set("locks", json::Value::boolean(pt.range.locks));
            row.set("fLow", json::Value::number(pt.range.fLow));
            row.set("fHigh", json::Value::number(pt.range.fHigh));
            row.set("width", json::Value::number(pt.range.width()));
            rows.push(row);
        }
        json::Value r = json::Value::object();
        r.set("f0", json::Value::number(ch.model.f0()));
        r.set("points", rows);
        r.set("cache", cacheJson(ch.outcome, ch.key));
        r.set("sweepCache", cacheJson(info.outcome, info.key));
        return r;
    };
}

// ---- hold-error-mc ---------------------------------------------------------

/// Chained per-chunk outcome fold: the running hash commits to every
/// completed chunk's (firstTrial, trials, errors) in order.
std::uint64_t foldChunk(std::uint64_t h, std::uint64_t firstTrial, std::uint64_t trials,
                        std::uint64_t errors) {
    io::Fnv1a64 f;
    f.u64(h).u64(firstTrial).u64(trials).u64(errors);
    return f.digest();
}

JobBody makeHoldErrorMc(const json::Value& p, const JobEnv& env) {
    const LatchParams lp = parseLatchParams(p);
    const double cSeconds = numParam(p, "c", 1e-4);
    const double holdCycles = numParam(p, "holdCycles", 30.0);
    const std::size_t trials = countParam(p, "trials", 60, 1, 1u << 24);
    const std::size_t chunk = countParam(p, "chunk", 16, 1, 1u << 20);
    const std::size_t batch = countParam(p, "batch", 0, 0, 4096);
    const auto seed = static_cast<std::uint64_t>(numParam(p, "seed", 1.0));
    if (!(cSeconds >= 0) || !(holdCycles > 0)) throw ParamError("need c >= 0, holdCycles > 0");

    io::Fnv1a64 kh;
    hashLatchParams(kh, lp);
    kh.f64(cSeconds).f64(holdCycles).u64(trials).u64(seed).u64(batch);
    // The chunk size is *excluded* from the key: it changes the checkpoint
    // cadence, never the outcome counts.
    const std::uint64_t jobKey = kh.digest();

    const io::ArtifactCache* cache = envCache(env);
    const std::filesystem::path ckptPath =
        env.checkpointDir.empty()
            ? std::filesystem::path()
            : env.checkpointDir / ("mc-" + io::hashHex(jobKey) + ".phlg");

    return [lp, cSeconds, holdCycles, trials, chunk, batch, seed, jobKey, ckptPath,
            cache](JobContext& ctx) {
        const CharacterizedLatch ch = characterize(lp, *cache);
        const logic::SyncLatchDesign d = logic::designSyncLatch(
            ch.model, ch.outputUnknown, lp.f1, lp.syncAmp, lp.spec.vdd);
        const core::Gae gae(d.model, d.f1, {d.sync()}, lp.gridSize);
        const double holdTime = holdCycles / d.f1;

        io::McCheckpoint st;
        st.jobKey = jobKey;
        st.trialsTotal = trials;
        std::uint64_t resumedFrom = 0;
        if (!ckptPath.empty()) {
            if (const auto saved = io::loadMcCheckpoint(ckptPath);
                saved && saved->jobKey == jobKey && saved->trialsTotal == trials &&
                saved->trialsDone <= trials) {
                st = *saved;
                resumedFrom = st.trialsDone;
            }
        }
        if (resumedFrom > 0) {
            OBS_INSTANT("service.job.resume");
            PHLOGON_LOG_INFO("service.job.resume", {"key", io::hashHex(jobKey)},
                             {"trialsDone", resumedFrom},
                             {"trialsTotal", static_cast<std::uint64_t>(trials)});
        }

        core::StochasticGaeOptions opt;
        opt.seed = seed;
        opt.batch = batch;
        ctx.setProgress(st.trialsDone, trials);
        bool stopped = false;
        while (st.trialsDone < trials) {
            if (ctx.shouldStop()) {
                stopped = true;
                break;
            }
            const std::size_t n =
                std::min<std::size_t>(chunk, trials - static_cast<std::size_t>(st.trialsDone));
            {
                OBS_SPAN("service.job.chunk");
                const core::HoldErrorResult r = core::holdErrorProbabilityRange(
                    gae, cSeconds, d.reference.phase1, holdTime,
                    static_cast<std::size_t>(st.trialsDone), n, opt);
                st.outcomeHash = foldChunk(st.outcomeHash, st.trialsDone, r.trials, r.errors);
                st.trialsDone += n;
                st.trials += r.trials;
                st.errors += r.errors;
                if (!ckptPath.empty()) {
                    io::saveMcCheckpoint(ckptPath, st);
                    PHLOGON_LOG_DEBUG("service.job.checkpoint", {"key", io::hashHex(jobKey)},
                                      {"trialsDone", st.trialsDone});
                }
            }
            ctx.setProgress(st.trialsDone, trials);
        }

        json::Value r = json::Value::object();
        r.set("trialsTotal", json::Value::integer(static_cast<std::int64_t>(trials)));
        r.set("trialsDone", json::Value::integer(static_cast<std::int64_t>(st.trialsDone)));
        r.set("trials", json::Value::integer(static_cast<std::int64_t>(st.trials)));
        r.set("errors", json::Value::integer(static_cast<std::int64_t>(st.errors)));
        if (st.trials > 0)
            r.set("errorRate", json::Value::number(static_cast<double>(st.errors) /
                                                   static_cast<double>(st.trials)));
        r.set("holdTime", json::Value::number(holdTime));
        r.set("outcomeHash", json::Value::string(io::hashHex(st.outcomeHash)));
        r.set("resumedFrom", json::Value::integer(static_cast<std::int64_t>(resumedFrom)));
        r.set("cache", cacheJson(ch.outcome, ch.key));
        if (!ckptPath.empty()) r.set("checkpoint", json::Value::string(ckptPath.string()));
        if (stopped) {
            r.set("resumable", json::Value::boolean(true));
            ctx.markStoppedEarly();
        }
        return r;
    };
}

// ---- fsm-transient ---------------------------------------------------------

/// §11 snapshot of a slot-chunked FSM write sequence: the integration state
/// at the last completed slot boundary plus every completed slot's end
/// phase (needed to decode the full output after a resume).  Slot
/// boundaries are fresh RKF45 starts in an uninterrupted run too, so the
/// resumed tail is bit-identical.
struct FsmCheckpoint {
    std::uint64_t jobKey = 0;
    std::uint64_t slotsTotal = 0;
    double dphi = 0.0;  ///< phase at the last completed slot boundary
    std::vector<double> endPhase;  ///< per completed slot
    num::SolverCounters counters;
};

bool saveFsmCheckpoint(const std::filesystem::path& path, const FsmCheckpoint& c) {
    io::BinaryWriter w;
    w.u64(c.jobKey);
    w.u64(c.slotsTotal);
    w.f64(c.dphi);
    num::Vec phases(c.endPhase.size());
    for (std::size_t i = 0; i < c.endPhase.size(); ++i) phases[i] = c.endPhase[i];
    w.vec(phases);
    io::encodeCounters(w, c.counters);
    return io::writeArtifactFile(path, io::kTypeFsmCheckpoint, w.take());
}

std::optional<FsmCheckpoint> loadFsmCheckpoint(const std::filesystem::path& path) {
    const io::ArtifactReadResult r = io::readArtifactFile(path, io::kTypeFsmCheckpoint);
    if (!r.ok()) return std::nullopt;
    io::BinaryReader br(r.payload);
    FsmCheckpoint c;
    num::Vec phases;
    if (!br.u64(c.jobKey) || !br.u64(c.slotsTotal) || !br.f64(c.dphi) || !br.vec(phases) ||
        !io::decodeCounters(br, c.counters))
        return std::nullopt;
    c.endPhase.assign(phases.begin(), phases.end());
    return c;
}

JobBody makeFsmTransient(const json::Value& p, const JobEnv& env) {
    const LatchParams lp = parseLatchParams(p);
    std::vector<int> bits{1, 0, 1};
    if (const json::Value* b = p.field("bits")) {
        if (!b->isArray() || b->arr->empty() || b->arr->size() > 256)
            throw ParamError("\"bits\" must be a non-empty array (<= 256) of 0/1");
        bits.clear();
        for (const json::Value& v : *b->arr) {
            if (!v.isNumber() || (v.num != 0.0 && v.num != 1.0))
                throw ParamError("\"bits\" entries must be 0 or 1");
            bits.push_back(v.num != 0.0 ? 1 : 0);
        }
    }
    const double writeAmp = numParam(p, "writeAmp", 150e-6);
    const double slotCycles = numParam(p, "slotCycles", 40.0);
    if (!(writeAmp > 0) || !(slotCycles > 0)) throw ParamError("need writeAmp, slotCycles > 0");

    io::Fnv1a64 kh;
    hashLatchParams(kh, lp);
    kh.f64(writeAmp).f64(slotCycles);
    for (int b : bits) kh.u8(static_cast<std::uint8_t>(b));
    const std::uint64_t jobKey = kh.digest();

    const io::ArtifactCache* cache = envCache(env);
    const std::filesystem::path ckptPath =
        env.checkpointDir.empty()
            ? std::filesystem::path()
            : env.checkpointDir / ("fsm-" + io::hashHex(jobKey) + ".phlg");

    return [lp, bits, writeAmp, slotCycles, jobKey, ckptPath, cache](JobContext& ctx) {
        const CharacterizedLatch ch = characterize(lp, *cache);
        const logic::SyncLatchDesign d = logic::designSyncLatch(
            ch.model, ch.outputUnknown, lp.f1, lp.syncAmp, lp.spec.vdd);
        const double slotT = slotCycles / d.f1;

        FsmCheckpoint st;
        st.jobKey = jobKey;
        st.slotsTotal = bits.size();
        st.dphi = d.reference.phase0 + 0.02;  // start just off the 0 lock
        std::uint64_t resumedFrom = 0;
        if (!ckptPath.empty()) {
            if (const auto saved = loadFsmCheckpoint(ckptPath);
                saved && saved->jobKey == jobKey && saved->slotsTotal == bits.size() &&
                saved->endPhase.size() <= bits.size()) {
                st = *saved;
                resumedFrom = st.endPhase.size();
            }
        }
        if (resumedFrom > 0) {
            OBS_INSTANT("service.job.resume");
            PHLOGON_LOG_INFO("service.job.resume", {"key", io::hashHex(jobKey)},
                             {"slotsDone", resumedFrom},
                             {"slotsTotal", static_cast<std::uint64_t>(bits.size())});
        }

        ctx.setProgress(st.endPhase.size(), bits.size());
        bool stopped = false;
        while (st.endPhase.size() < bits.size()) {
            if (ctx.shouldStop()) {
                stopped = true;
                break;
            }
            const std::size_t slot = st.endPhase.size();
            const double t0 = static_cast<double>(slot) * slotT;
            {
                OBS_SPAN("service.job.chunk");
                const std::vector<core::GaeSegment> seg{
                    {t0, {d.sync(), d.dataInjection(writeAmp, bits[slot])}}};
                const core::GaeTransientResult r = core::gaeTransient(
                    d.model, d.f1, seg, st.dphi, t0, t0 + slotT, {}, lp.gridSize);
                if (!r.ok) throw std::runtime_error("fsm-transient: GAE integration failed");
                st.dphi = r.final();
                st.endPhase.push_back(st.dphi);
                st.counters += r.counters;
                if (!ckptPath.empty()) {
                    saveFsmCheckpoint(ckptPath, st);
                    PHLOGON_LOG_DEBUG("service.job.checkpoint", {"key", io::hashHex(jobKey)},
                                      {"slotsDone", st.endPhase.size()});
                }
            }
            ctx.setProgress(st.endPhase.size(), bits.size());
        }

        json::Value written = json::Value::array();
        json::Value phases = json::Value::array();
        bool allMatch = !stopped;
        for (std::size_t i = 0; i < st.endPhase.size(); ++i) {
            const int got = d.reference.decode(st.endPhase[i]);
            written.push(json::Value::integer(got));
            phases.push(json::Value::number(st.endPhase[i]));
            if (got != bits[i]) allMatch = false;
        }
        json::Value r = json::Value::object();
        r.set("f0", json::Value::number(ch.model.f0()));
        r.set("slots", json::Value::integer(static_cast<std::int64_t>(bits.size())));
        r.set("slotsDone", json::Value::integer(static_cast<std::int64_t>(st.endPhase.size())));
        r.set("decoded", written);
        r.set("endPhase", phases);
        r.set("allWritten", json::Value::boolean(allMatch));
        r.set("steps", json::Value::integer(static_cast<std::int64_t>(st.counters.steps)));
        r.set("rhsEvals", json::Value::integer(static_cast<std::int64_t>(st.counters.rhsEvals)));
        r.set("resumedFrom", json::Value::integer(static_cast<std::int64_t>(resumedFrom)));
        r.set("cache", cacheJson(ch.outcome, ch.key));
        if (!ckptPath.empty()) r.set("checkpoint", json::Value::string(ckptPath.string()));
        if (stopped) {
            r.set("resumable", json::Value::boolean(true));
            ctx.markStoppedEarly();
        }
        return r;
    };
}

}  // namespace

const std::vector<std::string>& jobTypes() {
    static const std::vector<std::string> kTypes{
        "characterize-latch", "locking-range-sweep", "hold-error-mc", "fsm-transient"};
    return kTypes;
}

BuiltJob buildJob(const std::string& type, const json::Value& params, const JobEnv& env) {
    BuiltJob out;
    try {
        if (type == "characterize-latch") {
            out.body = makeCharacterizeLatch(parseLatchParams(params), env);
        } else if (type == "locking-range-sweep") {
            out.body = makeLockingRangeSweep(params, env);
        } else if (type == "hold-error-mc") {
            out.body = makeHoldErrorMc(params, env);
        } else if (type == "fsm-transient") {
            out.body = makeFsmTransient(params, env);
        } else {
            out.errorCode = "unknown-type";
            out.errorMessage = "unknown request type \"" + type + "\"";
            return out;
        }
        out.ok = true;
    } catch (const ParamError& e) {
        out.errorCode = "bad-params";
        out.errorMessage = e.what();
    }
    return out;
}

}  // namespace phlogon::svc
