#pragma once
// Request-type → job-body mapping for phlogond.
//
// Each analysis request type corresponds 1:1 to an existing library entry
// point; buildJob validates the JSON params and returns a JobBody closure
// over them.  All jobs share the daemon's ArtifactCache, so repeated
// characterizations of the same oscillator spec are cache hits regardless
// of which connection asked.
//
// The two long-running types checkpoint through the §11 artifact formats
// (io/checkpoint.hpp) and poll JobContext::shouldStop() at chunk
// boundaries:
//
//   * hold-error-mc — the trial ensemble runs in fixed chunks through
//     core::holdErrorProbabilityRange; after each chunk an McCheckpoint
//     (counts + outcome hash, keyed by the job's content key) is written.
//     Per-trial seeds are counter-based over absolute trial indices, so a
//     cancelled job resubmitted after a daemon restart resumes at the
//     chunk boundary and produces the *bitwise identical* final counts of
//     an uninterrupted run.
//
//   * fsm-transient — the bit schedule integrates slot by slot; every slot
//     boundary is a fresh RKF45 start in a full run too (gaeTransient
//     restarts the controller per schedule segment), so an FsmCheckpoint
//     (current dphi + per-slot end phases) resumes bit-identically.
//
// Checkpoint files are content-keyed ("mc-<key>.phlg"), so a resubmitted
// job finds its own snapshot and a changed parameter set cannot resume
// from a stale one.

#include <filesystem>
#include <string>
#include <vector>

#include "io/cache.hpp"
#include "io/json.hpp"
#include "service/job_queue.hpp"

namespace phlogon::svc {

struct JobEnv {
    /// Shared artifact cache; nullptr falls back to ArtifactCache::global().
    const io::ArtifactCache* cache = nullptr;
    /// Directory for job checkpoints; empty disables checkpointing.
    std::filesystem::path checkpointDir;
};

struct BuiltJob {
    bool ok = false;
    std::string errorCode;    ///< "unknown-type" | "bad-params"
    std::string errorMessage;
    JobBody body;
};

/// The analysis request types phlogond serves.
const std::vector<std::string>& jobTypes();

/// Validate `params` for `type` and build the job body.  Parameter errors
/// are reported here (at admission), not from inside the worker.
BuiltJob buildJob(const std::string& type, const io::json::Value& params, const JobEnv& env);

}  // namespace phlogon::svc
