#include "service/protocol.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>

namespace phlogon::svc {

namespace {

/// Read exactly n bytes; distinguishes clean EOF at offset 0 from a
/// mid-buffer stream end.
enum class ReadExact { Ok, EofAtStart, EofMid, Error };

ReadExact readExact(int fd, void* buf, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0) return got == 0 ? ReadExact::EofAtStart : ReadExact::EofMid;
        if (errno == EINTR) continue;
        return ReadExact::Error;
    }
    return ReadExact::Ok;
}

bool writeAll(int fd, const void* buf, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE; fall
        // back to write(2) when fd is not a socket (pipes in tests).
        ssize_t r = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
        if (r < 0 && (errno == ENOTSOCK || errno == EOPNOTSUPP))
            r = ::write(fd, p + put, n - put);
        if (r > 0) {
            put += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

}  // namespace

std::string frameStatusName(FrameStatus s) {
    switch (s) {
        case FrameStatus::Ok: return "ok";
        case FrameStatus::Eof: return "eof";
        case FrameStatus::Truncated: return "truncated";
        case FrameStatus::TooLarge: return "too-large";
        case FrameStatus::IoError: return "io-error";
    }
    return "?";
}

FrameRead readFrame(int fd, std::uint32_t maxBytes) {
    FrameRead out;
    std::uint8_t prefix[4];
    switch (readExact(fd, prefix, sizeof prefix)) {
        case ReadExact::Ok: break;
        case ReadExact::EofAtStart: out.status = FrameStatus::Eof; return out;
        case ReadExact::EofMid: out.status = FrameStatus::Truncated; return out;
        case ReadExact::Error: out.status = FrameStatus::IoError; return out;
    }
    const std::uint32_t n = static_cast<std::uint32_t>(prefix[0]) |
                            static_cast<std::uint32_t>(prefix[1]) << 8 |
                            static_cast<std::uint32_t>(prefix[2]) << 16 |
                            static_cast<std::uint32_t>(prefix[3]) << 24;
    if (n > maxBytes) {
        // Deliberately no read of the announced payload: the peer claimed up
        // to 4 GiB and the caller will drop the connection.
        out.status = FrameStatus::TooLarge;
        return out;
    }
    out.payload.resize(n);
    switch (n == 0 ? ReadExact::Ok : readExact(fd, out.payload.data(), n)) {
        case ReadExact::Ok: out.status = FrameStatus::Ok; return out;
        case ReadExact::EofAtStart:
        case ReadExact::EofMid: out.status = FrameStatus::Truncated; return out;
        case ReadExact::Error: out.status = FrameStatus::IoError; return out;
    }
    out.status = FrameStatus::IoError;
    return out;
}

bool writeFrame(int fd, const std::string& payload) {
    if (payload.size() > kMaxFrameBytes) return false;
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    const std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(n & 0xff),
        static_cast<std::uint8_t>((n >> 8) & 0xff),
        static_cast<std::uint8_t>((n >> 16) & 0xff),
        static_cast<std::uint8_t>((n >> 24) & 0xff),
    };
    // Single buffered write so a frame is never interleaved with another
    // thread's (the daemon serializes per-connection writes anyway).
    std::string buf;
    buf.reserve(4 + payload.size());
    buf.append(reinterpret_cast<const char*>(prefix), 4);
    buf.append(payload);
    return writeAll(fd, buf.data(), buf.size());
}

Request parseRequest(const std::string& payload) {
    Request req;
    const io::json::ParseResult parsed = io::json::parse(payload);
    if (!parsed.ok) {
        req.errorCode = "bad-json";
        req.errorMessage = parsed.error;
        return req;
    }
    const io::json::Value& v = parsed.value;
    if (!v.isObject()) {
        req.errorCode = "bad-request";
        req.errorMessage = "request must be a JSON object";
        return req;
    }
    if (const io::json::Value* id = v.field("id")) req.id = *id;
    req.type = v.fieldString("type", "");
    if (req.type.empty()) {
        req.errorCode = "bad-request";
        req.errorMessage = "missing or non-string \"type\"";
        return req;
    }
    if (const io::json::Value* p = v.field("params")) {
        if (!p->isObject()) {
            req.errorCode = "bad-request";
            req.errorMessage = "\"params\" must be an object";
            return req;
        }
        req.params = *p;
    } else {
        req.params = io::json::Value::object();
    }
    const double prio = v.fieldNumber("priority", 0.0);
    if (std::isfinite(prio))
        req.priority = std::clamp(static_cast<int>(prio), -100, 100);
    req.wait = v.fieldBool("wait", true);
    if (const io::json::Value* t = v.field("traceId")) {
        if (!t->isString()) {
            req.errorCode = "bad-request";
            req.errorMessage = "\"traceId\" must be a string";
            return req;
        }
        // Sanitize: the id flows into log lines and trace JSON verbatim, so
        // restrict it to a filename-safe alphabet and bound its length.
        for (char c : t->str) {
            const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
            req.traceId += ok ? c : '_';
            if (req.traceId.size() >= 64) break;
        }
    }
    if (const io::json::Value* env = v.field("envelope")) {
        const std::string mode = env->stringOr("");
        if (mode == "full") {
            req.fullEnvelope = true;
        } else if (mode != "basic") {
            req.errorCode = "bad-request";
            req.errorMessage = "\"envelope\" must be \"basic\" or \"full\"";
            return req;
        }
    }
    req.ok = true;
    return req;
}

io::json::Value makeResponse(const io::json::Value& id) {
    io::json::Value r = io::json::Value::object();
    r.set("ok", io::json::Value::boolean(true));
    r.set("id", id);
    return r;
}

io::json::Value makeError(const io::json::Value& id, const std::string& code,
                          const std::string& message) {
    io::json::Value r = io::json::Value::object();
    r.set("ok", io::json::Value::boolean(false));
    r.set("id", id);
    io::json::Value err = io::json::Value::object();
    err.set("code", io::json::Value::string(code));
    err.set("message", io::json::Value::string(message));
    r.set("error", err);
    return r;
}

int connectUnix(const std::string& path) {
    sockaddr_un addr = {};
    if (path.size() >= sizeof(addr.sun_path)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int connectTcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

std::string roundTrip(int fd, const std::string& requestPayload) {
    if (!writeFrame(fd, requestPayload)) return {};
    const FrameRead r = readFrame(fd);
    return r.ok() ? r.payload : std::string();
}

}  // namespace phlogon::svc
