#pragma once
// phlogond wire protocol: length-prefixed JSON frames over a stream socket.
//
// Frame layout (both directions):
//
//   offset  size  field
//        0     4  payload length N (u32, little-endian)
//        4     N  payload: one UTF-8 JSON value
//
// The length prefix is bounded by kMaxFrameBytes: a peer announcing more is
// answered with a structured "frame-too-large" error and disconnected (the
// stream cannot be resynchronized after an untrusted prefix), while the
// daemon keeps serving every other connection.  A frame that ends early
// (peer half-closed mid-payload) is "truncated-frame"; invalid JSON inside
// a well-formed frame is "bad-json" and, because framing is still intact,
// the connection stays open.
//
// Requests are JSON objects:
//
//   {"type": "hold-error-mc", "params": {...}, "priority": 5,
//    "wait": true, "id": 17}
//
// `type` selects the operation (see service/jobs.hpp for the four analysis
// job types; the daemon itself adds status/cancel/list-jobs/stats/
// shutdown/ping).  `id` is an opaque client token echoed in the response.
// Responses are objects with "ok" (bool), the echoed "id", and either the
// operation payload or an "error": {"code", "message"} — plus the
// observability envelope the daemon attaches (see service/daemon.hpp).

#include <cstdint>
#include <string>

#include "io/json.hpp"

namespace phlogon::svc {

/// Upper bound on one frame's payload (requests and responses are a few
/// KiB; result tables top out well under 1 MiB).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class FrameStatus {
    Ok,
    Eof,        ///< clean close: zero bytes where a prefix would start
    Truncated,  ///< stream ended inside the prefix or payload
    TooLarge,   ///< announced length exceeds the cap
    IoError,    ///< read/write failure (errno-level)
};

std::string frameStatusName(FrameStatus s);

struct FrameRead {
    FrameStatus status = FrameStatus::IoError;
    std::string payload;  ///< filled when status == Ok
    bool ok() const { return status == FrameStatus::Ok; }
};

/// Read one frame from `fd` (blocking).  EINTR is retried; any other error
/// maps to IoError.
FrameRead readFrame(int fd, std::uint32_t maxBytes = kMaxFrameBytes);

/// Write one frame (blocking, handles short writes, suppresses SIGPIPE).
bool writeFrame(int fd, const std::string& payload);

/// Parse + validate the request envelope.  `ok` false carries the error
/// code/message to respond with.
struct Request {
    bool ok = false;
    std::string errorCode;
    std::string errorMessage;

    std::string type;
    io::json::Value id;      ///< echoed verbatim (null when absent)
    io::json::Value params;  ///< object; empty object when absent
    int priority = 0;        ///< higher = sooner; clamped to [-100, 100]
    bool wait = true;        ///< block until the job finishes
    /// Client-supplied trace correlation id: stamped onto every span the
    /// daemon records for this request (and the job it submits), so one
    /// client run can be extracted from a merged daemon trace.  Sanitized to
    /// [A-Za-z0-9._-], truncated to 64 chars; empty = no propagation.
    std::string traceId;
    /// "envelope": "full" opts this request into the full RunReport in the
    /// response's obs envelope; the default stays cheap (see daemon.hpp).
    bool fullEnvelope = false;
};

Request parseRequest(const std::string& payload);

/// Response builders.  Every response flows through these so the envelope
/// shape ("ok", echoed "id") stays uniform.
io::json::Value makeResponse(const io::json::Value& id);
io::json::Value makeError(const io::json::Value& id, const std::string& code,
                          const std::string& message);

/// Client-side connectors (blocking).  Return the connected fd, or -1.
int connectUnix(const std::string& path);
int connectTcp(int port);  ///< 127.0.0.1:port

/// One blocking request/response round trip on an open connection.
/// Empty string on any framing or I/O failure.
std::string roundTrip(int fd, const std::string& requestPayload);

}  // namespace phlogon::svc
