#include "service/shutdown.hpp"

#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>

namespace phlogon::svc {

namespace {

std::atomic<int> gSignal{0};
std::atomic<bool> gRequested{false};
int gPipe[2] = {-1, -1};

void onSignal(int sig) {
    gSignal.store(sig, std::memory_order_relaxed);
    gRequested.store(true, std::memory_order_release);
    if (gPipe[1] >= 0) {
        const char b = 1;
        // A full pipe already guarantees a pending wakeup; the result is
        // irrelevant either way (and must not clobber errno unguarded).
        const int savedErrno = errno;
        [[maybe_unused]] const ssize_t r = ::write(gPipe[1], &b, 1);
        errno = savedErrno;
    }
}

}  // namespace

ShutdownSignal::ShutdownSignal() {
    if (::pipe(gPipe) == 0) {
        ::fcntl(gPipe[0], F_SETFL, O_NONBLOCK);
        ::fcntl(gPipe[1], F_SETFL, O_NONBLOCK);
        ::fcntl(gPipe[0], F_SETFD, FD_CLOEXEC);
        ::fcntl(gPipe[1], F_SETFD, FD_CLOEXEC);
    }
}

ShutdownSignal& ShutdownSignal::instance() {
    static ShutdownSignal s;
    return s;
}

void ShutdownSignal::install() {
    static bool installed = [] {
        struct sigaction sa = {};
        sa.sa_handler = onSignal;
        ::sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESTART;  // frame reads keep their own EINTR loops anyway
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
        return true;
    }();
    (void)installed;
}

bool ShutdownSignal::requested() const { return gRequested.load(std::memory_order_acquire); }

int ShutdownSignal::signalNumber() const { return gSignal.load(std::memory_order_relaxed); }

bool ShutdownSignal::wait(int timeoutMs) const {
    if (requested()) return true;
    if (gPipe[0] < 0) return false;
    for (;;) {
        struct pollfd pfd = {gPipe[0], POLLIN, 0};
        const int r = ::poll(&pfd, 1, timeoutMs);
        if (r < 0 && errno == EINTR) {
            if (requested()) return true;
            continue;
        }
        if (r <= 0) return requested();
        return requested();
    }
}

void ShutdownSignal::request() { onSignal(0); }

void ShutdownSignal::resetForTest() {
    gRequested.store(false, std::memory_order_release);
    gSignal.store(0, std::memory_order_relaxed);
    if (gPipe[0] >= 0) {
        char buf[64];
        while (::read(gPipe[0], buf, sizeof buf) > 0) {
        }
    }
}

}  // namespace phlogon::svc
