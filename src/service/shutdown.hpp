#pragma once
// Process-wide SIGINT/SIGTERM latch (self-pipe idiom).
//
// The handler does the only two async-signal-safe things needed: it stores
// the signal number and writes one byte to a pipe.  Everything with
// consequences — draining the job queue, checkpointing in-flight work,
// finishing a half-written bench report — happens on a normal thread that
// observes requested() or returns from wait().
//
// Used by phlogond (graceful drain-checkpoint-exit-0 on SIGTERM) and by the
// long-running benches via bench/common.cpp (no truncated bench_out/ files
// when a run is interrupted).  install() is idempotent and keeps at most
// one handler per process; request() triggers the same path
// programmatically (tests, "shutdown" requests).

namespace phlogon::svc {

class ShutdownSignal {
public:
    static ShutdownSignal& instance();

    /// Install the SIGINT/SIGTERM handler (first call only; later calls and
    /// failures are no-ops — the daemon then just isn't signal-drainable).
    void install();

    bool requested() const;
    /// The delivered signal number (0 when only request()ed).
    int signalNumber() const;

    /// Block until a shutdown is requested, or `timeoutMs` elapses
    /// (negative = forever).  True when shutdown was requested.
    bool wait(int timeoutMs = -1) const;

    /// Programmatic trigger — same wakeup as a signal.
    void request();

    /// Re-arm for the next test (clears the latch; handler stays installed).
    void resetForTest();

private:
    ShutdownSignal();
};

}  // namespace phlogon::svc
