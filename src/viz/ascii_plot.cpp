#include "viz/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace phlogon::viz {

namespace {
constexpr const char* kGlyphs = "*+xo#@%&";

std::string formatTick(double v) {
    std::ostringstream os;
    os.precision(3);
    os << v;
    return os.str();
}
}  // namespace

std::string asciiPlot(const Chart& chart, const AsciiPlotOptions& opt) {
    double xMin, xMax, yMin, yMax;
    chart.extents(xMin, xMax, yMin, yMax);
    if (xMax == xMin) xMax = xMin + 1.0;
    if (yMax == yMin) {
        yMax = yMin + 1.0;
        yMin -= 1.0;
    }
    const std::size_t w = std::max<std::size_t>(opt.width, 10);
    const std::size_t h = std::max<std::size_t>(opt.height, 5);
    std::vector<std::string> grid(h, std::string(w, ' '));

    const auto toCol = [&](double x) {
        return static_cast<long>(std::lround((x - xMin) / (xMax - xMin) * static_cast<double>(w - 1)));
    };
    const auto toRow = [&](double y) {
        return static_cast<long>(
            std::lround((yMax - y) / (yMax - yMin) * static_cast<double>(h - 1)));
    };

    for (std::size_t s = 0; s < chart.series.size(); ++s) {
        const Series& se = chart.series[s];
        const char glyph = kGlyphs[s % 8];
        long prevC = -1, prevR = -1;
        for (std::size_t i = 0; i < se.size(); ++i) {
            if (!std::isfinite(se.x[i]) || !std::isfinite(se.y[i])) {
                prevC = prevR = -1;
                continue;
            }
            const long c = toCol(se.x[i]);
            const long r = toRow(se.y[i]);
            if (c < 0 || c >= static_cast<long>(w) || r < 0 || r >= static_cast<long>(h)) continue;
            grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = glyph;
            if (opt.connectPoints && prevC >= 0) {
                // Bresenham-ish fill between consecutive samples.
                const long steps = std::max(std::labs(c - prevC), std::labs(r - prevR));
                for (long k = 1; k < steps; ++k) {
                    const long cc = prevC + (c - prevC) * k / steps;
                    const long rr = prevR + (r - prevR) * k / steps;
                    char& cell = grid[static_cast<std::size_t>(rr)][static_cast<std::size_t>(cc)];
                    if (cell == ' ') cell = glyph;
                }
            }
            prevC = c;
            prevR = r;
        }
    }

    std::ostringstream os;
    if (!chart.title.empty()) os << chart.title << "\n";
    const std::string yLo = formatTick(yMin), yHi = formatTick(yMax);
    const std::size_t margin = std::max(yLo.size(), yHi.size());
    for (std::size_t r = 0; r < h; ++r) {
        std::string label;
        if (r == 0)
            label = yHi;
        else if (r == h - 1)
            label = yLo;
        os << std::string(margin - label.size(), ' ') << label << " |" << grid[r] << "\n";
    }
    os << std::string(margin + 1, ' ') << '+' << std::string(w, '-') << "\n";
    os << std::string(margin + 2, ' ') << formatTick(xMin);
    const std::string xhi = formatTick(xMax);
    const std::string xlab = chart.xLabel.empty() ? "" : " [" + chart.xLabel + "]";
    long pad = static_cast<long>(w) - static_cast<long>(formatTick(xMin).size()) -
               static_cast<long>(xhi.size()) - static_cast<long>(xlab.size());
    os << std::string(static_cast<std::size_t>(std::max(pad, 1L)), ' ') << xlab << " " << xhi
       << "\n";
    if (opt.drawLegend && chart.series.size() > 0) {
        os << "  legend:";
        for (std::size_t s = 0; s < chart.series.size(); ++s)
            os << "  [" << kGlyphs[s % 8] << "] " << chart.series[s].name;
        os << "\n";
    }
    if (!chart.yLabel.empty()) os << "  y: " << chart.yLabel << "\n";
    return os.str();
}

std::string asciiPlot(const std::string& title, const Vec& x, const Vec& y,
                      const AsciiPlotOptions& opt) {
    Chart c(title, "", "");
    c.add("y", x, y);
    return asciiPlot(c, opt);
}

}  // namespace phlogon::viz
