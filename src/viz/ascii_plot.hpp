#pragma once
// Terminal line plots.  The paper's tools emphasize *visualization* of phase
// logic behaviour (GAE LHS/RHS intersections, locking ranges, bit-flip
// transients); in a CLI reproduction the quick-look medium is ASCII art,
// with CSV/gnuplot export (viz/writers.h) for publication-grade figures.

#include <string>

#include "viz/series.hpp"

namespace phlogon::viz {

struct AsciiPlotOptions {
    std::size_t width = 78;   ///< plot area columns
    std::size_t height = 20;  ///< plot area rows
    bool drawLegend = true;
    bool connectPoints = true;  ///< line interpolation between samples
};

/// Render a chart into a multi-line string (axes, ticks, legend; one glyph
/// per series).
std::string asciiPlot(const Chart& chart, const AsciiPlotOptions& opt = {});

/// Convenience: single-series plot.
std::string asciiPlot(const std::string& title, const Vec& x, const Vec& y,
                      const AsciiPlotOptions& opt = {});

}  // namespace phlogon::viz
