#include "viz/series.hpp"

#include <algorithm>
#include <stdexcept>

namespace phlogon::viz {

Series::Series(std::string n, Vec xs, Vec ys) : name(std::move(n)), x(std::move(xs)), y(std::move(ys)) {
    if (x.size() != y.size()) throw std::invalid_argument("Series: x/y size mismatch");
}

Chart& Chart::add(Series s) {
    series.push_back(std::move(s));
    return *this;
}

Chart& Chart::add(std::string name, Vec x, Vec y) {
    return add(Series(std::move(name), std::move(x), std::move(y)));
}

void Chart::extents(double& xMin, double& xMax, double& yMin, double& yMax) const {
    xMin = yMin = 1e300;
    xMax = yMax = -1e300;
    for (const Series& s : series) {
        for (double v : s.x) {
            xMin = std::min(xMin, v);
            xMax = std::max(xMax, v);
        }
        for (double v : s.y) {
            yMin = std::min(yMin, v);
            yMax = std::max(yMax, v);
        }
    }
    if (xMin > xMax) {
        xMin = 0;
        xMax = 1;
    }
    if (yMin > yMax) {
        yMin = 0;
        yMax = 1;
    }
}

Series scatter(std::string name, const std::vector<std::pair<double, double>>& pts) {
    Series s;
    s.name = std::move(name);
    s.x.reserve(pts.size());
    s.y.reserve(pts.size());
    for (const auto& [px, py] : pts) {
        s.x.push_back(px);
        s.y.push_back(py);
    }
    return s;
}

}  // namespace phlogon::viz
