#pragma once
// Named data series — the exchange format between analyses and the
// visualization back ends (ASCII terminal plots, CSV, gnuplot scripts).

#include <string>
#include <vector>

#include "numeric/matrix.hpp"

namespace phlogon::viz {

using num::Vec;

/// One named (x, y) trace.
struct Series {
    std::string name;
    Vec x;
    Vec y;

    Series() = default;
    Series(std::string n, Vec xs, Vec ys);

    std::size_t size() const { return x.size(); }
    bool empty() const { return x.empty(); }
};

/// A figure: several traces sharing axes.
struct Chart {
    std::string title;
    std::string xLabel;
    std::string yLabel;
    std::vector<Series> series;

    Chart() = default;
    Chart(std::string t, std::string xl, std::string yl)
        : title(std::move(t)), xLabel(std::move(xl)), yLabel(std::move(yl)) {}

    Chart& add(Series s);
    Chart& add(std::string name, Vec x, Vec y);

    /// Global data extents across all series.
    void extents(double& xMin, double& xMax, double& yMin, double& yMax) const;
};

/// Scatter of marker points (e.g. equilibrium phases vs a swept parameter).
Series scatter(std::string name, const std::vector<std::pair<double, double>>& pts);

}  // namespace phlogon::viz
