#include "viz/writers.hpp"

#include <fstream>
#include <stdexcept>

namespace phlogon::viz {

namespace {
std::string sanitize(std::string s) {
    for (char& c : s)
        if (c == ',' || c == '\n' || c == '\r') c = ' ';
    return s;
}
}  // namespace

void writeCsv(const Chart& chart, const std::filesystem::path& path) {
    if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path);
    if (!out) throw std::runtime_error("writeCsv: cannot open " + path.string());
    out << "# " << sanitize(chart.title) << "\n";
    std::size_t maxLen = 0;
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
        if (s) out << ",";
        const std::string n = sanitize(chart.series[s].name);
        out << n << "_x," << n << "_y";
        maxLen = std::max(maxLen, chart.series[s].size());
    }
    out << "\n";
    out.precision(12);
    for (std::size_t r = 0; r < maxLen; ++r) {
        for (std::size_t s = 0; s < chart.series.size(); ++s) {
            if (s) out << ",";
            if (r < chart.series[s].size())
                out << chart.series[s].x[r] << "," << chart.series[s].y[r];
            else
                out << ",";
        }
        out << "\n";
    }
}

void writeGnuplot(const Chart& chart, const std::filesystem::path& scriptPath,
                  const std::string& csvName) {
    if (scriptPath.has_parent_path())
        std::filesystem::create_directories(scriptPath.parent_path());
    std::ofstream out(scriptPath);
    if (!out) throw std::runtime_error("writeGnuplot: cannot open " + scriptPath.string());
    out << "set datafile separator ','\n";
    out << "set key outside\n";
    out << "set title '" << sanitize(chart.title) << "'\n";
    if (!chart.xLabel.empty()) out << "set xlabel '" << sanitize(chart.xLabel) << "'\n";
    if (!chart.yLabel.empty()) out << "set ylabel '" << sanitize(chart.yLabel) << "'\n";
    out << "plot ";
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
        if (s) out << ", \\\n     ";
        out << "'" << csvName << "' using " << (2 * s + 1) << ":" << (2 * s + 2)
            << " with linespoints title '" << sanitize(chart.series[s].name) << "'";
    }
    out << "\n";
}

void exportChart(const Chart& chart, const std::filesystem::path& dir, const std::string& stem) {
    writeCsv(chart, dir / (stem + ".csv"));
    writeGnuplot(chart, dir / (stem + ".gp"), stem + ".csv");
}

}  // namespace phlogon::viz
