#include "viz/writers.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace phlogon::viz {

namespace {
std::string sanitize(std::string s) {
    for (char& c : s)
        if (c == ',' || c == '\n' || c == '\r') c = ' ';
    return s;
}

/// Create the parent directory (if any) and open `path` for writing; throws
/// with the OS error (errno/strerror) folded into the message so failures
/// name the actual cause (permissions, read-only FS, missing mount, ...).
std::ofstream openForWrite(const char* who, const std::filesystem::path& path) {
    if (path.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(path.parent_path(), ec);
        if (ec)
            throw std::runtime_error(std::string(who) + ": cannot create directory " +
                                     path.parent_path().string() + ": " + ec.message());
    }
    errno = 0;
    std::ofstream out(path);
    if (!out) {
        const int err = errno;
        throw std::runtime_error(std::string(who) + ": cannot open " + path.string() + ": " +
                                 (err ? std::strerror(err) : "unknown error"));
    }
    return out;
}
}  // namespace

void writeCsv(const Chart& chart, const std::filesystem::path& path) {
    std::ofstream out = openForWrite("writeCsv", path);
    out << "# " << sanitize(chart.title) << "\n";
    std::size_t maxLen = 0;
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
        if (s) out << ",";
        const std::string n = sanitize(chart.series[s].name);
        out << n << "_x," << n << "_y";
        maxLen = std::max(maxLen, chart.series[s].size());
    }
    out << "\n";
    out.precision(12);
    for (std::size_t r = 0; r < maxLen; ++r) {
        for (std::size_t s = 0; s < chart.series.size(); ++s) {
            if (s) out << ",";
            if (r < chart.series[s].size())
                out << chart.series[s].x[r] << "," << chart.series[s].y[r];
            else
                out << ",";
        }
        out << "\n";
    }
}

void writeGnuplot(const Chart& chart, const std::filesystem::path& scriptPath,
                  const std::string& csvName) {
    std::ofstream out = openForWrite("writeGnuplot", scriptPath);
    out << "set datafile separator ','\n";
    out << "set key outside\n";
    out << "set title '" << sanitize(chart.title) << "'\n";
    if (!chart.xLabel.empty()) out << "set xlabel '" << sanitize(chart.xLabel) << "'\n";
    if (!chart.yLabel.empty()) out << "set ylabel '" << sanitize(chart.yLabel) << "'\n";
    out << "plot ";
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
        if (s) out << ", \\\n     ";
        out << "'" << csvName << "' using " << (2 * s + 1) << ":" << (2 * s + 2)
            << " with linespoints title '" << sanitize(chart.series[s].name) << "'";
    }
    out << "\n";
}

void exportChart(const Chart& chart, const std::filesystem::path& dir, const std::string& stem) {
    writeCsv(chart, dir / (stem + ".csv"));
    writeGnuplot(chart, dir / (stem + ".gp"), stem + ".csv");
}

}  // namespace phlogon::viz
