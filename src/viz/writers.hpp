#pragma once
// File export: CSV (one file per chart, columns interleaved per series) and
// gnuplot scripts that replot the exported CSV.  Bench binaries write every
// reproduced figure through these so results can be inspected offline.

#include <filesystem>
#include <string>

#include "viz/series.hpp"

namespace phlogon::viz {

/// Write `chart` as CSV to `path` (directories are created).  Layout:
///   # title
///   name1_x,name1_y,name2_x,name2_y,...
///   <rows padded with empty cells when series lengths differ>
void writeCsv(const Chart& chart, const std::filesystem::path& path);

/// Write a gnuplot script next to a previously written CSV that reproduces
/// the chart (`csvName` is referenced relatively).
void writeGnuplot(const Chart& chart, const std::filesystem::path& scriptPath,
                  const std::string& csvName);

/// Convenience: write `<dir>/<stem>.csv` + `<dir>/<stem>.gp`.
void exportChart(const Chart& chart, const std::filesystem::path& dir, const std::string& stem);

}  // namespace phlogon::viz
