#include "analysis/dcop.hpp"

#include <gtest/gtest.h>

#include "circuit/subckt.hpp"

namespace phlogon::an {
namespace {

using ckt::Netlist;
using ckt::Waveform;
using num::Vec;

TEST(Dcop, ResistiveDivider) {
    Netlist nl;
    nl.addVoltageSource("v1", "top", "0", Waveform::dc(10.0));
    nl.addResistor("r1", "top", "mid", 1e3);
    nl.addResistor("r2", "mid", "0", 1e3);
    ckt::Dae dae(nl);
    const DcopResult r = dcOperatingPoint(dae);
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_NEAR(r.x[static_cast<std::size_t>(nl.findNode("mid"))], 5.0, 1e-6);
    // Branch current: 10 V over 2 kohm, flowing + -> through source.
    EXPECT_NEAR(r.x[static_cast<std::size_t>(nl.findNode("top")) + 1], -5e-3, 1e-6);
}

TEST(Dcop, CurrentSourceIntoResistor) {
    Netlist nl;
    nl.addCurrentSource("i1", "0", "n", Waveform::dc(2e-3));  // inject into n
    nl.addResistor("r1", "n", "0", 1e3);
    ckt::Dae dae(nl);
    const DcopResult r = dcOperatingPoint(dae);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(Dcop, CmosInverterBiasPoints) {
    Netlist nl;
    ckt::addSupply(nl, "vdd", 3.0);
    ckt::buildCmosInverter(nl, "inv", "in", "out", "vdd", ckt::MosfetParams{},
                           ckt::MosfetParams{});
    nl.addVoltageSource("vin", "in", "0", Waveform::dc(0.0));
    nl.addResistor("rl", "out", "0", 1e9);
    ckt::Dae dae(nl);
    const DcopResult r = dcOperatingPoint(dae);
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_GT(r.x[static_cast<std::size_t>(nl.findNode("out"))], 2.9);
}

TEST(Dcop, RingOscillatorEquilibriumNearMidrail) {
    Netlist nl;
    ckt::RingOscSpec spec;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    const DcopResult r = dcOperatingPoint(dae);
    ASSERT_TRUE(r.ok) << r.message;
    for (const char* node : {"osc.n1", "osc.n2", "osc.n3"}) {
        const double v = r.x[static_cast<std::size_t>(nl.findNode(node))];
        EXPECT_GT(v, 0.5);
        EXPECT_LT(v, 2.5);
    }
    // Residual actually small at the solution.
    EXPECT_LT(num::normInf(dae.evalF(0.0, r.x)), 1e-8);
}

TEST(Dcop, InitialGuessSizeMismatchRejected) {
    Netlist nl;
    nl.addResistor("r1", "a", "0", 1.0);
    ckt::Dae dae(nl);
    DcopOptions opt;
    opt.initialGuess = Vec{1.0, 2.0};
    const DcopResult r = dcOperatingPoint(dae, opt);
    EXPECT_FALSE(r.ok);
}

TEST(Dcop, WarmStartFromProvidedGuess) {
    Netlist nl;
    nl.addVoltageSource("v1", "a", "0", Waveform::dc(2.0));
    nl.addResistor("r1", "a", "0", 1e3);
    ckt::Dae dae(nl);
    DcopOptions opt;
    opt.initialGuess = Vec{2.0, -2e-3};
    const DcopResult r = dcOperatingPoint(dae, opt);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(Dcop, TimeVaryingSourceEvaluatedAtRequestedTime) {
    Netlist nl;
    nl.addVoltageSource("v1", "a", "0", Waveform::cosine(1.0, 1.0, 0.0, 1.0));
    nl.addResistor("r1", "a", "0", 1.0);
    ckt::Dae dae(nl);
    DcopOptions opt;
    opt.evalTime = 0.5;  // cos(pi) = -1 -> V = 0
    const DcopResult r = dcOperatingPoint(dae, opt);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.x[0], 0.0, 1e-9);
}

}  // namespace
}  // namespace phlogon::an
