#include "analysis/hb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/ppv.hpp"
#include "circuit/subckt.hpp"
#include "common/osc_fixture.hpp"

namespace phlogon::an {
namespace {

TEST(HarmonicBalance, AgreesWithShootingOnRingOscillator) {
    const auto& osc = testutil::sharedOsc();
    const PssResult hb = harmonicBalancePss(osc.dae());
    ASSERT_TRUE(hb.ok) << hb.message;
    EXPECT_NEAR(hb.f0, osc.f0(), 2e-4 * osc.f0());
    EXPECT_LT(hb.shootResidual, 1e-8);
}

TEST(HarmonicBalance, WaveformMatchesShooting) {
    const auto& osc = testutil::sharedOsc();
    const PssResult hb = harmonicBalancePss(osc.dae());
    ASSERT_TRUE(hb.ok);
    // Align by the phase pin (both runs pin the same unknown at the same
    // level with rising slope at t=0), then compare the output waveform.
    ASSERT_EQ(hb.xs.size(), osc.pss().xs.size());
    const std::size_t idx = osc.outputUnknown();
    double maxDiff = 0.0;
    for (std::size_t k = 0; k < hb.xs.size(); ++k)
        maxDiff = std::max(maxDiff, std::abs(hb.xs[k][idx] - osc.pss().xs[k][idx]));
    // Gibbs on the switching waveform bounds the agreement; a few tens of mV
    // on a 3 V swing is spectral-vs-TRAP consistency.
    EXPECT_LT(maxDiff, 0.1);
}

TEST(HarmonicBalance, SpectralAccuracyOnVanDerPol) {
    ckt::Netlist nl;
    ckt::VanDerPolSpec spec;
    ckt::buildVanDerPolOscillator(nl, "vdp", spec);
    ckt::Dae dae(nl);
    const double f0a =
        1.0 / (2.0 * std::numbers::pi * std::sqrt(spec.inductance * spec.capacitance));
    HbOptions opt;
    opt.freqHint = f0a;
    opt.kick = 0.2;
    opt.nColloc = 64;
    const PssResult hb = harmonicBalancePss(dae, opt);
    ASSERT_TRUE(hb.ok) << hb.message;
    EXPECT_NEAR(hb.f0, f0a, 2e-3 * f0a);
    EXPECT_LE(hb.shootIterations, 10);
}

TEST(HarmonicBalance, PpvExtractionWorksOnHbSolution) {
    const auto& osc = testutil::sharedOsc();
    const PssResult hb = harmonicBalancePss(osc.dae());
    ASSERT_TRUE(hb.ok);
    const PpvResult ppv = extractPpvTimeDomain(osc.dae(), hb);
    ASSERT_TRUE(ppv.ok) << ppv.message;
    EXPECT_NEAR(ppv.floquetMu, 1.0, 5e-3);
    // Fundamental PPV magnitude consistent with the shooting-based one.
    const std::size_t idx = osc.outputUnknown();
    const auto mShoot = core::PpvModel::build(osc.pss(), osc.ppv(), idx,
                                              osc.netlist().unknownNames());
    const auto mHb = core::PpvModel::build(hb, ppv, idx, osc.netlist().unknownNames());
    EXPECT_NEAR(mHb.ppvHarmonic(idx, 1), mShoot.ppvHarmonic(idx, 1),
                0.05 * mShoot.ppvHarmonic(idx, 1));
    EXPECT_NEAR(mHb.ppvHarmonic(idx, 2), mShoot.ppvHarmonic(idx, 2),
                0.10 * mShoot.ppvHarmonic(idx, 2));
}

TEST(HarmonicBalance, RejectsBadOptions) {
    const auto& osc = testutil::sharedOsc();
    HbOptions odd;
    odd.nColloc = 63;
    EXPECT_FALSE(harmonicBalancePss(osc.dae(), odd).ok);
    HbOptions tiny;
    tiny.nColloc = 4;
    EXPECT_FALSE(harmonicBalancePss(osc.dae(), tiny).ok);
}

TEST(HarmonicBalance, NonOscillatorFailsGracefully) {
    ckt::Netlist nl;
    nl.addVoltageSource("v", "a", "0", ckt::Waveform::dc(1.0));
    nl.addResistor("r", "a", "b", 1e3);
    nl.addCapacitor("c", "b", "0", 1e-9);
    ckt::Dae dae(nl);
    HbOptions opt;
    opt.freqHint = 1e5;
    opt.warmupCycles = 10;
    const PssResult r = harmonicBalancePss(dae, opt);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.message.empty());
}

}  // namespace
}  // namespace phlogon::an
