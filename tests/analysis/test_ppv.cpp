#include "analysis/ppv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/transient.hpp"
#include "core/ppv_model.hpp"
#include "analysis/waveform.hpp"
#include "circuit/subckt.hpp"
#include "common/osc_fixture.hpp"
#include "numeric/interp.hpp"

namespace phlogon::an {
namespace {

using num::Vec;

TEST(PpvTimeDomain, ExtractsPhaseMode) {
    const PpvResult& ppv = testutil::sharedOsc().ppv();
    ASSERT_TRUE(ppv.ok) << ppv.message;
    // The extracted Floquet multiplier must be ~1 (the phase mode)...
    EXPECT_NEAR(ppv.floquetMu, 1.0, 1e-3);
    // ...and the normalization invariant v^T C xs' constant over the cycle.
    EXPECT_LT(ppv.normalizationSpread, 1e-2);
}

TEST(PpvTimeDomain, ConvergesInFewSweeps) {
    EXPECT_LE(testutil::sharedOsc().ppv().sweepsUsed, 60);
}

TEST(PpvTimeDomain, RequiresPssSolution) {
    ckt::Netlist nl;
    ckt::RingOscSpec spec;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    PssResult empty;
    const PpvResult r = extractPpvTimeDomain(dae, empty);
    EXPECT_FALSE(r.ok);
}

TEST(PpvFrequencyDomain, AgreesWithTimeDomain) {
    const auto& osc = testutil::sharedOsc();
    const PpvResult fd = extractPpvFrequencyDomain(osc.dae(), osc.pss());
    ASSERT_TRUE(fd.ok) << fd.message;
    const PpvResult& td = osc.ppv();
    const std::size_t idx = osc.outputUnknown();
    double scale = 0.0;
    for (std::size_t k = 0; k < td.v.size(); ++k)
        scale = std::max(scale, std::abs(td.v[k][idx]));
    ASSERT_GT(scale, 0.0);
    for (std::size_t k = 0; k < td.v.size(); ++k)
        EXPECT_NEAR(td.v[k][idx], fd.v[k][idx], 0.02 * scale) << "sample " << k;
}

TEST(PpvFrequencyDomain, RejectsOddCollocation) {
    const auto& osc = testutil::sharedOsc();
    PpvFdOptions opt;
    opt.nColloc = 31;
    EXPECT_FALSE(extractPpvFrequencyDomain(osc.dae(), osc.pss(), opt).ok);
}

TEST(Ppv, SecondHarmonicPresentForAsymmetricInverter) {
    // SHIL needs |V2| > 0; the asymmetric (unmatched N/P) inverter provides
    // it.  This is the enabling physics of the paper's latches.
    const auto& osc = testutil::sharedOsc();
    const double v1 = osc.model().ppvHarmonic(osc.outputUnknown(), 1);
    const double v2 = osc.model().ppvHarmonic(osc.outputUnknown(), 2);
    EXPECT_GT(v1, 0.0);
    EXPECT_GT(v2, 0.02 * v1);
}

TEST(Ppv, SymmetricInverterKillsEvenHarmonics) {
    // A perfectly matched inverter gives the ring half-wave symmetry: the
    // PPV's 2nd harmonic (and the SHIL locking range) collapses.
    ckt::Netlist nl;
    ckt::RingOscSpec spec;
    spec.pmos = spec.nmos;  // perfectly matched
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    PssOptions popt;
    popt.freqHint = 14e3;
    const PssResult pss = shootingPss(dae, popt);
    ASSERT_TRUE(pss.ok) << pss.message;
    const PpvResult ppv = extractPpvTimeDomain(dae, pss);
    ASSERT_TRUE(ppv.ok) << ppv.message;
    const auto model = core::PpvModel::build(pss, ppv,
                                             static_cast<std::size_t>(nl.findNode("osc.n1")),
                                             nl.unknownNames());
    const double v1 = model.ppvHarmonic(model.outputUnknown(), 1);
    const double v2 = model.ppvHarmonic(model.outputUnknown(), 2);
    EXPECT_LT(v2, 1e-4 * v1);
}

TEST(Ppv, PredictsPhaseShiftOfPulsePerturbedTransient) {
    // The defining property (paper eq. 3): a small current pulse injected
    // into the oscillator shifts its asymptotic phase by
    // delta_alpha = integral v_n1(t) * i(t) dt, with the sign convention
    // that positive alpha advances the waveform (events happen earlier).
    const auto& osc = testutil::sharedOsc();
    const double T = osc.pss().period;

    const double i0 = 100e-6;
    const double tOn = 2.0 * T + 0.20 * T;
    const double tOff = 2.0 * T + 0.30 * T;

    // Prediction from the macromodel: trajectory starts at xFine[0], i.e.
    // oscillator phase theta = t/T.
    double alphaPred = 0.0;
    {
        const std::size_t steps = 400;
        const auto& model = osc.model();
        for (std::size_t k = 0; k < steps; ++k) {
            const double t = tOn + (tOff - tOn) * (static_cast<double>(k) + 0.5) / steps;
            alphaPred += model.ppvAt(osc.outputUnknown(), t / T) * i0 * (tOff - tOn) / steps;
        }
    }

    // Reference and perturbed circuit-level transients.
    auto runTransient = [&](bool withPulse) {
        ckt::Netlist nl;
        ckt::RingOscSpec spec;
        ckt::buildRingOscillator(nl, "osc", spec);
        if (withPulse) {
            ckt::addCurrentInjection(
                nl, "pulse", "osc.n1",
                ckt::Waveform::custom([=](double t) { return (t >= tOn && t < tOff) ? i0 : 0.0; }));
        }
        ckt::Dae dae(nl);
        TransientOptions opt;
        opt.dt = T / 800.0;
        return transient(dae, osc.pss().xFine[0], 0.0, 8.0 * T, opt);
    };
    const TransientResult ref = runTransient(false);
    const TransientResult pert = runTransient(true);
    ASSERT_TRUE(ref.ok && pert.ok);

    const std::size_t n1 = osc.outputUnknown();
    const Vec crRef = risingCrossings(ref.t, ref.column(n1), 1.5);
    const Vec crPert = risingCrossings(pert.t, pert.column(n1), 1.5);
    ASSERT_GE(crRef.size(), 7u);
    ASSERT_EQ(crRef.size(), crPert.size());
    // Average the shift over the post-pulse crossings.  Positive alpha =
    // advanced waveform = earlier crossings.
    double shift = 0.0;
    std::size_t cnt = 0;
    for (std::size_t k = 0; k < crRef.size(); ++k) {
        if (crRef[k] < tOff + 0.5 * T) continue;
        shift += crRef[k] - crPert[k];
        ++cnt;
    }
    ASSERT_GE(cnt, 2u);
    shift /= static_cast<double>(cnt);
    EXPECT_NEAR(shift, alphaPred, 0.15 * std::abs(alphaPred) + 1e-8)
        << "predicted alpha=" << alphaPred << " measured=" << shift;
}

TEST(PpvModelBuild, ComponentAccessorsConsistent) {
    const auto& osc = testutil::sharedOsc();
    const PpvResult& ppv = osc.ppv();
    const std::size_t idx = osc.outputUnknown();
    const Vec comp = ppv.component(idx);
    ASSERT_EQ(comp.size(), ppv.v.size());
    for (std::size_t k = 0; k < comp.size(); ++k) EXPECT_DOUBLE_EQ(comp[k], ppv.v[k][idx]);
}

}  // namespace
}  // namespace phlogon::an
