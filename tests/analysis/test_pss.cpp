#include "analysis/pss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/waveform.hpp"
#include "circuit/subckt.hpp"
#include "common/osc_fixture.hpp"

namespace phlogon::an {
namespace {

using num::Vec;

TEST(ShootingPss, ConvergesOnDefaultRingOscillator) {
    const auto& osc = testutil::sharedOsc();
    const PssResult& pss = osc.pss();
    ASSERT_TRUE(pss.ok) << pss.message;
    EXPECT_LT(pss.shootResidual, 1e-7);
    EXPECT_LE(pss.shootIterations, 15);
    // Device parameters were fitted so the prototype runs near the paper's
    // 9.6 kHz.
    EXPECT_NEAR(pss.f0, 9.6e3, 50.0);
}

TEST(ShootingPss, SolutionIsPeriodic) {
    const PssResult& pss = testutil::sharedOsc().pss();
    const Vec& first = pss.xFine.front();
    const Vec& last = pss.xFine.back();
    for (std::size_t i = 0; i < first.size(); ++i) EXPECT_NEAR(first[i], last[i], 1e-6);
}

TEST(ShootingPss, UniformSamplesMatchFineGrid) {
    const PssResult& pss = testutil::sharedOsc().pss();
    ASSERT_FALSE(pss.xs.empty());
    // xs[0] corresponds to t = 0 == xFine[0].
    for (std::size_t i = 0; i < pss.xs[0].size(); ++i)
        EXPECT_NEAR(pss.xs[0][i], pss.xFine[0][i], 1e-9);
}

TEST(ShootingPss, OutputSwingsRailToRail) {
    const auto& osc = testutil::sharedOsc();
    const Vec out = osc.pss().column(osc.outputUnknown());
    EXPECT_LT(*std::min_element(out.begin(), out.end()), 0.3);
    EXPECT_GT(*std::max_element(out.begin(), out.end()), 2.7);
}

TEST(ShootingPss, VddStaysPinned) {
    const auto& osc = testutil::sharedOsc();
    const std::size_t vdd = static_cast<std::size_t>(osc.netlist().findNode("osc.vdd"));
    const Vec v = osc.pss().column(vdd);
    for (double x : v) EXPECT_NEAR(x, 3.0, 1e-9);
}

TEST(ShootingPss, PeriodIndependentOfShootingResolution) {
    ckt::Netlist nl;
    ckt::RingOscSpec spec;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    PssOptions coarse, fine;
    coarse.shootingSteps = 200;
    fine.shootingSteps = 600;
    const PssResult rc = shootingPss(dae, coarse);
    const PssResult rf = shootingPss(dae, fine);
    ASSERT_TRUE(rc.ok && rf.ok);
    // TRAP is 2nd order: period difference between resolutions stays tiny.
    EXPECT_NEAR(rc.f0, rf.f0, 2e-4 * rf.f0);
}

TEST(ShootingPss, FiveStageRingIsSlower) {
    ckt::Netlist nl;
    ckt::RingOscSpec spec;
    spec.stages = 5;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    PssOptions opt;
    opt.freqHint = 6e3;
    const PssResult r = shootingPss(dae, opt);
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_LT(r.f0, testutil::sharedOsc().f0() * 0.8);
}

TEST(ShootingPss, SmallerCapOscillatesFaster) {
    ckt::Netlist nl;
    ckt::RingOscSpec spec;
    spec.capFarads = 2.35e-9;  // half the paper value
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    PssOptions opt;
    opt.freqHint = 20e3;
    const PssResult r = shootingPss(dae, opt);
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_NEAR(r.f0, 2.0 * testutil::sharedOsc().f0(), 0.1 * r.f0);
}

TEST(ShootingPss, ExplicitPhaseUnknownHonored) {
    ckt::Netlist nl;
    ckt::RingOscSpec spec;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    PssOptions opt;
    opt.phaseUnknown = nl.findNode("osc.n2");
    const PssResult r = shootingPss(dae, opt);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.phaseUnknown, nl.findNode("osc.n2"));
    EXPECT_NEAR(r.f0, testutil::sharedOsc().f0(), 1.0);
}

TEST(ShootingPss, NonOscillatingCircuitFailsGracefully) {
    ckt::Netlist nl;
    nl.addVoltageSource("v", "a", "0", ckt::Waveform::dc(1.0));
    nl.addResistor("r", "a", "b", 1e3);
    nl.addCapacitor("c", "b", "0", 1e-9);
    ckt::Dae dae(nl);
    PssOptions opt;
    opt.freqHint = 1e5;
    opt.warmupCycles = 10;
    const PssResult r = shootingPss(dae, opt);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.message.empty());
}

TEST(ShootingPss, WaveformPeakMatchesPaperConvention) {
    // The paper's Fig. 4 reports dphi_peak ~ 0.21 for its prototype; ours is
    // an independent fit but must be a sane position in (0, 1).
    const auto& model = testutil::sharedOsc().model();
    EXPECT_GT(model.waveformPeak(), 0.0);
    EXPECT_LT(model.waveformPeak(), 1.0);
}

}  // namespace
}  // namespace phlogon::an
