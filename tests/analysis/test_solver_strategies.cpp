// Golden regression for the solver engine's strategies.
//
// The default path (full Newton, fixed dt, workspaces only) must stay
// bit-for-bit the historical behaviour: the oscillator frequency and the
// Fig. 10 / Fig. 12 values below were produced by the pre-workspace
// implementation at %.17g and are pinned at 1e-12 relative, like
// tests/core/test_sweep_golden.cpp.
//
// Chord Newton (NewtonOptions::jacobianReuse) takes a different iteration
// path, so it is *not* bit-identical — but at tight per-step tolerance it
// must land on the same physics: the PSS period within 1e-9 relative of the
// full-Newton run, the bit-flip trajectory within the GAE integrator's own
// tolerance, and with far fewer Jacobian factorizations (that being the
// entire point).

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"
#include "core/gae_transient.hpp"
#include "phlogon/latch.hpp"
#include "phlogon/reference.hpp"

namespace phlogon::an {
namespace {

void expectGolden(double value, double golden, double relTol = 1e-12) {
    EXPECT_NEAR(value, golden, relTol * std::max(1.0, std::abs(golden)));
}

// Tight-tolerance characterizations used for the full-vs-chord comparison.
// Both runs share the same shooting settings; only the Newton strategy of
// the per-step solves differs.
PssOptions tightPssOptions(bool chord) {
    PssOptions p = logic::RingOscCharacterization::defaultPssOptions();
    p.stepNewton.absTol = 1e-12;
    p.stepNewton.jacobianReuse = chord;
    return p;
}

const logic::RingOscCharacterization& fullTightOsc() {
    static const logic::RingOscCharacterization osc =
        logic::RingOscCharacterization::run(ckt::RingOscSpec{}, tightPssOptions(false));
    return osc;
}

const logic::RingOscCharacterization& chordOsc() {
    static const logic::RingOscCharacterization osc =
        logic::RingOscCharacterization::run(ckt::RingOscSpec{}, tightPssOptions(true));
    return osc;
}

core::GaeTransientResult bitFlip(const logic::RingOscCharacterization& osc) {
    const auto d =
        logic::designSyncLatch(osc.model(), osc.outputUnknown(), testutil::kF1, 100e-6);
    const std::vector<core::GaeSegment> sched{{0.0, {d.sync(), d.dataInjection(150e-6, 1)}}};
    return core::gaeTransient(osc.model(), d.f1, sched, d.reference.phase0 + 0.02, 0.0,
                              40.0 / d.f1);
}

// Fig. 12 bit-flip trajectory goldens (full Newton, default tolerances),
// sampled at 5/10/20/40 reference cycles.
constexpr double kFig12Golden[4] = {1.1019530691608248, 1.2213341151467096,
                                    1.2227015591894446, 1.2227017411597056};
constexpr double kFig12Cycles[4] = {5.0, 10.0, 20.0, 40.0};

TEST(SolverStrategies, FullNewtonPssPeriodGolden) {
    // 3-stage ring PSS frequency, the anchor every figure keys off.
    expectGolden(testutil::sharedOsc().f0(), 9598.1372331279654);
    expectGolden(1.0 / testutil::sharedOsc().f0(), 0.00010418688290353888);
}

TEST(SolverStrategies, FullNewtonFig10WaveformGolden) {
    // Fig. 10: D-latch GAE g(dphi) with SYNC = 100 uA and A_D = 30 uA
    // (bit 1) — the tilted curve just before the latch loses bistability.
    const auto& osc = testutil::sharedOsc();
    const auto d =
        logic::designSyncLatch(osc.model(), osc.outputUnknown(), testutil::kF1, 100e-6);
    const core::Gae gae(osc.model(), d.f1, {d.sync(), d.dataInjection(30e-6, 1)});
    expectGolden(gae.g(0.1), 0.027128584220064207);
    expectGolden(gae.g(0.3), -0.019525365593185223);
    expectGolden(gae.g(0.5), -0.022106702694265436);
    expectGolden(gae.g(0.7), -0.00079012787553430451);
    expectGolden(gae.g(0.9), 0.015293611942822588);
}

TEST(SolverStrategies, FullNewtonFig12TransientGolden) {
    const auto r = bitFlip(testutil::sharedOsc());
    ASSERT_TRUE(r.ok);
    for (int i = 0; i < 4; ++i)
        expectGolden(r.at(kFig12Cycles[i] / testutil::kF1), kFig12Golden[i]);
}

TEST(SolverStrategies, ChordMatchesFullNewtonPssPeriod) {
    // The headline equivalence: chord Newton lands on the same period to
    // 1e-9 relative (measured gap ~2e-10 — set by where the damped Newton
    // iterations stop inside the per-step tolerance basin, not by the
    // stale-Jacobian approximation itself).
    const double fFull = fullTightOsc().f0();
    const double fChord = chordOsc().f0();
    EXPECT_NEAR(fChord, fFull, 1e-9 * fFull);
    // And both agree with the default-tolerance golden far inside 1e-9.
    expectGolden(fFull, 9598.1372331279654, 1e-9);
    expectGolden(fChord, 9598.1372331279654, 1e-9);
}

TEST(SolverStrategies, ChordMatchesFig12TransientWithinOdeTolerance) {
    // The trajectory amplifies the ~2e-10 model difference by roughly an
    // order of magnitude; 5e-8 relative keeps a 20x margin over the measured
    // ~2.5e-9 while staying below the RKF45 relTol (1e-7) that bounds the
    // trajectory's own accuracy.
    const auto r = bitFlip(chordOsc());
    ASSERT_TRUE(r.ok);
    for (int i = 0; i < 4; ++i)
        expectGolden(r.at(kFig12Cycles[i] / testutil::kF1), kFig12Golden[i], 5e-8);
}

TEST(SolverStrategies, ChordDoesFarFewerFactorizations) {
    const auto& full = fullTightOsc().pss().counters;
    const auto& chord = chordOsc().pss().counters;
    // Full Newton factorizes every iteration; chord only on contraction
    // failures and step-size changes.
    ASSERT_GT(full.luFactorizations, 0u);
    EXPECT_LT(chord.luFactorizations * 5, full.luFactorizations);
    // Counter sanity on the full run: one Jacobian per factorization at
    // most, and at least one residual evaluation per Newton iteration.
    EXPECT_LE(full.luFactorizations, full.jacEvals + full.steps);
    EXPECT_GE(full.rhsEvals, full.newtonIters);
    EXPECT_GT(full.wallSeconds, 0.0);
}

}  // namespace
}  // namespace phlogon::an
