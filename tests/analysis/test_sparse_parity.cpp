// Dense-vs-sparse linear-solver parity (DESIGN.md §15).
//
// The sparse engine must be a drop-in: with NewtonOptions::linearSolver =
// Sparse, dcop / transient / shooting PSS solve the same nonlinear systems
// through pattern-cached CSR assembly + SparseLu instead of dense LU.  The
// Newton iterates differ only by linear-solve rounding, so converged results
// agree to well below the solver tolerance.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/dcop.hpp"
#include "analysis/pss.hpp"
#include "analysis/transient.hpp"
#include "circuit/subckt.hpp"

namespace phlogon::an {
namespace {

using ckt::Netlist;
using ckt::Waveform;
using num::Vec;

/// RC ladder driven from a DC source, with a weak cubic conductance at every
/// 5th tap so the Jacobian is state-dependent (exercises refactorization).
void buildLadder(Netlist& nl, int sections) {
    nl.addVoltageSource("vin", "n0", "0", Waveform::dc(1.0));
    for (int i = 0; i < sections; ++i) {
        const std::string a = "n" + std::to_string(i);
        const std::string b = "n" + std::to_string(i + 1);
        nl.addResistor("r" + std::to_string(i), a, b, 1e3);
        nl.addCapacitor("c" + std::to_string(i), b, "0", 1e-9);
        if (i % 5 == 0)
            nl.addNonlinearConductance("g" + std::to_string(i), b, "0", Vec{1e-5, 0.0, 2e-5});
    }
}

TEST(SparseParity, DcopMatchesDenseOnNonlinearLadder) {
    Netlist nl;
    buildLadder(nl, 40);
    ckt::Dae dae(nl);

    DcopOptions dense;
    const DcopResult rd = dcOperatingPoint(dae, dense);
    ASSERT_TRUE(rd.ok) << rd.message;

    DcopOptions sparse;
    sparse.newton.linearSolver = num::LinearSolver::Sparse;
    const DcopResult rs = dcOperatingPoint(dae, sparse);
    ASSERT_TRUE(rs.ok) << rs.message;

    ASSERT_EQ(rs.x.size(), rd.x.size());
    for (std::size_t i = 0; i < rd.x.size(); ++i) EXPECT_NEAR(rs.x[i], rd.x[i], 1e-9);

    // The sparse run actually used the sparse engine, and its symbolic
    // analysis was reused across the gmin homotopy stages.
    EXPECT_GT(rs.counters.sparseFactorizations + rs.counters.sparseRefactors, 0u);
    EXPECT_GT(rs.counters.sparseRefactors, rs.counters.sparseFactorizations);
    EXPECT_GT(rs.counters.jacobianNnz, 0u);
    EXPECT_EQ(rd.counters.sparseFactorizations, 0u);
}

TEST(SparseParity, DcopCmosInverterMatchesDense) {
    // Sharply nonlinear MOSFET stamps through the gmin homotopy.
    Netlist nl;
    ckt::addSupply(nl, "vdd", 3.0);
    ckt::buildCmosInverter(nl, "inv", "in", "out", "vdd", ckt::MosfetParams{},
                           ckt::MosfetParams{});
    nl.addVoltageSource("vin", "in", "0", Waveform::dc(1.4));
    nl.addResistor("rl", "out", "0", 1e9);
    ckt::Dae dae(nl);

    const DcopResult rd = dcOperatingPoint(dae);
    ASSERT_TRUE(rd.ok) << rd.message;
    DcopOptions sparse;
    sparse.newton.linearSolver = num::LinearSolver::Sparse;
    const DcopResult rs = dcOperatingPoint(dae, sparse);
    ASSERT_TRUE(rs.ok) << rs.message;
    for (std::size_t i = 0; i < rd.x.size(); ++i) EXPECT_NEAR(rs.x[i], rd.x[i], 1e-7);
}

TEST(SparseParity, TransientMatchesDenseOnNonlinearLadder) {
    Netlist nl;
    buildLadder(nl, 30);
    ckt::Dae dae(nl);
    const Vec x0(dae.size(), 0.0);

    TransientOptions dense;
    dense.dt = 5e-8;
    const TransientResult rd = transient(dae, x0, 0.0, 2e-5, dense);
    ASSERT_TRUE(rd.ok) << rd.message;

    TransientOptions sparse = dense;
    sparse.newton.linearSolver = num::LinearSolver::Sparse;
    const TransientResult rs = transient(dae, x0, 0.0, 2e-5, sparse);
    ASSERT_TRUE(rs.ok) << rs.message;

    ASSERT_EQ(rs.x.size(), rd.x.size());
    const Vec& xd = rd.x.back();
    const Vec& xs = rs.x.back();
    for (std::size_t i = 0; i < xd.size(); ++i) EXPECT_NEAR(xs[i], xd[i], 1e-8);

    // Chord reuse + frozen pattern: the whole run needs exactly one symbolic
    // factorization, everything else is numeric-only refactors.
    EXPECT_EQ(rs.counters.sparseFactorizations, 1u);
    EXPECT_GT(rs.counters.sparseRefactors, 0u);
}

TEST(SparseParity, TransientRingOscillatorMatchesDense) {
    Netlist nl;
    ckt::RingOscSpec spec;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    Vec x0(dae.size(), 0.0);
    x0[static_cast<std::size_t>(nl.findNode("osc.n1"))] = 0.5;  // kick

    TransientOptions dense;
    dense.dt = 2e-7;
    const TransientResult rd = transient(dae, x0, 0.0, 5e-5, dense);
    ASSERT_TRUE(rd.ok) << rd.message;

    TransientOptions sparse = dense;
    sparse.newton.linearSolver = num::LinearSolver::Sparse;
    const TransientResult rs = transient(dae, x0, 0.0, 5e-5, sparse);
    ASSERT_TRUE(rs.ok) << rs.message;

    // An autonomous oscillator amplifies rounding differences along the
    // orbit, so compare mid-trajectory with a tolerance reflecting that.
    const Vec& xd = rd.x[rd.x.size() / 4];
    const Vec& xs = rs.x[rs.x.size() / 4];
    for (std::size_t i = 0; i < xd.size(); ++i) EXPECT_NEAR(xs[i], xd[i], 1e-5);
}

TEST(SparseParity, ShootingPssFrequencyMatchesDense) {
    Netlist nl;
    ckt::RingOscSpec spec;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);

    PssOptions opt;
    opt.warmupCycles = 20;
    opt.shootingSteps = 200;
    opt.nSamples = 64;
    const PssResult rd = shootingPss(dae, opt);
    ASSERT_TRUE(rd.ok) << rd.message;

    PssOptions sopt = opt;
    sopt.stepNewton.linearSolver = num::LinearSolver::Sparse;
    const PssResult rs = shootingPss(dae, sopt);
    ASSERT_TRUE(rs.ok) << rs.message;

    // The period-sensitivity chain stays dense by design; only the inner
    // TRAP-step Newton solves route through SparseLu.  Converged period must
    // agree far inside the shooting tolerance.
    EXPECT_NEAR(rs.f0 / rd.f0, 1.0, 1e-6);
    EXPECT_EQ(rs.phaseUnknown, rd.phaseUnknown);
}

}  // namespace
}  // namespace phlogon::an
