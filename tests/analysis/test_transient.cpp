#include "analysis/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/dcop.hpp"
#include "circuit/subckt.hpp"

namespace phlogon::an {
namespace {

using ckt::Netlist;
using ckt::Waveform;
using num::Vec;

TEST(Transient, RcDischargeMatchesAnalytic) {
    // C discharging through R: v(t) = v0 exp(-t/RC).
    Netlist nl;
    nl.addResistor("r", "n", "0", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);  // tau = 1 ms
    ckt::Dae dae(nl);
    TransientOptions opt;
    opt.dt = 1e-5;
    const TransientResult r = transient(dae, Vec{1.0}, 0.0, 3e-3, opt);
    ASSERT_TRUE(r.ok) << r.message;
    for (std::size_t i = 0; i < r.t.size(); i += 40)
        EXPECT_NEAR(r.x[i][0], std::exp(-r.t[i] / 1e-3), 2e-4);
}

TEST(Transient, RcChargeThroughSource) {
    Netlist nl;
    nl.addVoltageSource("v", "in", "0", Waveform::dc(2.0));
    nl.addResistor("r", "in", "n", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);
    ckt::Dae dae(nl);
    TransientOptions opt;
    opt.dt = 2e-5;
    // Consistent start: V(in)=2, V(n)=0, branch current = -2 mA.
    const TransientResult r = transient(dae, Vec{2.0, -2e-3, 0.0}, 0.0, 5e-3, opt);
    ASSERT_TRUE(r.ok);
    const int n = nl.findNode("n");
    EXPECT_NEAR(r.x.back()[static_cast<std::size_t>(n)], 2.0 * (1.0 - std::exp(-5.0)), 1e-3);
}

TEST(Transient, LcTankOscillatesAtResonance) {
    // Parallel LC built from two capacitors and a gyrator-free equivalent is
    // not available (no inductor device); emulate a resonator with the ring
    // oscillator instead: see PSS tests.  Here verify a driven RC low-pass
    // phase lag at one frequency against the analytic transfer function.
    const double f = 1e3, rr = 1e3, cc = 0.1e-6;
    Netlist nl;
    nl.addVoltageSource("v", "in", "0", Waveform::cosine(1.0, f));
    nl.addResistor("r", "in", "n", rr);
    nl.addCapacitor("c", "n", "0", cc);
    ckt::Dae dae(nl);
    TransientOptions opt;
    opt.dt = 1.0 / (f * 400);
    const TransientResult r = transient(dae, Vec{1.0, 0.0, 0.0}, 0.0, 8.0 / f, opt);
    ASSERT_TRUE(r.ok);
    // Steady state amplitude |H| = 1/sqrt(1+(wRC)^2).
    const double wrc = 2.0 * std::numbers::pi * f * rr * cc;
    const double expectAmp = 1.0 / std::sqrt(1.0 + wrc * wrc);
    double vmax = 0.0;
    const int n = nl.findNode("n");
    for (std::size_t i = r.t.size() / 2; i < r.t.size(); ++i)
        vmax = std::max(vmax, std::abs(r.x[i][static_cast<std::size_t>(n)]));
    EXPECT_NEAR(vmax, expectAmp, 0.01 * expectAmp);
}

TEST(Transient, TrapezoidalBeatsBackwardEulerOnOscillation) {
    // BE artificially damps; TRAP should retain amplitude much better over
    // many cycles of an undriven RC..."oscillation" needs 2 states; use the
    // ring oscillator limit cycle amplitude retention as the metric.
    Netlist nl;
    ckt::RingOscSpec spec;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    const DcopResult dc = dcOperatingPoint(dae);
    ASSERT_TRUE(dc.ok);
    Vec x0 = dc.x;
    for (std::size_t i = 0; i < x0.size(); ++i)
        x0[i] += 0.3 * std::sin(1.0 + 2.3 * static_cast<double>(i));

    TransientOptions trap, be;
    trap.dt = be.dt = 1.0 / (9.6e3 * 60);  // deliberately coarse
    be.method = IntegrationMethod::BackwardEuler;
    const double span = 30.0 / 9.6e3;
    const TransientResult rt = transient(dae, x0, 0.0, span, trap);
    const TransientResult rb = transient(dae, x0, 0.0, span, be);
    ASSERT_TRUE(rt.ok && rb.ok);
    const int n1 = nl.findNode("osc.n1");
    auto swing = [&](const TransientResult& r) {
        double lo = 1e9, hi = -1e9;
        for (std::size_t i = r.t.size() / 2; i < r.t.size(); ++i) {
            lo = std::min(lo, r.x[i][static_cast<std::size_t>(n1)]);
            hi = std::max(hi, r.x[i][static_cast<std::size_t>(n1)]);
        }
        return hi - lo;
    };
    EXPECT_GT(swing(rt), 2.5);  // full-ish swing retained
}

TEST(Transient, RejectsNonPositiveDt) {
    Netlist nl;
    nl.addResistor("r", "a", "0", 1.0);
    ckt::Dae dae(nl);
    TransientOptions opt;  // dt = 0
    const TransientResult r = transient(dae, Vec{0.0}, 0.0, 1.0, opt);
    EXPECT_FALSE(r.ok);
}

TEST(Transient, StoreEveryDecimatesOutput) {
    Netlist nl;
    nl.addResistor("r", "n", "0", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);
    ckt::Dae dae(nl);
    TransientOptions all, dec;
    all.dt = dec.dt = 1e-5;
    dec.storeEvery = 10;
    const TransientResult ra = transient(dae, Vec{1.0}, 0.0, 1e-3, all);
    const TransientResult rd = transient(dae, Vec{1.0}, 0.0, 1e-3, dec);
    ASSERT_TRUE(ra.ok && rd.ok);
    EXPECT_GT(ra.t.size(), 5 * rd.t.size());
    EXPECT_NEAR(ra.x.back()[0], rd.x.back()[0], 1e-12);
}

TEST(Transient, ColumnExtraction) {
    Netlist nl;
    nl.addResistor("r", "n", "0", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);
    ckt::Dae dae(nl);
    TransientOptions opt;
    opt.dt = 1e-4;
    const TransientResult r = transient(dae, Vec{1.0}, 0.0, 5e-4, opt);
    const Vec col = r.column(0);
    ASSERT_EQ(col.size(), r.t.size());
    EXPECT_DOUBLE_EQ(col[0], 1.0);
}

TEST(Transient, AdaptiveRcMeetsToleranceWithFewerSteps) {
    // Linear RC discharge: the step-doubling LTE controller must keep the
    // solution within tolerance of the analytic exponential while taking
    // far fewer accepted steps than the fixed-dt run, growing h as the
    // transient decays.
    Netlist nl;
    nl.addResistor("r", "n", "0", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);  // tau = 1 ms
    ckt::Dae dae(nl);

    TransientOptions fixed;
    fixed.dt = 1e-6;  // 3000 fixed steps over 3 tau
    const TransientResult rf = transient(dae, Vec{1.0}, 0.0, 3e-3, fixed);
    ASSERT_TRUE(rf.ok) << rf.message;

    TransientOptions ad = fixed;
    ad.adaptive = true;
    ad.lteRelTol = 1e-6;
    ad.lteAbsTol = 1e-10;
    const TransientResult ra = transient(dae, Vec{1.0}, 0.0, 3e-3, ad);
    ASSERT_TRUE(ra.ok) << ra.message;

    // Accuracy: every stored point near the analytic solution.
    for (std::size_t i = 0; i < ra.t.size(); ++i)
        EXPECT_NEAR(ra.x[i][0], std::exp(-ra.t[i] / 1e-3), 1e-4) << "t=" << ra.t[i];
    // Efficiency: the controller grows h well past the fixed dt.
    EXPECT_LT(ra.counters.steps * 4, rf.counters.steps);
    // The endpoint is reached exactly.
    EXPECT_NEAR(ra.t.back(), 3e-3, 1e-9);
    EXPECT_NEAR(ra.x.back()[0], std::exp(-3.0), 1e-4);
}

TEST(Transient, AdaptiveRejectsOnSourceStep) {
    // A sharp PWL edge must force step rejections (LTE spike) and the run
    // must still track the response afterwards.
    Netlist nl;
    nl.addVoltageSource("v", "in", "0",
                        Waveform::pwl({{0.0, 0.0}, {1e-3, 0.0}, {1.02e-3, 2.0}}));
    nl.addResistor("r", "in", "n", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);
    ckt::Dae dae(nl);
    TransientOptions opt;
    opt.dt = 1e-5;
    opt.adaptive = true;
    opt.dtMax = 2e-4;
    const TransientResult r = transient(dae, Vec{0.0, 0.0, 0.0}, 0.0, 6e-3, opt);
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_GT(r.counters.rejectedSteps, 0u);
    const int n = nl.findNode("n");
    EXPECT_NEAR(r.x.back()[static_cast<std::size_t>(n)], 2.0 * (1.0 - std::exp(-5.0)), 5e-3);
}

TEST(Transient, DefaultCountersAreConsistent) {
    Netlist nl;
    nl.addResistor("r", "n", "0", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);
    ckt::Dae dae(nl);
    TransientOptions opt;
    opt.dt = 1e-5;
    const TransientResult r = transient(dae, Vec{1.0}, 0.0, 1e-3, opt);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.counters.steps, 100u);
    EXPECT_EQ(r.counters.newtonIters, r.newtonIterationsTotal);
    EXPECT_GE(r.counters.rhsEvals, r.counters.newtonIters);
    // Full Newton: one factorization per Jacobian evaluation.
    EXPECT_EQ(r.counters.jacEvals, r.counters.luFactorizations);
    EXPECT_GT(r.counters.wallSeconds, 0.0);
}

TEST(Transient, ChordMatchesFullNewtonOnRc) {
    // On a linear circuit the chord iteration is exact after the first
    // factorization: identical trajectory, one LU for the whole run.
    Netlist nl;
    nl.addResistor("r", "n", "0", 1e3);
    nl.addCapacitor("c", "n", "0", 1e-6);
    ckt::Dae dae(nl);
    TransientOptions full;
    full.dt = 1e-5;
    TransientOptions chord = full;
    chord.newton.jacobianReuse = true;
    const TransientResult rf = transient(dae, Vec{1.0}, 0.0, 2e-3, full);
    const TransientResult rc = transient(dae, Vec{1.0}, 0.0, 2e-3, chord);
    ASSERT_TRUE(rf.ok && rc.ok);
    ASSERT_EQ(rf.t.size(), rc.t.size());
    for (std::size_t i = 0; i < rf.t.size(); ++i)
        EXPECT_NEAR(rc.x[i][0], rf.x[i][0], 1e-12);
    // One factorization for the whole run, plus at most one more when the
    // final step's h = t1 - tk differs from dt by rounding (the stepper
    // correctly drops the chord LU on any step-size change).
    EXPECT_LE(rc.counters.luFactorizations, 2u);
    EXPECT_GT(rf.counters.luFactorizations, 100u);
}

TEST(Transient, AlgebraicNodeDoesNotRing) {
    // A node with no capacitance (op-amp summer internal node) must follow
    // its algebraic constraint without trapezoidal ringing after a source
    // step.
    Netlist nl;
    nl.addVoltageSource("v", "in", "0",
                        Waveform::pwl({{0.0, 0.0}, {1e-6, 0.0}, {1.1e-6, 1.0}}));
    nl.addResistor("r1", "in", "mid", 1e3);
    nl.addResistor("r2", "mid", "0", 1e3);  // mid is purely algebraic
    nl.addCapacitor("cload", "in", "0", 1e-9);
    ckt::Dae dae(nl);
    TransientOptions opt;
    opt.dt = 1e-7;
    const TransientResult r = transient(dae, Vec{0.0, 0.0, 0.0}, 0.0, 5e-6, opt);
    ASSERT_TRUE(r.ok);
    const int mid = nl.findNode("mid");
    // After the step, V(mid) must sit at exactly half the input, no
    // oscillation between samples.
    for (std::size_t i = 0; i < r.t.size(); ++i) {
        if (r.t[i] > 2e-6) {
            EXPECT_NEAR(r.x[i][static_cast<std::size_t>(mid)], 0.5, 1e-6)
                << "t=" << r.t[i];
        }
    }
}

}  // namespace
}  // namespace phlogon::an
