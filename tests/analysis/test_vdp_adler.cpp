// Analytic validation on the van der Pol (weakly nonlinear LC) oscillator:
// the only oscillator class where PSS, PPV and the GAE locking range have
// textbook closed forms.  This pins the entire tool chain against theory
// rather than against itself.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/ppv.hpp"
#include "analysis/pss.hpp"
#include "circuit/subckt.hpp"
#include "core/gae_sweep.hpp"
#include "core/ppv_model.hpp"

namespace phlogon {
namespace {

struct VdpBundle {
    ckt::Netlist nl;
    ckt::VanDerPolSpec spec;
    an::PssResult pss;
    core::PpvModel model;
};

const VdpBundle& vdp() {
    static VdpBundle* b = [] {
        auto* bundle = new VdpBundle();
        const std::string out = ckt::buildVanDerPolOscillator(bundle->nl, "vdp", bundle->spec);
        ckt::Dae dae(bundle->nl);
        an::PssOptions popt;
        popt.freqHint =
            1.0 / (2.0 * std::numbers::pi *
                   std::sqrt(bundle->spec.inductance * bundle->spec.capacitance));
        popt.kick = 0.2;
        bundle->pss = an::shootingPss(dae, popt);
        if (bundle->pss.ok) {
            const an::PpvResult ppv = an::extractPpvTimeDomain(dae, bundle->pss);
            if (ppv.ok)
                bundle->model = core::PpvModel::build(
                    bundle->pss, ppv, static_cast<std::size_t>(bundle->nl.findNode(out)),
                    bundle->nl.unknownNames());
        }
        return bundle;
    }();
    return *b;
}

TEST(VanDerPol, OscillatesAtTankResonance) {
    const auto& b = vdp();
    ASSERT_TRUE(b.pss.ok) << b.pss.message;
    const double f0a =
        1.0 / (2.0 * std::numbers::pi * std::sqrt(b.spec.inductance * b.spec.capacitance));
    EXPECT_NEAR(b.pss.f0, f0a, 2e-3 * f0a);
}

TEST(VanDerPol, AmplitudeMatchesDescribingFunction) {
    const auto& b = vdp();
    ASSERT_TRUE(b.model.valid());
    EXPECT_NEAR(b.model.outputAmplitude(), b.spec.amplitude, 0.01 * b.spec.amplitude);
}

TEST(VanDerPol, OutputNearlySinusoidal) {
    const auto& b = vdp();
    const num::CVec c = num::fourierCoefficients(b.model.xsSamples(b.model.outputUnknown()), 3);
    EXPECT_LT(num::harmonicMagnitude(c, 3), 0.05 * num::harmonicMagnitude(c, 1));
}

TEST(VanDerPol, PpvMatchesClosedForm) {
    // For a near-sinusoidal tank, v(t) = -sin(w t)/(A C w): fundamental
    // magnitude 1/(A C w), negligible higher harmonics.
    const auto& b = vdp();
    ASSERT_TRUE(b.model.valid());
    const double w = 2.0 * std::numbers::pi * b.pss.f0;
    const double analytic = 1.0 / (b.model.outputAmplitude() * b.spec.capacitance * w);
    const double v1 = b.model.ppvHarmonic(b.model.outputUnknown(), 1);
    EXPECT_NEAR(v1, analytic, 0.01 * analytic);
    EXPECT_LT(b.model.ppvHarmonic(b.model.outputUnknown(), 2), 0.02 * v1);
}

TEST(VanDerPol, LockingRangeMatchesAdler) {
    // Classic Adler: 1:1 injection of I1 locks over width I1 / (2 pi A C).
    const auto& b = vdp();
    const double i1 = 50e-6;
    const auto range = core::lockingRange(
        b.model, {core::Injection::tone(b.model.outputUnknown(), i1, 1)});
    ASSERT_TRUE(range.locks);
    const double adler =
        i1 / (2.0 * std::numbers::pi * b.model.outputAmplitude() * b.spec.capacitance);
    EXPECT_NEAR(range.width(), adler, 0.01 * adler);
}

TEST(VanDerPol, NoShilWithoutSecondHarmonicPpv) {
    // The symmetric tank has a purely sinusoidal PPV: SYNC at 2 f1 cannot
    // lock it at any detuning.  (The ring oscillators need asymmetry for the
    // same reason.)
    const auto& b = vdp();
    const auto range = core::lockingRange(
        b.model, {core::Injection::tone(b.model.outputUnknown(), 200e-6, 2)});
    EXPECT_LT(range.width(), 1e-3 * b.pss.f0);
}

TEST(Inductor, StampSatisfiesBranchEquations) {
    ckt::Netlist nl;
    nl.addInductor("l1", "a", "0", 1e-3);
    ckt::Dae dae(nl);
    // x = [V(a), I(l1)]
    const num::Vec x{2.0, 0.5};
    const num::Vec q = dae.evalQ(0.0, x);
    const num::Vec f = dae.evalF(0.0, x);
    EXPECT_NEAR(q[1], 0.5e-3, 1e-12);  // flux = L i
    EXPECT_NEAR(f[0], 0.5, 1e-12);     // branch current leaves node a
    EXPECT_NEAR(f[1], -2.0, 1e-12);    // -(V(a) - 0)
}

TEST(Inductor, RlDecayTransient) {
    // L in series with R to ground: i(t) = i0 exp(-R t / L).
    ckt::Netlist nl;
    nl.addInductor("l1", "a", "0", 1e-3);
    nl.addResistor("r1", "a", "0", 10.0);
    ckt::Dae dae(nl);
    an::TransientOptions opt;
    opt.dt = 1e-6;
    // Consistent init: V(a) = -R*i with i flowing out of a through L...
    // i through L leaves a; through R the return: V(a) = -10 * 0.1.
    const an::TransientResult r = an::transient(dae, num::Vec{-1.0, 0.1}, 0.0, 3e-4, opt);
    ASSERT_TRUE(r.ok);
    const double tau = 1e-3 / 10.0;
    EXPECT_NEAR(r.x.back()[1], 0.1 * std::exp(-3e-4 / tau), 2e-4);
}

TEST(NonlinearConductance, PolynomialCurrentAndJacobian) {
    ckt::Netlist nl;
    nl.addNonlinearConductance("g1", "a", "0", num::Vec{-1e-3, 0.0, 4e-3});
    ckt::Dae dae(nl);
    for (double v : {-1.2, -0.3, 0.0, 0.4, 1.1}) {
        const num::Vec x{v};
        const double i = dae.evalF(0.0, x)[0];
        EXPECT_NEAR(i, -1e-3 * v + 4e-3 * v * v * v, 1e-15);
        const double g = dae.evalG(0.0, x)(0, 0);
        EXPECT_NEAR(g, -1e-3 + 12e-3 * v * v, 1e-12);
    }
}

TEST(NonlinearConductance, RejectsEmptyCoefficients) {
    ckt::Netlist nl;
    EXPECT_THROW(nl.addNonlinearConductance("g", "a", "0", num::Vec{}), std::invalid_argument);
}

}  // namespace
}  // namespace phlogon
