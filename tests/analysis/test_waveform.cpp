#include "analysis/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace phlogon::an {
namespace {

using num::Vec;

constexpr double kTwoPi = 2.0 * std::numbers::pi;

Vec sampledCos(double freq, double phaseCycles, double t0, double t1, std::size_t n, Vec* tOut) {
    Vec t(n), x(n);
    for (std::size_t i = 0; i < n; ++i) {
        t[i] = t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(n - 1);
        x[i] = std::cos(kTwoPi * (freq * t[i] - phaseCycles));
    }
    if (tOut) *tOut = t;
    return x;
}

TEST(RisingCrossings, CountAndPositions) {
    Vec t;
    const Vec x = sampledCos(1.0, 0.0, 0.0, 3.0, 3000, &t);
    const Vec cr = risingCrossings(t, x, 0.0);
    ASSERT_EQ(cr.size(), 3u);
    // cos rises through 0 at t = 0.75, 1.75, 2.75.
    EXPECT_NEAR(cr[0], 0.75, 1e-3);
    EXPECT_NEAR(cr[1], 1.75, 1e-3);
    EXPECT_NEAR(cr[2], 2.75, 1e-3);
}

TEST(RisingCrossings, IgnoresFallingEdges) {
    const Vec t{0, 1, 2, 3, 4};
    const Vec x{-1, 1, -1, 1, -1};
    EXPECT_EQ(risingCrossings(t, x, 0.0).size(), 2u);
}

TEST(RisingCrossings, LevelOffset) {
    Vec t;
    const Vec x = sampledCos(1.0, 0.0, 0.0, 2.0, 4000, &t);
    const Vec cr = risingCrossings(t, x, 0.5);  // cos = 0.5 rising at t = 5/6
    ASSERT_GE(cr.size(), 1u);
    EXPECT_NEAR(cr[0], 5.0 / 6.0, 1e-3);
}

TEST(EstimatePeriod, RecoverFrequency) {
    Vec t;
    const Vec x = sampledCos(123.0, 0.3, 0.0, 0.1, 20000, &t);
    const PeriodEstimate pe = estimatePeriod(t, x, 0.0);
    ASSERT_TRUE(pe.ok);
    EXPECT_NEAR(pe.frequency, 123.0, 0.05);
    EXPECT_LT(pe.jitter, 1e-5);
}

TEST(EstimatePeriod, FailsOnTooFewCycles) {
    Vec t;
    const Vec x = sampledCos(1.0, 0.0, 0.0, 1.2, 100, &t);
    EXPECT_FALSE(estimatePeriod(t, x, 0.0).ok);
}

TEST(CrossingPhases, WrappedAgainstReference) {
    const Vec crossings{0.75, 1.75, 2.75};  // cos rising zeros at f = 1
    const Vec ph = crossingPhases(crossings, 1.0, 0.75);
    for (double p : ph) EXPECT_NEAR(p, 0.0, 1e-12);
}

TEST(UnwrapPhase, RemovesWrapJumps) {
    const Vec wrapped{0.9, 0.95, 0.02, 0.1};  // crossed 1.0
    const Vec u = unwrapPhase(wrapped);
    EXPECT_NEAR(u[2], 1.02, 1e-12);
    EXPECT_NEAR(u[3], 1.1, 1e-12);
}

TEST(UnwrapPhase, DownwardJumps) {
    const Vec wrapped{0.1, 0.02, 0.9};
    const Vec u = unwrapPhase(wrapped);
    EXPECT_NEAR(u[2], -0.1, 1e-12);
}

TEST(PeakPosition, ParabolicRefinement) {
    const std::size_t n = 64;
    const double truePos = 0.3719;  // deliberately off-grid
    Vec x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::cos(kTwoPi * (static_cast<double>(i) / n - truePos));
    EXPECT_NEAR(peakPosition(x), truePos, 1e-3);
}

TEST(PeakPosition, PeakAtWrapBoundary) {
    const std::size_t n = 32;
    Vec x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = std::cos(kTwoPi * static_cast<double>(i) / n);
    EXPECT_NEAR(peakPosition(x), 0.0, 1e-6);
}

TEST(MeanPeakToPeak, Basics) {
    EXPECT_DOUBLE_EQ(mean(Vec{1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean(Vec{}), 0.0);
    EXPECT_DOUBLE_EQ(peakToPeak(Vec{-2, 0, 5}), 7.0);
    EXPECT_DOUBLE_EQ(peakToPeak(Vec{}), 0.0);
}

}  // namespace
}  // namespace phlogon::an
