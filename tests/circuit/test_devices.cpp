#include <gtest/gtest.h>

#include "circuit/dae.hpp"
#include "numeric/newton.hpp"

namespace phlogon::ckt {
namespace {

using num::Matrix;
using num::Vec;

/// Check that analytic G matches the finite-difference Jacobian of f at x.
void expectConsistentJacobians(const Dae& dae, double t, const Vec& x, double tol = 1e-5) {
    const Matrix g = dae.evalG(t, x);
    const Matrix gFd = num::fdJacobian([&](const Vec& xv) { return dae.evalF(t, xv); }, x);
    for (std::size_t r = 0; r < g.rows(); ++r)
        for (std::size_t c = 0; c < g.cols(); ++c)
            EXPECT_NEAR(g(r, c), gFd(r, c), tol * (1.0 + std::abs(gFd(r, c))))
                << "G mismatch at (" << r << "," << c << ")";
    const Matrix cm = dae.evalC(t, x);
    const Matrix cFd = num::fdJacobian([&](const Vec& xv) { return dae.evalQ(t, xv); }, x);
    for (std::size_t r = 0; r < cm.rows(); ++r)
        for (std::size_t c = 0; c < cm.cols(); ++c)
            EXPECT_NEAR(cm(r, c), cFd(r, c), tol * (1.0 + std::abs(cFd(r, c))))
                << "C mismatch at (" << r << "," << c << ")";
}

TEST(Resistor, OhmsLawStamp) {
    Netlist nl;
    nl.addResistor("r1", "a", "b", 100.0);
    Dae dae(nl);
    const Vec x{2.0, 1.0};  // V(a)=2, V(b)=1
    const Vec f = dae.evalF(0.0, x);
    EXPECT_NEAR(f[0], 0.01, 1e-15);   // 1 V over 100 ohm leaves node a
    EXPECT_NEAR(f[1], -0.01, 1e-15);  // and enters node b
}

TEST(Resistor, GroundedStampSkipsGroundRow) {
    Netlist nl;
    nl.addResistor("r1", "a", "0", 50.0);
    Dae dae(nl);
    const Vec f = dae.evalF(0.0, Vec{5.0});
    EXPECT_NEAR(f[0], 0.1, 1e-15);
}

TEST(Resistor, RejectsNonPositive) {
    Netlist nl;
    EXPECT_THROW(nl.addResistor("r", "a", "b", 0.0), std::invalid_argument);
    EXPECT_THROW(nl.addResistor("r", "a", "b", -5.0), std::invalid_argument);
}

TEST(Resistor, SetResistanceUpdatesConductance) {
    Netlist nl;
    Resistor& r = nl.addResistor("r1", "a", "0", 100.0);
    r.setResistance(200.0);
    Dae dae(nl);
    EXPECT_NEAR(dae.evalF(0.0, Vec{2.0})[0], 0.01, 1e-15);
}

TEST(Capacitor, ChargeStamp) {
    Netlist nl;
    nl.addCapacitor("c1", "a", "0", 1e-6);
    Dae dae(nl);
    const Vec q = dae.evalQ(0.0, Vec{3.0});
    EXPECT_NEAR(q[0], 3e-6, 1e-18);
    const Matrix c = dae.evalC(0.0, Vec{3.0});
    EXPECT_NEAR(c(0, 0), 1e-6, 1e-18);
}

TEST(Capacitor, FloatingStampAntisymmetric) {
    Netlist nl;
    nl.addCapacitor("c1", "a", "b", 2e-9);
    Dae dae(nl);
    const Vec q = dae.evalQ(0.0, Vec{1.0, -1.0});
    EXPECT_NEAR(q[0], 4e-9, 1e-20);
    EXPECT_NEAR(q[1], -4e-9, 1e-20);
}

TEST(Capacitor, RejectsNonPositive) {
    Netlist nl;
    EXPECT_THROW(nl.addCapacitor("c", "a", "0", -1e-9), std::invalid_argument);
}

TEST(CurrentSource, SpiceSignConvention) {
    // Positive value: current extracted from p, injected into n.
    Netlist nl;
    nl.addCurrentSource("i1", "p", "n", Waveform::dc(1e-3));
    Dae dae(nl);
    const Vec f = dae.evalF(0.0, Vec{0.0, 0.0});
    EXPECT_NEAR(f[0], 1e-3, 1e-15);
    EXPECT_NEAR(f[1], -1e-3, 1e-15);
}

TEST(CurrentSource, TimeVaryingWaveformEvaluated) {
    Netlist nl;
    nl.addCurrentSource("i1", "p", "0", Waveform::cosine(1e-3, 1000.0));
    Dae dae(nl);
    EXPECT_NEAR(dae.evalF(0.0, Vec{0.0})[0], 1e-3, 1e-12);
    EXPECT_NEAR(dae.evalF(0.25e-3, Vec{0.0})[0], 0.0, 1e-12);
    EXPECT_NEAR(dae.evalF(0.5e-3, Vec{0.0})[0], -1e-3, 1e-12);
}

TEST(VoltageSource, BranchEquationAndKcl) {
    Netlist nl;
    nl.addVoltageSource("v1", "p", "0", Waveform::dc(5.0));
    nl.addResistor("r1", "p", "0", 1000.0);
    Dae dae(nl);
    // Unknowns: V(p), I(v1).  Solve DC by hand: V(p)=5, branch current = -5mA
    // (flows from + terminal through the source).
    const Vec x{5.0, -5e-3};
    const Vec f = dae.evalF(0.0, x);
    EXPECT_NEAR(f[0], 0.0, 1e-12);
    EXPECT_NEAR(f[1], 0.0, 1e-12);
}

TEST(VoltageSource, JacobianConsistent) {
    Netlist nl;
    nl.addVoltageSource("v1", "a", "b", Waveform::dc(1.0));
    nl.addResistor("r1", "a", "0", 10.0);
    nl.addResistor("r2", "b", "0", 20.0);
    Dae dae(nl);
    expectConsistentJacobians(dae, 0.0, Vec{0.5, -0.5, 1e-3});
}

TEST(TimeSwitch, OnOffResistance) {
    Netlist nl;
    nl.addSwitch("s1", "a", "0", [](double t) { return t < 1.0; }, 1e3, 1e9);
    Dae dae(nl);
    EXPECT_NEAR(dae.evalF(0.5, Vec{1.0})[0], 1e-3, 1e-15);  // on: 1 kohm
    EXPECT_NEAR(dae.evalF(2.0, Vec{1.0})[0], 1e-9, 1e-20);  // off: 1 Gohm
}

TEST(TimeSwitch, RejectsNonPositiveResistances) {
    Netlist nl;
    EXPECT_THROW(nl.addSwitch("s", "a", "b", [](double) { return true; }, 0.0, 1e9),
                 std::invalid_argument);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
    const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 10.0}, {2.0, 10.0}});
    EXPECT_DOUBLE_EQ(w(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w(0.5), 5.0);
    EXPECT_DOUBLE_EQ(w(1.5), 10.0);
    EXPECT_DOUBLE_EQ(w(3.0), 10.0);
}

TEST(Waveform, ScheduledCosineFlipsPhase) {
    const auto sched = stepSchedule(0.0, 0.5, 1.0);
    const Waveform w = Waveform::scheduledCosine([](double) { return 1.0; }, 1.0, sched);
    EXPECT_NEAR(w(0.0), 1.0, 1e-12);
    EXPECT_NEAR(w(2.0), -1.0, 1e-12);  // phase 0.5 cycles after t=1
}

TEST(Waveform, PiecewiseConstantSchedule) {
    const auto f = piecewiseConstant({0.0, 1.0, 2.0}, {10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(f(-0.5), 10.0);
    EXPECT_DOUBLE_EQ(f(0.5), 10.0);
    EXPECT_DOUBLE_EQ(f(1.5), 20.0);
    EXPECT_DOUBLE_EQ(f(5.0), 30.0);
}

TEST(Waveform, PiecewiseConstantValidation) {
    EXPECT_THROW(piecewiseConstant({0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(piecewiseConstant({}, {}), std::invalid_argument);
}

TEST(Dae, ParallelDevicesSumStamps) {
    Netlist nl;
    nl.addResistor("r1", "a", "0", 100.0);
    nl.addResistor("r2", "a", "0", 100.0);
    Dae dae(nl);
    EXPECT_NEAR(dae.evalF(0.0, Vec{1.0})[0], 0.02, 1e-15);
    EXPECT_NEAR(dae.evalG(0.0, Vec{1.0})(0, 0), 0.02, 1e-15);
}

}  // namespace
}  // namespace phlogon::ckt
