#include "circuit/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dae.hpp"
#include "numeric/newton.hpp"

namespace phlogon::ckt {
namespace {

using num::Matrix;
using num::Vec;

MosfetParams sharpParams() {
    MosfetParams p;
    p.smoothing = 1e-3;  // near-ideal square law for value checks
    p.lambda = 0.0;
    return p;
}

TEST(MosfetModel, CutoffCurrentNegligible) {
    const MosCurrents c = mosfetEval(sharpParams(), MosPolarity::Nmos, 0.0, 3.0, 0.0);
    EXPECT_LT(std::abs(c.id), 1e-9);
}

TEST(MosfetModel, SaturationSquareLaw) {
    const MosfetParams p = sharpParams();
    // vgs = 1.7 -> vov = 1.0; vds = 3 > vov: saturation, id = K/2 * vov^2.
    const MosCurrents c = mosfetEval(p, MosPolarity::Nmos, 1.7, 3.0, 0.0);
    EXPECT_NEAR(c.id, 0.5 * p.kp, 0.02 * p.kp);
}

TEST(MosfetModel, TriodeRegion) {
    const MosfetParams p = sharpParams();
    // vov = 1.0, vds = 0.2: triode, id = K (vov - vds/2) vds = K * 0.18.
    const MosCurrents c = mosfetEval(p, MosPolarity::Nmos, 1.7, 0.2, 0.0);
    EXPECT_NEAR(c.id, 0.18 * p.kp, 0.02 * p.kp);
}

TEST(MosfetModel, ChannelLengthModulationIncreasesId) {
    MosfetParams p = sharpParams();
    p.lambda = 0.1;
    const double id1 = mosfetEval(p, MosPolarity::Nmos, 1.7, 2.0, 0.0).id;
    const double id2 = mosfetEval(p, MosPolarity::Nmos, 1.7, 3.0, 0.0).id;
    EXPECT_GT(id2, id1);
    EXPECT_NEAR(id2 / id1, 1.3 / 1.2, 0.01);
}

TEST(MosfetModel, PmosMirrorsNmos) {
    const MosfetParams p = sharpParams();
    const MosCurrents n = mosfetEval(p, MosPolarity::Nmos, 1.7, 2.0, 0.0);
    // PMOS with all voltages negated: same magnitude, opposite current.
    const MosCurrents pm = mosfetEval(p, MosPolarity::Pmos, -1.7, -2.0, 0.0);
    EXPECT_NEAR(pm.id, -n.id, 1e-12);
}

TEST(MosfetModel, SourceDrainSymmetry) {
    // Swapping drain/source negates the current (same channel, reversed).
    const MosfetParams p = sharpParams();
    const double fwd = mosfetEval(p, MosPolarity::Nmos, 2.0, 1.0, 0.0).id;
    // Same device with terminals exchanged: vg still 2.0 but now measured
    // from the other side: id(vg=2, vd=0, vs=1) should equal -something
    // consistent with channel reversal.
    const double rev = mosfetEval(p, MosPolarity::Nmos, 2.0, 0.0, 1.0).id;
    EXPECT_GT(fwd, 0.0);
    EXPECT_LT(rev, 0.0);
}

TEST(MosfetModel, ContinuousAcrossVdsZero) {
    const MosfetParams p{};  // default smoothing
    const double eps = 1e-7;
    const MosCurrents a = mosfetEval(p, MosPolarity::Nmos, 1.5, -eps, 0.0);
    const MosCurrents b = mosfetEval(p, MosPolarity::Nmos, 1.5, +eps, 0.0);
    EXPECT_NEAR(a.id, b.id, 1e-8);
    EXPECT_NEAR(a.gm, b.gm, 1e-4);
    EXPECT_NEAR(a.gds, b.gds, 1e-3);
}

TEST(MosfetModel, MultiplicityScalesCurrent) {
    MosfetParams p1{}, p2{};
    p2.m = 2.0;
    const double i1 = mosfetEval(p1, MosPolarity::Nmos, 2.0, 3.0, 0.0).id;
    const double i2 = mosfetEval(p2, MosPolarity::Nmos, 2.0, 3.0, 0.0).id;
    EXPECT_NEAR(i2, 2.0 * i1, 1e-12);
}

// Property-style sweep: analytic gm/gds match finite differences of id over a
// grid of bias points, for both polarities, including vds < 0.
struct BiasPoint {
    MosPolarity pol;
    double vg, vd, vs;
};

class MosfetJacobian : public ::testing::TestWithParam<BiasPoint> {};

TEST_P(MosfetJacobian, DerivativesMatchFiniteDifference) {
    const MosfetParams p{};  // defaults with smoothing
    const BiasPoint b = GetParam();
    const double h = 1e-6;
    const MosCurrents c = mosfetEval(p, b.pol, b.vg, b.vd, b.vs);
    const double gmFd = (mosfetEval(p, b.pol, b.vg + h, b.vd, b.vs).id -
                         mosfetEval(p, b.pol, b.vg - h, b.vd, b.vs).id) /
                        (2.0 * h);
    const double gdsFd = (mosfetEval(p, b.pol, b.vg, b.vd + h, b.vs).id -
                          mosfetEval(p, b.pol, b.vg, b.vd - h, b.vs).id) /
                         (2.0 * h);
    EXPECT_NEAR(c.gm, gmFd, 1e-6 + 1e-4 * std::abs(gmFd));
    EXPECT_NEAR(c.gds, gdsFd, 1e-6 + 1e-4 * std::abs(gdsFd));
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetJacobian,
    ::testing::Values(
        BiasPoint{MosPolarity::Nmos, 0.0, 1.0, 0.0}, BiasPoint{MosPolarity::Nmos, 0.7, 0.1, 0.0},
        BiasPoint{MosPolarity::Nmos, 1.5, 0.3, 0.0}, BiasPoint{MosPolarity::Nmos, 2.0, 3.0, 0.0},
        BiasPoint{MosPolarity::Nmos, 2.0, -1.0, 0.0}, BiasPoint{MosPolarity::Nmos, 3.0, 0.0, 1.0},
        BiasPoint{MosPolarity::Nmos, 1.2, 0.9, 0.4}, BiasPoint{MosPolarity::Pmos, 0.0, -1.0, 0.0},
        BiasPoint{MosPolarity::Pmos, -1.5, -0.2, 0.0},
        BiasPoint{MosPolarity::Pmos, -2.0, -3.0, 0.0},
        BiasPoint{MosPolarity::Pmos, 1.0, 2.0, 3.0},
        BiasPoint{MosPolarity::Pmos, -1.0, 1.0, 0.0}));

TEST(MosfetDevice, InverterStampJacobianConsistent) {
    Netlist nl;
    nl.addVoltageSource("vdd", "vdd", "0", Waveform::dc(3.0));
    nl.addMosfet("mp", MosPolarity::Pmos, "out", "in", "vdd");
    nl.addMosfet("mn", MosPolarity::Nmos, "out", "in", "0");
    nl.addVoltageSource("vin", "in", "0", Waveform::dc(1.5));
    Dae dae(nl);
    // A few states around the switching point.
    for (double vout : {0.3, 1.5, 2.8}) {
        Vec x{3.0, 0.0, vout, 1.5, 0.0};
        const Matrix g = dae.evalG(0.0, x);
        const Matrix gFd =
            num::fdJacobian([&](const Vec& xv) { return dae.evalF(0.0, xv); }, x);
        for (std::size_t r = 0; r < g.rows(); ++r)
            for (std::size_t c = 0; c < g.cols(); ++c)
                EXPECT_NEAR(g(r, c), gFd(r, c), 1e-5 * (1.0 + std::abs(gFd(r, c))));
    }
}

TEST(MosfetDevice, InverterTransfersLowHigh) {
    // DC sweep sanity: output high for low input and vice versa.
    Netlist nl;
    nl.addVoltageSource("vdd", "vdd", "0", Waveform::dc(3.0));
    nl.addMosfet("mp", MosPolarity::Pmos, "out", "in", "vdd");
    nl.addMosfet("mn", MosPolarity::Nmos, "out", "in", "0");
    nl.addResistor("rl", "out", "0", 1e9);  // leak to fix the floating output
    Dae dae(nl);
    const int inIdx = nl.findNode("in");
    const int outIdx = nl.findNode("out");

    for (double vin : {0.2, 2.8}) {
        // Solve KCL at out with in fixed: use Newton on the out voltage only.
        double vout = 1.5;
        for (int it = 0; it < 100; ++it) {
            Vec x(nl.size(), 0.0);
            x[0] = 3.0;  // vdd
            x[static_cast<std::size_t>(inIdx)] = vin;
            x[static_cast<std::size_t>(outIdx)] = vout;
            const Vec f = dae.evalF(0.0, x);
            const Matrix g = dae.evalG(0.0, x);
            const std::size_t o = static_cast<std::size_t>(outIdx);
            const double step = f[o] / g(o, o);
            vout -= std::clamp(step, -0.5, 0.5);
            vout = std::clamp(vout, 0.0, 3.0);
        }
        if (vin < 1.0)
            EXPECT_GT(vout, 2.9);
        else
            EXPECT_LT(vout, 0.1);
    }
}

}  // namespace
}  // namespace phlogon::ckt
