#include "circuit/netlist.hpp"

#include <gtest/gtest.h>

#include "circuit/dae.hpp"

namespace phlogon::ckt {
namespace {

TEST(Netlist, GroundAliases) {
    Netlist nl;
    EXPECT_EQ(nl.node("0"), kGround);
    EXPECT_EQ(nl.node("gnd"), kGround);
    EXPECT_EQ(nl.node("GND"), kGround);
    EXPECT_EQ(nl.size(), 0u);
}

TEST(Netlist, NodeCreationIsIdempotent) {
    Netlist nl;
    const int a = nl.node("a");
    const int b = nl.node("b");
    EXPECT_NE(a, b);
    EXPECT_EQ(nl.node("a"), a);
    EXPECT_EQ(nl.size(), 2u);
}

TEST(Netlist, FindNodeThrowsWhenMissing) {
    Netlist nl;
    nl.node("a");
    EXPECT_EQ(nl.findNode("a"), 0);
    EXPECT_THROW(nl.findNode("zz"), std::out_of_range);
    EXPECT_TRUE(nl.hasNode("a"));
    EXPECT_TRUE(nl.hasNode("0"));
    EXPECT_FALSE(nl.hasNode("zz"));
}

TEST(Netlist, BranchUnknownAllocatedForVsource) {
    Netlist nl;
    nl.node("a");
    VoltageSource& v = nl.addVoltageSource("v1", "a", "0", Waveform::dc(1.0));
    EXPECT_EQ(nl.size(), 2u);
    EXPECT_EQ(v.branchIndex(), 1);
    EXPECT_EQ(nl.unknownName(1), "I(v1)");
}

TEST(Netlist, UnknownNamesTrackCreationOrder) {
    Netlist nl;
    nl.addResistor("r1", "x", "y", 1.0);
    EXPECT_EQ(nl.unknownName(0), "x");
    EXPECT_EQ(nl.unknownName(1), "y");
}

TEST(Netlist, FindDeviceByName) {
    Netlist nl;
    nl.addResistor("r1", "a", "b", 1.0);
    nl.addCapacitor("c1", "b", "0", 1e-9);
    EXPECT_NE(nl.findDevice("r1"), nullptr);
    EXPECT_NE(nl.findDevice("c1"), nullptr);
    EXPECT_EQ(nl.findDevice("nope"), nullptr);
    EXPECT_EQ(nl.findDevice("r1")->name(), "r1");
}

TEST(Netlist, DeviceCountGrows) {
    Netlist nl;
    nl.addResistor("r1", "a", "0", 1.0);
    nl.addCurrentSource("i1", "a", "0", Waveform::dc(1.0));
    nl.addMosfet("m1", MosPolarity::Nmos, "a", "b", "0");
    EXPECT_EQ(nl.devices().size(), 3u);
}

TEST(Dae, SizeTracksNetlist) {
    Netlist nl;
    nl.addResistor("r1", "a", "b", 1.0);
    nl.addVoltageSource("v1", "a", "0", Waveform::dc(1.0));
    Dae dae(nl);
    EXPECT_EQ(dae.size(), 3u);  // a, b, branch
}

TEST(Dae, EvalSeparatesQandF) {
    Netlist nl;
    nl.addResistor("r1", "a", "0", 2.0);
    nl.addCapacitor("c1", "a", "0", 3.0);
    Dae dae(nl);
    num::Vec q, f;
    num::Matrix c, g;
    dae.eval(0.0, num::Vec{1.0}, q, f, &c, &g);
    EXPECT_NEAR(q[0], 3.0, 1e-15);
    EXPECT_NEAR(f[0], 0.5, 1e-15);
    EXPECT_NEAR(c(0, 0), 3.0, 1e-15);
    EXPECT_NEAR(g(0, 0), 0.5, 1e-15);
}

}  // namespace
}  // namespace phlogon::ckt
