#include "circuit/opamp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dae.hpp"
#include "circuit/subckt.hpp"
#include "numeric/newton.hpp"

namespace phlogon::ckt {
namespace {

using num::Matrix;
using num::Vec;

TEST(OpampModel, ClipsAtRails) {
    OpampParams p;
    // Past the rails only the small residual railSlope remains.
    EXPECT_NEAR(Opamp::clippedOutput(p, 1.0), p.vMax + p.railSlope, 1e-6);
    EXPECT_NEAR(Opamp::clippedOutput(p, -1.0), p.vMin - p.railSlope, 1e-6);
    EXPECT_NEAR(Opamp::clippedOutput(p, 0.0), 0.5 * (p.vMax + p.vMin), 1e-12);
}

TEST(OpampModel, LinearRegionGain) {
    OpampParams p;
    p.gain = 1e3;
    const double dv = 1e-6;
    const double slope = (Opamp::clippedOutput(p, dv) - Opamp::clippedOutput(p, -dv)) / (2 * dv);
    EXPECT_NEAR(slope, 1e3, 1.0);
}

TEST(OpampModel, RejectsBadParams) {
    Netlist nl;
    OpampParams bad;
    bad.vMax = bad.vMin;
    EXPECT_THROW(nl.addOpamp("op", "p", "n", "o", bad), std::invalid_argument);
    OpampParams badR;
    badR.rout = 0.0;
    EXPECT_THROW(nl.addOpamp("op2", "p", "n", "o", badR), std::invalid_argument);
}

TEST(OpampDevice, JacobianConsistent) {
    Netlist nl;
    nl.addOpamp("op", "p", "n", "o", OpampParams{.gain = 100.0});
    nl.addResistor("rp", "p", "0", 1e3);
    nl.addResistor("rn", "n", "0", 1e3);
    nl.addResistor("ro", "o", "0", 1e3);
    Dae dae(nl);
    for (double vd : {0.0, 0.005, -0.02}) {
        Vec x{vd, 0.0, 1.0};
        const Matrix g = dae.evalG(0.0, x);
        const Matrix gFd =
            num::fdJacobian([&](const Vec& xv) { return dae.evalF(0.0, xv); }, x);
        for (std::size_t r = 0; r < g.rows(); ++r)
            for (std::size_t c = 0; c < g.cols(); ++c)
                EXPECT_NEAR(g(r, c), gFd(r, c), 1e-4 * (1.0 + std::abs(gFd(r, c))));
    }
}

/// Solve the (small) nonlinear DC system directly with Newton for opamp
/// feedback circuits.
Vec solveDc(const Dae& dae) {
    Vec x(dae.size(), 1.0);
    const num::ResidualFn f = [&](const Vec& xv) { return dae.evalF(0.0, xv); };
    const num::JacobianFn j = [&](const Vec& xv) { return dae.evalG(0.0, xv); };
    num::NewtonOptions opt;
    opt.maxIter = 200;
    opt.maxStep = 0.5;
    const auto r = num::newtonSolve(f, j, x, opt);
    EXPECT_TRUE(r.converged) << r.message;
    return x;
}

TEST(OpampDevice, UnityFollowerTracksInput) {
    Netlist nl;
    nl.addVoltageSource("vin", "in", "0", Waveform::dc(1.2));
    nl.addOpamp("op", "in", "out", "out");
    nl.addResistor("rl", "out", "0", 10e3);
    Dae dae(nl);
    const Vec x = solveDc(dae);
    EXPECT_NEAR(x[static_cast<std::size_t>(nl.findNode("out"))], 1.2, 1e-3);
}

TEST(InvertingSummer, WeightedSumAroundBias) {
    Netlist nl;
    addSupply(nl, "vmid", 1.5);
    nl.addVoltageSource("v1", "in1", "0", Waveform::dc(2.0));   // +0.5 from bias
    nl.addVoltageSource("v2", "in2", "0", Waveform::dc(1.0));   // -0.5 from bias
    buildInvertingSummer(nl, "sum", {{"in1", 1.0}, {"in2", 2.0}}, "out", "vmid");
    Dae dae(nl);
    const Vec x = solveDc(dae);
    // out = bias - [1*(0.5) + 2*(-0.5)] = 1.5 + 0.5 = 2.0
    EXPECT_NEAR(x[static_cast<std::size_t>(nl.findNode("out"))], 2.0, 5e-3);
}

TEST(InvertingSummer, SaturatesAtRails) {
    Netlist nl;
    addSupply(nl, "vmid", 1.5);
    nl.addVoltageSource("v1", "in1", "0", Waveform::dc(3.0));  // +1.5 from bias
    buildInvertingSummer(nl, "sum", {{"in1", 3.0}}, "out", "vmid");
    Dae dae(nl);
    const Vec x = solveDc(dae);
    // Ideal output would be 1.5 - 4.5 = -3: clipped near the 0 V rail.
    EXPECT_LT(x[static_cast<std::size_t>(nl.findNode("out"))], 0.2);
    EXPECT_GE(x[static_cast<std::size_t>(nl.findNode("out"))], -0.1);
}

TEST(InvertingSummer, RejectsBadInputs) {
    Netlist nl;
    addSupply(nl, "vmid", 1.5);
    EXPECT_THROW(buildInvertingSummer(nl, "s", {}, "out", "vmid"), std::invalid_argument);
    EXPECT_THROW(buildInvertingSummer(nl, "s", {{"a", -1.0}}, "out", "vmid"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace phlogon::ckt
