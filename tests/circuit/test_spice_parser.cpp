#include "circuit/spice_parser.hpp"

#include <gtest/gtest.h>

#include "analysis/pss.hpp"
#include "circuit/dae.hpp"

namespace phlogon::ckt {
namespace {

TEST(SpiceValue, PlainAndSuffixed) {
    EXPECT_DOUBLE_EQ(parseSpiceValue("10"), 10.0);
    EXPECT_DOUBLE_EQ(parseSpiceValue("4.7n"), 4.7e-9);
    EXPECT_DOUBLE_EQ(parseSpiceValue("10k"), 10e3);
    EXPECT_DOUBLE_EQ(parseSpiceValue("1meg"), 1e6);
    EXPECT_DOUBLE_EQ(parseSpiceValue("100u"), 100e-6);
    EXPECT_DOUBLE_EQ(parseSpiceValue("0.238m"), 0.238e-3);
    EXPECT_DOUBLE_EQ(parseSpiceValue("2p"), 2e-12);
    EXPECT_DOUBLE_EQ(parseSpiceValue("1g"), 1e9);
    EXPECT_DOUBLE_EQ(parseSpiceValue("-1.5"), -1.5);
}

TEST(SpiceValue, UnitTailsAccepted) {
    EXPECT_DOUBLE_EQ(parseSpiceValue("4.7nF"), 4.7e-9);
    EXPECT_DOUBLE_EQ(parseSpiceValue("10kohm"), 10e3);
    EXPECT_DOUBLE_EQ(parseSpiceValue("3V"), 3.0);
}

TEST(SpiceValue, MilIsNotMilli) {
    // Regression: the longest-suffix rule.  "mil" (25.4e-6, SPICE mils) used
    // to prefix-match "m" and scale by 1e-3.
    EXPECT_DOUBLE_EQ(parseSpiceValue("5mil"), 5.0 * 25.4e-6);
    EXPECT_DOUBLE_EQ(parseSpiceValue("5m"), 5e-3);
    EXPECT_DOUBLE_EQ(parseSpiceValue("5meg"), 5e6);
    EXPECT_DOUBLE_EQ(parseSpiceValue("1MIL"), 25.4e-6);  // case-insensitive
    // Unit tails still allowed after the suffix.
    EXPECT_DOUBLE_EQ(parseSpiceValue("2milm"), 2.0 * 25.4e-6);
}

TEST(SpiceValue, RejectsGarbage) {
    EXPECT_THROW(parseSpiceValue(""), std::invalid_argument);
    EXPECT_THROW(parseSpiceValue("abc"), std::invalid_argument);
    EXPECT_THROW(parseSpiceValue("1.2.3"), std::invalid_argument);
}

TEST(SpiceParser, PassiveCards) {
    Netlist nl;
    parseSpiceDeck("R1 a b 10k\nC1 b 0 1n\nL1 a 0 2m\n", nl);
    EXPECT_EQ(nl.devices().size(), 3u);
    EXPECT_NE(nl.findDevice("R1"), nullptr);
    EXPECT_TRUE(nl.hasNode("a"));
    // L adds a branch unknown.
    EXPECT_EQ(nl.size(), 3u);  // a, b, I(L1)
}

TEST(SpiceParser, SourcesDcAndSin) {
    Netlist nl;
    parseSpiceDeck("V1 vdd 0 DC 3.0\n"
                   "V2 ref 0 SIN(1.5 1.5 9.6k)\n"
                   "I1 0 inj SIN(0 100u 19.2k 0.25)\n"
                   "I2 0 x 2m\n",
                   nl);
    Dae dae(nl);
    // V2 at t=0: offset + amp*cos(0) = 3.0.
    const auto* v2 = dynamic_cast<VoltageSource*>(nl.findDevice("V2"));
    ASSERT_NE(v2, nullptr);
    EXPECT_NEAR(v2->value(0.0), 3.0, 1e-12);
    // I1 with quarter-cycle phase: cos(-pi/2) = 0 at t=0.
    const auto* i1 = dynamic_cast<CurrentSource*>(nl.findDevice("I1"));
    ASSERT_NE(i1, nullptr);
    EXPECT_NEAR(i1->value(0.0), 0.0, 1e-12);
    const auto* i2 = dynamic_cast<CurrentSource*>(nl.findDevice("I2"));
    ASSERT_NE(i2, nullptr);
    EXPECT_NEAR(i2->value(1.0), 2e-3, 1e-15);
}

TEST(SpiceParser, MosfetParamsParsed) {
    Netlist nl;
    parseSpiceDeck("M1 d g s NMOS kp=0.5m vt0=0.65 lambda=0.01 m=2\n", nl);
    const auto* m = dynamic_cast<Mosfet*>(nl.findDevice("M1"));
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->params().kp, 0.5e-3);
    EXPECT_DOUBLE_EQ(m->params().vt0, 0.65);
    EXPECT_DOUBLE_EQ(m->params().lambda, 0.01);
    EXPECT_DOUBLE_EQ(m->params().m, 2.0);
}

TEST(SpiceParser, PolyConductance) {
    Netlist nl;
    parseSpiceDeck("Gvdp a 0 POLY(-20u 0 26.7u)\n", nl);
    Dae dae(nl);
    const double i = dae.evalF(0.0, num::Vec{1.0})[0];
    EXPECT_NEAR(i, -20e-6 + 26.7e-6, 1e-12);
}

TEST(SpiceParser, CommentsBlanksAndEnd) {
    Netlist nl;
    parseSpiceDeck("* a comment\n"
                   "\n"
                   "R1 a 0 1k ; trailing comment\n"
                   ".end\n"
                   "R2 b 0 1k\n",  // after .end: ignored
                   nl);
    EXPECT_EQ(nl.devices().size(), 1u);
}

TEST(SpiceParser, ErrorsCarryLineNumbers) {
    Netlist nl;
    try {
        parseSpiceDeck("R1 a 0 1k\nXsub a b c\n", nl);
        FAIL() << "expected SpiceParseError";
    } catch (const SpiceParseError& e) {
        EXPECT_EQ(e.line(), 2u);
    }
    Netlist nl2;
    EXPECT_THROW(parseSpiceDeck("R1 a 0\n", nl2), SpiceParseError);
    Netlist nl3;
    EXPECT_THROW(parseSpiceDeck("M1 d g s BJT\n", nl3), SpiceParseError);
    Netlist nl4;
    EXPECT_THROW(parseSpiceDeck(".tran 1n 1u\n", nl4), SpiceParseError);
}

TEST(SpiceParser, FullRingOscillatorDeckOscillates) {
    // The paper's Fig. 3 cell written as a deck; the whole analysis chain
    // must run on the parsed netlist.
    const char* deck = R"(
* 3-stage ring oscillator, ALD110x-like devices
Vdd vdd 0 DC 3.0
M1p n1 n3 vdd PMOS kp=0.238m vt0=0.82
M1n n1 n3 0   NMOS kp=0.381m vt0=0.70
C1  n1 0 4.7n
M2p n2 n1 vdd PMOS kp=0.238m vt0=0.82
M2n n2 n1 0   NMOS kp=0.381m vt0=0.70
C2  n2 0 4.7n
M3p n3 n2 vdd PMOS kp=0.238m vt0=0.82
M3n n3 n2 0   NMOS kp=0.381m vt0=0.70
C3  n3 0 4.7n
.end
)";
    Netlist nl;
    parseSpiceDeck(deck, nl);
    Dae dae(nl);
    an::PssOptions opt;
    opt.freqHint = 10e3;
    const an::PssResult pss = an::shootingPss(dae, opt);
    ASSERT_TRUE(pss.ok) << pss.message;
    EXPECT_NEAR(pss.f0, 9.6e3, 100.0);
}

}  // namespace
}  // namespace phlogon::ckt
