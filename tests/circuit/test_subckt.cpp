#include "circuit/subckt.hpp"

#include <gtest/gtest.h>

#include "circuit/dae.hpp"

namespace phlogon::ckt {
namespace {

TEST(RingOscillator, BuildsExpectedTopology) {
    Netlist nl;
    RingOscSpec spec;
    const RingOscNodes nodes = buildRingOscillator(nl, "osc", spec);
    EXPECT_EQ(nodes.stageOut.size(), 3u);
    EXPECT_EQ(nodes.out(), "osc.n1");
    EXPECT_TRUE(nl.hasNode("osc.n1"));
    EXPECT_TRUE(nl.hasNode("osc.n2"));
    EXPECT_TRUE(nl.hasNode("osc.n3"));
    EXPECT_TRUE(nl.hasNode("osc.vdd"));
    // 3 stages x (2 FETs + 1 cap) + vdd source = 10 devices.
    EXPECT_EQ(nl.devices().size(), 10u);
}

TEST(RingOscillator, FiveStagesSupported) {
    Netlist nl;
    RingOscSpec spec;
    spec.stages = 5;
    const RingOscNodes nodes = buildRingOscillator(nl, "o5", spec);
    EXPECT_EQ(nodes.stageOut.size(), 5u);
}

TEST(RingOscillator, RejectsEvenOrTooFewStages) {
    Netlist nl;
    RingOscSpec spec;
    spec.stages = 4;
    EXPECT_THROW(buildRingOscillator(nl, "bad", spec), std::invalid_argument);
    spec.stages = 1;
    EXPECT_THROW(buildRingOscillator(nl, "bad2", spec), std::invalid_argument);
}

TEST(RingOscillator, SharedSupplyReused) {
    Netlist nl;
    addSupply(nl, "vdd", 3.0);
    RingOscSpec spec;
    spec.vddNode = "vdd";
    buildRingOscillator(nl, "a", spec);
    buildRingOscillator(nl, "b", spec);
    // Only one supply source should exist.
    EXPECT_NE(nl.findDevice("V(vdd)"), nullptr);
    EXPECT_EQ(nl.findDevice("V(a.vdd)"), nullptr);
}

TEST(AddSupply, CreatesSourceOnce) {
    Netlist nl;
    addSupply(nl, "vcc", 5.0);
    const std::size_t n = nl.devices().size();
    addSupply(nl, "vcc", 5.0);
    EXPECT_EQ(nl.devices().size(), n);
}

TEST(CurrentInjection, InjectsIntoNamedNode) {
    Netlist nl;
    nl.node("n1");
    addCurrentInjection(nl, "sync", "n1", Waveform::dc(1e-3));
    Dae dae(nl);
    // Positive waveform value must ADD current into n1's KCL (negative f).
    const num::Vec f = dae.evalF(0.0, num::Vec{0.0});
    EXPECT_NEAR(f[0], -1e-3, 1e-15);
}

TEST(CurrentInjection, FiniteOutputResistanceAdded) {
    Netlist nl;
    nl.node("n1");
    addCurrentInjection(nl, "d", "n1", Waveform::dc(0.0), 10e6);
    Dae dae(nl);
    EXPECT_NEAR(dae.evalG(0.0, num::Vec{1.0})(0, 0), 1e-7, 1e-12);
}

TEST(CmosInverter, DevicesNamedWithPrefix) {
    Netlist nl;
    addSupply(nl, "vdd", 3.0);
    MosfetParams n, p;
    buildCmosInverter(nl, "inv1", "a", "b", "vdd", n, p, 2.0);
    EXPECT_NE(nl.findDevice("inv1.mp"), nullptr);
    EXPECT_NE(nl.findDevice("inv1.mn"), nullptr);
}

TEST(RingOscSpec, DefaultDevicesAreAsymmetric) {
    // The PPV's 2nd harmonic (and hence SHIL) vanishes for perfectly matched
    // inverters; guard the deliberately unmatched defaults.
    RingOscSpec spec;
    EXPECT_NE(spec.nmos.kp, spec.pmos.kp);
    EXPECT_NE(spec.nmos.vt0, spec.pmos.vt0);
}

}  // namespace
}  // namespace phlogon::ckt
