#pragma once
// Shared, lazily-characterized ring oscillator for the analysis/core/logic
// test suites.  The full PSS + PPV pipeline runs once per binary (~40 ms) and
// is reused by every test that needs a realistic oscillator macromodel.

#include "phlogon/latch.hpp"
#include "phlogon/reference.hpp"

namespace phlogon::testutil {

inline const logic::RingOscCharacterization& sharedOsc() {
    static const logic::RingOscCharacterization osc =
        logic::RingOscCharacterization::run(ckt::RingOscSpec{});
    return osc;
}

/// The paper's reference frequency.
inline constexpr double kF1 = 9.6e3;

/// Latch design at the paper's SYNC amplitude (100 uA) — used by the
/// locking-range / bit-flip experiments.
inline const logic::SyncLatchDesign& sharedDesign() {
    static const logic::SyncLatchDesign d =
        logic::designSyncLatch(sharedOsc().model(), sharedOsc().outputUnknown(), kF1, 100e-6);
    return d;
}

/// Stronger-SYNC design used by multi-latch FSMs (the hold barrier must
/// exceed gate-residue disturbances; see PhaseDLatchOptions::clockWeight).
inline const logic::SyncLatchDesign& sharedFsmDesign() {
    static const logic::SyncLatchDesign d =
        logic::designSyncLatch(sharedOsc().model(), sharedOsc().outputUnknown(), kF1, 300e-6);
    return d;
}

}  // namespace phlogon::testutil
