#include "core/gae.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"

namespace phlogon::core {
namespace {

const PpvModel& model() { return testutil::sharedOsc().model(); }
std::size_t injNode() { return testutil::sharedOsc().outputUnknown(); }

TEST(Gae, SyncOnlyShilHasTwoStableLocksHalfCycleApart) {
    const Gae gae(model(), testutil::kF1, {Injection::tone(injNode(), 100e-6, 2)});
    const auto stable = gae.stableEquilibria();
    ASSERT_EQ(stable.size(), 2u);
    EXPECT_NEAR(phaseDistance(stable[0].dphi, stable[1].dphi), 0.5, 1e-3);
    for (const auto& e : stable) EXPECT_LT(e.gSlope, 0.0);
}

TEST(Gae, FourEquilibriaUnderShil) {
    const Gae gae(model(), testutil::kF1, {Injection::tone(injNode(), 100e-6, 2)});
    EXPECT_EQ(gae.equilibria().size(), 4u);  // 2 stable + 2 unstable
}

TEST(Gae, FundamentalToneHasSingleStableLock) {
    const Gae gae(model(), model().f0(), {Injection::tone(injNode(), 50e-6, 1)});
    EXPECT_EQ(gae.stableEquilibria().size(), 1u);
}

TEST(Gae, GScalesLinearlyWithAmplitude) {
    const Gae g1(model(), model().f0(), {Injection::tone(injNode(), 50e-6, 2)});
    const Gae g2(model(), model().f0(), {Injection::tone(injNode(), 100e-6, 2)});
    for (double dphi = 0.0; dphi < 1.0; dphi += 0.09)
        EXPECT_NEAR(g2.g(dphi), 2.0 * g1.g(dphi), 1e-5 * std::abs(g2.gMax()) + 1e-12);
}

TEST(Gae, GIsSumOverInjections) {
    const Injection sync = Injection::tone(injNode(), 100e-6, 2);
    const Injection data = Injection::tone(injNode(), 40e-6, 1, 0.3);
    const Gae gs(model(), testutil::kF1, {sync});
    const Gae gd(model(), testutil::kF1, {data});
    const Gae gboth(model(), testutil::kF1, {sync, data});
    for (double dphi = 0.0; dphi < 1.0; dphi += 0.11)
        EXPECT_NEAR(gboth.g(dphi), gs.g(dphi) + gd.g(dphi), 1e-9);
}

TEST(Gae, SecondHarmonicToneGivesHalfPeriodicG) {
    const Gae gae(model(), model().f0(), {Injection::tone(injNode(), 100e-6, 2)});
    for (double dphi = 0.0; dphi < 0.5; dphi += 0.07)
        EXPECT_NEAR(gae.g(dphi), gae.g(dphi + 0.5), 1e-6 * std::abs(gae.gMax()) + 1e-12);
}

TEST(Gae, LhsIsRelativeDetuning) {
    const Gae gae(model(), 1.01 * model().f0(), {Injection::tone(injNode(), 100e-6, 2)});
    EXPECT_NEAR(gae.lhs(), 0.01, 1e-9);
}

TEST(Gae, RhsZeroAtEquilibria) {
    const Gae gae(model(), testutil::kF1, {Injection::tone(injNode(), 100e-6, 2)});
    for (const auto& e : gae.equilibria())
        EXPECT_NEAR(gae.rhs(e.dphi), 0.0, 1e-6 * model().f0());
}

TEST(Gae, NoLockBeyondRange) {
    // Detune far outside the locking range: no equilibria.
    const Gae gae(model(), 1.05 * model().f0(), {Injection::tone(injNode(), 100e-6, 2)});
    EXPECT_FALSE(gae.locks());
    EXPECT_TRUE(gae.equilibria().empty());
}

TEST(Gae, ZeroAmplitudeDegenerates) {
    const Gae gae(model(), model().f0(), {Injection::tone(injNode(), 0.0, 2)});
    EXPECT_NEAR(gae.gMax(), 0.0, 1e-18);
    EXPECT_NEAR(gae.gMin(), 0.0, 1e-18);
}

TEST(Gae, RejectsBadInputs) {
    EXPECT_THROW(Gae(PpvModel{}, 1.0, {}), std::invalid_argument);
    EXPECT_THROW(Gae(model(), -1.0, {}), std::invalid_argument);
    EXPECT_THROW(Gae(model(), 1.0, {Injection::tone(999, 1.0, 1)}), std::invalid_argument);
}

TEST(Gae, SyncPhaseShiftsLockPhasesByHalf) {
    // Shifting SYNC by half its own cycle (0.5 of the 2f1 tone) shifts the
    // lock phases by 0.25 of the reference cycle.
    const Gae a(model(), model().f0(), {Injection::tone(injNode(), 100e-6, 2, 0.0)});
    const Gae b(model(), model().f0(), {Injection::tone(injNode(), 100e-6, 2, 0.5)});
    const auto sa = a.stableEquilibria();
    const auto sb = b.stableEquilibria();
    ASSERT_EQ(sa.size(), 2u);
    ASSERT_EQ(sb.size(), 2u);
    const double shift = phaseDistance(sa[0].dphi, sb[0].dphi);
    EXPECT_NEAR(shift, 0.25, 1e-3);
}

TEST(Gae, PhaseDependentInjectionUsesDirectEvaluation) {
    // A constant-in-psi feedback contributes a dphi-dependent offset.
    const Injection fb = Injection::phaseDependent(
        injNode(), [](double, double dphi) { return 1e-5 * std::cos(2.0 * std::numbers::pi * dphi); });
    const Gae gae(model(), model().f0(), {fb}, 512);
    // g(dphi) = <v> * 1e-5 cos(2 pi dphi): nonzero variation since <v> != 0.
    EXPECT_GT(gae.gMax() - gae.gMin(), 0.0);
}

TEST(Gae, SampledInjectionMatchesEquivalentTone) {
    const Injection tone = Injection::tone(injNode(), 80e-6, 1, 0.2);
    const Injection samp = Injection::sampled(injNode(), tone.sampleGrid(1024));
    const Gae gt(model(), model().f0(), {tone});
    const Gae gs(model(), model().f0(), {samp});
    for (double dphi = 0.05; dphi < 1.0; dphi += 0.13)
        EXPECT_NEAR(gt.g(dphi), gs.g(dphi), 1e-6 * std::abs(gt.gMax()) + 1e-12);
}

TEST(Gae, SeamEquilibriumReportedExactlyOnce) {
    // Regression: engineer a lock phase at the Δφ = 0/1 periodic seam by
    // choosing f1 so that lhs == g(0) (g does not depend on f1, only the
    // detuning term does).  The equilibrium scan must report exactly one
    // equilibrium at the seam — neither dropped nor double-counted — and
    // every phase must lie in [0, 1).
    const std::vector<Injection> inj{Injection::tone(injNode(), 100e-6, 2)};
    const Gae probe(model(), testutil::kF1, inj);
    const double f0 = probe.f0();
    const Gae gae(model(), f0 * (1.0 + probe.g(0.0)), inj);
    const auto eqs = gae.equilibria();
    std::size_t atSeam = 0;
    for (const auto& e : eqs) {
        EXPECT_GE(e.dphi, 0.0);
        EXPECT_LT(e.dphi, 1.0);
        if (phaseDistance(e.dphi, 0.0) < 1e-6) ++atSeam;
    }
    EXPECT_EQ(atSeam, 1u);
    // The generic picture away from tangency: 4 intersections of lhs with g.
    EXPECT_EQ(eqs.size(), 4u);
}

TEST(Gae, BatchedEvaluatorsMatchScalar) {
    const Gae gae(model(), testutil::kF1, {Injection::tone(injNode(), 100e-6, 2)});
    std::vector<double> dphi;
    for (double x = -1.3; x < 2.0; x += 0.0617) dphi.push_back(x);
    std::vector<double> g(dphi.size()), rhs(dphi.size()), packed(dphi.size());
    gae.gMany(dphi.data(), g.data(), dphi.size());
    gae.rhsMany(dphi.data(), rhs.data(), dphi.size());
    gae.rhsManyPacked(dphi.data(), packed.data(), dphi.size());
    const double scale = std::abs(gae.f0() * gae.gMax()) + std::abs(gae.lhs() * gae.f0());
    for (std::size_t i = 0; i < dphi.size(); ++i) {
        // gMany/rhsMany promise bitwise equality with the scalar calls.
        EXPECT_EQ(g[i], gae.g(dphi[i]));
        EXPECT_EQ(rhs[i], gae.rhs(dphi[i]));
        // The packed-polynomial path agrees to rounding, not bitwise.
        EXPECT_NEAR(packed[i], gae.rhs(dphi[i]), 1e-12 * scale + 1e-15);
    }
}

}  // namespace
}  // namespace phlogon::core
