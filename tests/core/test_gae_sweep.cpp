#include "core/gae_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"

namespace phlogon::core {
namespace {

const PpvModel& model() { return testutil::sharedOsc().model(); }
std::size_t injNode() { return testutil::sharedOsc().outputUnknown(); }

TEST(PhaseDistance, CyclicMetric) {
    EXPECT_NEAR(phaseDistance(0.1, 0.2), 0.1, 1e-12);
    EXPECT_NEAR(phaseDistance(0.95, 0.05), 0.1, 1e-12);
    EXPECT_NEAR(phaseDistance(0.0, 0.5), 0.5, 1e-12);
    EXPECT_NEAR(phaseDistance(1.3, 0.3), 0.0, 1e-12);
}

TEST(LockingRange, ContainsF0) {
    const LockingRange r = lockingRange(model(), {Injection::tone(injNode(), 100e-6, 2)});
    ASSERT_TRUE(r.locks);
    EXPECT_LT(r.fLow, model().f0());
    EXPECT_GT(r.fHigh, model().f0());
    EXPECT_GT(r.width(), 0.0);
}

TEST(LockingRange, ZeroInjectionDoesNotLock) {
    const LockingRange r = lockingRange(model(), {Injection::tone(injNode(), 0.0, 2)});
    EXPECT_FALSE(r.locks);
    EXPECT_DOUBLE_EQ(r.width(), 0.0);
}

TEST(LockingRange, ConsistentWithDirectGaeCheck) {
    const std::vector<Injection> inj{Injection::tone(injNode(), 100e-6, 2)};
    const LockingRange r = lockingRange(model(), inj);
    ASSERT_TRUE(r.locks);
    // Just inside the range: locks; just outside: does not.
    const double margin = 0.05 * r.width();
    EXPECT_TRUE(Gae(model(), r.fLow + margin, inj).locks());
    EXPECT_TRUE(Gae(model(), r.fHigh - margin, inj).locks());
    EXPECT_FALSE(Gae(model(), r.fLow - margin, inj).locks());
    EXPECT_FALSE(Gae(model(), r.fHigh + margin, inj).locks());
}

TEST(LockingRangeVsAmplitude, MonotoneInAmplitude) {
    const Injection unit = Injection::tone(injNode(), 1.0, 2);
    const auto pts =
        lockingRangeVsAmplitude(model(), unit, num::Vec{10e-6, 30e-6, 70e-6, 100e-6, 150e-6});
    ASSERT_EQ(pts.size(), 5u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].range.width(), pts[i - 1].range.width());
    }
    // Width scales linearly with amplitude for a pure tone.
    EXPECT_NEAR(pts[4].range.width() / pts[0].range.width(), 15.0, 0.2);
}

TEST(LockingRangeVsAmplitude, ZeroAmplitudePointDoesNotLock) {
    const Injection unit = Injection::tone(injNode(), 1.0, 2);
    const auto pts = lockingRangeVsAmplitude(model(), unit, num::Vec{0.0, 50e-6});
    EXPECT_FALSE(pts[0].range.locks);
    EXPECT_TRUE(pts[1].range.locks);
}

TEST(LockPhaseErrorSweep, ZeroAtZeroDetuningAndGrowsOutward) {
    const std::vector<Injection> inj{Injection::tone(injNode(), 100e-6, 2)};
    const LockingRange r = lockingRange(model(), inj);
    ASSERT_TRUE(r.locks);
    const num::Vec grid{r.fLow + 0.1 * r.width(), model().f0(), r.fHigh - 0.1 * r.width()};
    const auto pts = lockPhaseErrorSweep(model(), inj, grid);
    ASSERT_EQ(pts.size(), 3u);
    // Zero detuning: errors ~ 0.
    for (double e : pts[1].errors) EXPECT_LT(e, 1e-3);
    // Near the edges: larger error, bounded by 0.25 (quarter cycle).
    for (const auto& p : {pts[0], pts[2]}) {
        ASSERT_FALSE(p.errors.empty());
        for (double e : p.errors) {
            EXPECT_GT(e, 1e-3);
            EXPECT_LT(e, 0.26);
        }
    }
}

TEST(LockPhaseErrorSweep, OutsideRangeHasNoPhases) {
    const std::vector<Injection> inj{Injection::tone(injNode(), 100e-6, 2)};
    const LockingRange r = lockingRange(model(), inj);
    const auto pts = lockPhaseErrorSweep(model(), inj, num::Vec{r.fHigh + 5.0 * r.width()});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_TRUE(pts[0].phases.empty());
}

TEST(SweepInjectionAmplitude, StableStateVanishesAtLargeDataAmplitude) {
    // Fig. 10/11 behaviour: with SYNC fixed, growing the fundamental D tone
    // eventually destroys one of the two SHIL states.
    const std::vector<Injection> sync{Injection::tone(injNode(), 100e-6, 2)};
    const Injection unitD = Injection::tone(injNode(), 1.0, 1);
    const auto pts = sweepInjectionAmplitude(model(), testutil::kF1, sync, unitD,
                                             num::Vec{0.0, 10e-6, 120e-6});
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_EQ(pts[0].stablePhases().size(), 2u);  // SHIL bistable
    EXPECT_EQ(pts[1].stablePhases().size(), 2u);  // small D: still bistable
    EXPECT_EQ(pts[2].stablePhases().size(), 1u);  // large D: monostable
}

TEST(CountIntersections, ShilOnsetThreshold) {
    // Fig. 5 behaviour: with detuning, small SYNC produces no intersections;
    // past the threshold exactly 4 appear (2 stable).
    const Injection unit = Injection::tone(injNode(), 1.0, 2);
    const double f0 = model().f0();
    const double f1 = f0 * 1.004;  // fixed detuning
    const auto pts = countIntersectionsVsAmplitude(model(), f1, {}, unit,
                                                   num::Vec{5e-6, 500e-6});
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].total, 0u);
    EXPECT_EQ(pts[1].total, 4u);
    EXPECT_EQ(pts[1].stable, 2u);
}

TEST(AmplitudeSweepPoint, StablePhasesFilter) {
    AmplitudeSweepPoint p;
    p.equilibria = {{0.1, -1.0, true}, {0.3, 1.0, false}, {0.6, -0.5, true}};
    const auto s = p.stablePhases();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 0.1);
    EXPECT_DOUBLE_EQ(s[1], 0.6);
}

}  // namespace
}  // namespace phlogon::core
