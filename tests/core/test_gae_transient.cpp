#include "core/gae_transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"

namespace phlogon::core {
namespace {

const PpvModel& model() { return testutil::sharedOsc().model(); }
std::size_t injNode() { return testutil::sharedOsc().outputUnknown(); }

std::vector<Injection> syncOnly() { return {Injection::tone(injNode(), 100e-6, 2)}; }

TEST(GaeTransient, RelaxesToNearestStableLock) {
    const Gae gae(model(), testutil::kF1, syncOnly());
    const auto stable = gae.stableEquilibria();
    ASSERT_EQ(stable.size(), 2u);
    // Start near (but not at) the first lock.
    const double start = stable[0].dphi + 0.08;
    const auto r = gaeTransient(model(), testutil::kF1, {{0.0, syncOnly()}}, start, 0.0,
                                40.0 / testutil::kF1);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(phaseDistance(r.final(), stable[0].dphi), 1e-3);
}

TEST(GaeTransient, UnlockedPhaseDriftsMonotonically) {
    // Way outside the locking range the phase slips cycle after cycle.
    const double f1 = model().f0() * 1.05;
    const auto r = gaeTransient(model(), f1, {{0.0, syncOnly()}}, 0.0, 0.0, 20.0 / f1);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(r.final(), -0.5);  // f1 > f0: dphi decreases
}

TEST(GaeTransient, BitFlipReachesTargetPhase) {
    const auto& d = testutil::sharedDesign();
    std::vector<GaeSegment> sched{{0.0, {d.sync(), d.dataInjection(150e-6, 1)}}};
    const auto r = gaeTransient(model(), d.f1, sched, d.reference.phase0 + 0.02, 0.0,
                                40.0 / d.f1);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(phaseDistance(r.final(), d.reference.phase1), 0.03);
}

TEST(GaeTransient, WeakInputFailsToFlip) {
    // Fig. 12 behaviour: a D amplitude below the flip threshold cannot move
    // the bit.  (This design's threshold is ~2*syncAmp*|V2|/|V1| ~ 20 uA;
    // the paper's circuit had ~50 uA — same physics, different constants.)
    const auto& d = testutil::sharedDesign();
    std::vector<GaeSegment> sched{{0.0, {d.sync(), d.dataInjection(10e-6, 1)}}};
    const auto r = gaeTransient(model(), d.f1, sched, d.reference.phase0 + 0.02, 0.0,
                                60.0 / d.f1);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(phaseDistance(r.final(), d.reference.phase0), 0.1);
}

TEST(GaeTransient, StrongerInputFlipsFaster) {
    const auto& d = testutil::sharedDesign();
    auto flipTime = [&](double amp) {
        std::vector<GaeSegment> sched{{0.0, {d.sync(), d.dataInjection(amp, 1)}}};
        const auto r = gaeTransient(model(), d.f1, sched, d.reference.phase0 + 0.02, 0.0,
                                    80.0 / d.f1);
        EXPECT_TRUE(r.ok);
        return settleTime(r, d.reference.phase1, 0.02);
    };
    const double t100 = flipTime(100e-6);
    const double t150 = flipTime(150e-6);
    EXPECT_LT(t150, t100);
}

TEST(GaeTransient, ScheduleSegmentsSwitchInjections) {
    const auto& d = testutil::sharedDesign();
    const double bitT = 40.0 / d.f1;
    std::vector<GaeSegment> sched{
        {0.0, {d.sync(), d.dataInjection(150e-6, 1)}},
        {bitT, {d.sync(), d.dataInjection(150e-6, 0)}},
    };
    const auto r = gaeTransient(model(), d.f1, sched, d.reference.phase0 + 0.02, 0.0, 2.0 * bitT);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(phaseDistance(r.at(0.95 * bitT), d.reference.phase1), 0.03);
    EXPECT_LT(phaseDistance(r.final(), d.reference.phase0), 0.03);
}

TEST(GaeTransient, AtInterpolatesBetweenPoints) {
    const auto r = gaeTransient(model(), testutil::kF1, {{0.0, syncOnly()}}, 0.2, 0.0,
                                5.0 / testutil::kF1);
    ASSERT_TRUE(r.ok);
    ASSERT_GE(r.t.size(), 3u);
    const double mid = 0.5 * (r.t[0] + r.t[1]);
    const double v = r.at(mid);
    EXPECT_GE(v, std::min(r.dphi[0], r.dphi[1]) - 1e-12);
    EXPECT_LE(v, std::max(r.dphi[0], r.dphi[1]) + 1e-12);
    // Out-of-range queries clamp.
    EXPECT_DOUBLE_EQ(r.at(-1.0), r.dphi.front());
    EXPECT_DOUBLE_EQ(r.at(1e9), r.dphi.back());
}

TEST(GaeTransient, RejectsBadSchedules) {
    EXPECT_THROW(gaeTransient(model(), testutil::kF1, {}, 0.0, 0.0, 1.0), std::invalid_argument);
    std::vector<GaeSegment> unsorted{{1.0, syncOnly()}, {0.0, syncOnly()}};
    EXPECT_THROW(gaeTransient(model(), testutil::kF1, unsorted, 0.0, 0.0, 1.0),
                 std::invalid_argument);
}

TEST(GaeEnsemble, MatchesScalarBitFlipTrajectories) {
    // The Fig. 10/12 two-tone bit-flip experiment run as a batched ensemble:
    // for B = 1..8 starting phases, every lane must reproduce the scalar
    // gaeTransient trajectory from the same start to 1e-12 (the BatchOde
    // path is designed to be bitwise-identical; 1e-12 is the acceptance
    // bound).
    const auto& d = testutil::sharedDesign();
    const double bitT = 40.0 / d.f1;
    const std::vector<GaeSegment> sched{
        {0.0, {d.sync(), d.dataInjection(150e-6, 1)}},
        {bitT, {d.sync(), d.dataInjection(150e-6, 0)}},
    };
    for (std::size_t B = 1; B <= 8; ++B) {
        Vec starts(B);
        for (std::size_t l = 0; l < B; ++l)
            starts[l] = d.reference.phase0 + 0.01 + 0.012 * static_cast<double>(l);
        const auto ens = gaeTransientEnsemble(model(), d.f1, sched, starts, 0.0, 2.0 * bitT);
        ASSERT_TRUE(ens.ok) << "B=" << B;
        ASSERT_EQ(ens.trials.size(), B);
        for (std::size_t l = 0; l < B; ++l) {
            const auto ref = gaeTransient(model(), d.f1, sched, starts[l], 0.0, 2.0 * bitT);
            ASSERT_TRUE(ref.ok);
            ASSERT_EQ(ens.trials[l].t.size(), ref.t.size()) << "B=" << B << " lane=" << l;
            for (std::size_t p = 0; p < ref.t.size(); ++p) {
                EXPECT_NEAR(ens.trials[l].t[p], ref.t[p], 1e-12 * (1.0 + std::abs(ref.t[p])));
                EXPECT_NEAR(ens.trials[l].dphi[p], ref.dphi[p],
                            1e-12 * (1.0 + std::abs(ref.dphi[p])));
            }
            // And the physics: each lane completes the 1 -> 0 flip.
            EXPECT_LT(phaseDistance(ens.trials[l].at(0.95 * bitT), d.reference.phase1), 0.03);
            EXPECT_LT(phaseDistance(ens.trials[l].final(), d.reference.phase0), 0.03);
            // Work accounting mirrors the scalar counters.
            EXPECT_EQ(ens.trials[l].counters.steps, ref.counters.steps);
            EXPECT_EQ(ens.trials[l].counters.rejectedSteps, ref.counters.rejectedSteps);
            EXPECT_EQ(ens.trials[l].counters.rhsEvals, ref.counters.rhsEvals);
        }
    }
}

TEST(GaeEnsemble, EmptyEnsembleAndValidation) {
    const auto& d = testutil::sharedDesign();
    const auto none =
        gaeTransientEnsemble(model(), d.f1, {{0.0, {d.sync()}}}, Vec{}, 0.0, 1.0 / d.f1);
    EXPECT_TRUE(none.ok);
    EXPECT_TRUE(none.trials.empty());
    EXPECT_THROW(gaeTransientEnsemble(model(), d.f1, {}, Vec{0.0}, 0.0, 1.0),
                 std::invalid_argument);
}

TEST(SettleTime, DetectsFirstPersistentEntry) {
    GaeTransientResult r;
    r.ok = true;
    r.t = {0.0, 1.0, 2.0, 3.0, 4.0};
    r.dphi = {0.5, 0.3, 0.11, 0.1, 0.1};
    EXPECT_DOUBLE_EQ(settleTime(r, 0.1, 0.02), 2.0);
}

TEST(SettleTime, LeavingBandResets) {
    GaeTransientResult r;
    r.ok = true;
    r.t = {0.0, 1.0, 2.0, 3.0};
    r.dphi = {0.1, 0.5, 0.1, 0.1};
    EXPECT_DOUBLE_EQ(settleTime(r, 0.1, 0.02), 2.0);
}

}  // namespace
}  // namespace phlogon::core
