#include "core/injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace phlogon::core {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(Injection, ToneEvaluatesCosine) {
    const Injection inj = Injection::tone(3, 2e-3, 1, 0.25, "t");
    EXPECT_EQ(inj.unknownIndex, 3u);
    EXPECT_FALSE(inj.isPhaseDependent());
    EXPECT_NEAR(inj.currentAtPsi(0.25), 2e-3, 1e-15);  // cos(0) at psi = phase
    EXPECT_NEAR(inj.currentAtPsi(0.5), 0.0, 1e-15);
    EXPECT_NEAR(inj.currentAtPsi(0.75), -2e-3, 1e-15);
}

TEST(Injection, SecondHarmonicTone) {
    const Injection inj = Injection::tone(0, 1.0, 2);
    // Period 1/2 in psi.
    EXPECT_NEAR(inj.currentAtPsi(0.0), inj.currentAtPsi(0.5), 1e-12);
    EXPECT_NEAR(inj.currentAtPsi(0.25), -1.0, 1e-12);
}

TEST(Injection, SampledInterpolates) {
    const Injection inj = Injection::sampled(1, num::Vec{0.0, 1.0, 0.0, -1.0});
    EXPECT_NEAR(inj.currentAtPsi(0.25), 1.0, 1e-12);
    EXPECT_NEAR(inj.currentAtPsi(0.125), 0.5, 1e-12);
    EXPECT_NEAR(inj.currentAtPsi(1.25), 1.0, 1e-12);  // periodic
}

TEST(Injection, ScaledMultipliesAmplitude) {
    const Injection base = Injection::tone(0, 1e-3, 1);
    const Injection s = base.scaled(2.5);
    EXPECT_NEAR(s.currentAtPsi(0.0), 2.5e-3, 1e-15);
    EXPECT_EQ(s.unknownIndex, base.unknownIndex);
}

TEST(Injection, SampleGridMatchesFunction) {
    const Injection inj = Injection::tone(0, 1.0, 1, 0.1);
    const num::Vec g = inj.sampleGrid(64);
    ASSERT_EQ(g.size(), 64u);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NEAR(g[i], std::cos(kTwoPi * (i / 64.0 - 0.1)), 1e-12);
}

TEST(Injection, PhaseDependentForm) {
    const Injection inj = Injection::phaseDependent(
        2, [](double psi, double dphi) { return psi + 10.0 * dphi; }, "fb");
    EXPECT_TRUE(inj.isPhaseDependent());
    EXPECT_NEAR(inj.currentAtPsiDphi(0.5, 0.1), 1.5, 1e-12);
}

TEST(Injection, PhaseDependentScaled) {
    const Injection inj = Injection::phaseDependent(
        0, [](double psi, double dphi) { return psi * dphi; });
    const Injection s = inj.scaled(3.0);
    EXPECT_TRUE(s.isPhaseDependent());
    EXPECT_NEAR(s.currentAtPsiDphi(0.5, 0.5), 0.75, 1e-12);
}

}  // namespace
}  // namespace phlogon::core
