#include "core/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"
#include "numeric/simd/simd.hpp"

namespace phlogon::core {
namespace {

const PpvModel& model() { return testutil::sharedOsc().model(); }
std::size_t injNode() { return testutil::sharedOsc().outputUnknown(); }

TEST(PhaseDiffusion, ZeroForZeroPsd) {
    EXPECT_DOUBLE_EQ(phaseDiffusion(model(), {{injNode(), 0.0}}), 0.0);
}

TEST(PhaseDiffusion, LinearInPsd) {
    const double c1 = phaseDiffusion(model(), {{injNode(), 1e-22}});
    const double c2 = phaseDiffusion(model(), {{injNode(), 2e-22}});
    EXPECT_GT(c1, 0.0);
    EXPECT_NEAR(c2, 2.0 * c1, 1e-12 * c2);
}

TEST(PhaseDiffusion, AdditiveOverSources) {
    const double cA = phaseDiffusion(model(), {{injNode(), 1e-22}});
    const double cB = phaseDiffusion(model(), {{0, 3e-22}});
    const double cBoth = phaseDiffusion(model(), {{injNode(), 1e-22}, {0, 3e-22}});
    EXPECT_NEAR(cBoth, cA + cB, 1e-12 * cBoth);
}

TEST(PhaseDiffusion, Validation) {
    EXPECT_THROW(phaseDiffusion(model(), {{9999, 1e-22}}), std::invalid_argument);
    EXPECT_THROW(phaseDiffusion(PpvModel{}, {}), std::invalid_argument);
}

TEST(ResistorNoise, JohnsonFormula) {
    // 4kT/R at 300 K for 1 kohm ~ 1.66e-23 A^2/Hz.
    EXPECT_NEAR(resistorCurrentPsd(1e3), 1.66e-23, 0.01e-23);
    EXPECT_THROW(resistorCurrentPsd(0.0), std::invalid_argument);
}

TEST(StochasticGae, ZeroNoiseMatchesDeterministic) {
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    const auto stable = gae.stableEquilibria();
    ASSERT_EQ(stable.size(), 2u);
    const auto r = stochasticGaeTransient(gae, 0.0, stable[0].dphi + 0.05, 0.0, 40.0 / d.f1);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(phaseDistance(r.dphi.back(), stable[0].dphi), 2e-3);
}

TEST(StochasticGae, Reproducible) {
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    StochasticGaeOptions opt;
    opt.seed = 7;
    const double c = 1e-9;
    const auto r1 = stochasticGaeTransient(gae, c, 0.1, 0.0, 10.0 / d.f1, opt);
    const auto r2 = stochasticGaeTransient(gae, c, 0.1, 0.0, 10.0 / d.f1, opt);
    ASSERT_TRUE(r1.ok && r2.ok);
    ASSERT_EQ(r1.dphi.size(), r2.dphi.size());
    for (std::size_t i = 0; i < r1.dphi.size(); ++i)
        EXPECT_DOUBLE_EQ(r1.dphi[i], r2.dphi[i]);
}

TEST(StochasticGae, FreeRunningVarianceMatchesDiffusion) {
    // Without injections the phase performs pure Brownian motion:
    // var(dphi(t)) = f0^2 c t.  Check the Monte-Carlo variance against the
    // formula within statistical tolerance.
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.model.f0(), {Injection::tone(injNode(), 0.0, 1)});
    const double c = 2e-10;
    const double span = 20.0 / d.model.f0();
    const std::size_t trials = 300;
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t k = 0; k < trials; ++k) {
        StochasticGaeOptions opt;
        opt.seed = 1000 + k;
        opt.storeEvery = 1u << 20;
        const auto r = stochasticGaeTransient(gae, c, 0.0, 0.0, span, opt);
        sum += r.dphi.back();
        sum2 += r.dphi.back() * r.dphi.back();
    }
    const double var = sum2 / trials - (sum / trials) * (sum / trials);
    const double expected = d.model.f0() * d.model.f0() * c * span;
    EXPECT_NEAR(var, expected, 0.25 * expected);  // ~sqrt(2/300) ~ 8% stat error
}

TEST(HoldError, NoNoiseNoErrors) {
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    const auto r = holdErrorProbability(gae, 0.0, d.reference.phase1, 30.0 / d.f1, 20);
    EXPECT_EQ(r.trials, 20u);
    EXPECT_EQ(r.errors, 0u);
}

TEST(HoldError, ExtremeNoiseRandomizesTheBit) {
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    // Diffusion so strong the phase random-walks across many cycles.
    const auto r = holdErrorProbability(gae, 1e-4, d.reference.phase1, 30.0 / d.f1, 60);
    EXPECT_GT(r.errorRate(), 0.2);
}

TEST(HoldError, StrongerSyncHoldsBetter) {
    // The noise-immunity design knob: the SHIL barrier grows with SYNC, so
    // the bit-loss rate at fixed noise must drop.
    const auto& osc = testutil::sharedOsc();
    const double c = 2e-7;  // calibrated so the weak latch loses ~30% of bits
    const double span = 60.0 / osc.f0();
    auto rate = [&](double syncAmp) {
        const Gae gae(osc.model(), testutil::kF1,
                      {Injection::tone(osc.outputUnknown(), syncAmp, 2)});
        const auto stable = gae.stableEquilibria();
        EXPECT_EQ(stable.size(), 2u);
        return holdErrorProbability(gae, c, stable[0].dphi, span, 120).errorRate();
    };
    const double weak = rate(60e-6);
    const double strong = rate(300e-6);
    EXPECT_GT(weak, strong);
    EXPECT_GT(weak, 0.02);  // the weak latch must actually lose bits here
}

TEST(HoldErrorBatched, ZeroNoiseNoErrors) {
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    StochasticGaeOptions opt;
    opt.batch = 16;
    const auto r = holdErrorProbability(gae, 0.0, d.reference.phase1, 30.0 / d.f1, 20, opt);
    EXPECT_EQ(r.trials, 20u);
    EXPECT_EQ(r.errors, 0u);
}

TEST(HoldErrorBatched, BitwiseStableAcrossThreadsAndBatchSize) {
    // The PR-1 determinism contract extended to the batched engine: the error
    // count must be identical at any thread count AND any batch size, because
    // trial k's arithmetic depends only on (seed, k), never on lane grouping.
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    const double c = 2e-7;
    const double span = 40.0 / d.f1;
    StochasticGaeOptions ref;
    ref.seed = 12345;
    ref.batch = 8;
    ref.threads = 1;
    const auto baseline = holdErrorProbability(gae, c, d.reference.phase1, span, 96, ref);
    EXPECT_EQ(baseline.trials, 96u);
    for (const unsigned threads : {1u, 3u, 4u}) {
        for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
            StochasticGaeOptions opt;
            opt.seed = 12345;
            opt.batch = batch;
            opt.threads = threads;
            const auto r = holdErrorProbability(gae, c, d.reference.phase1, span, 96, opt);
            EXPECT_EQ(r.errors, baseline.errors)
                << "threads=" << threads << " batch=" << batch;
            EXPECT_EQ(r.trials, baseline.trials);
        }
    }
}

TEST(HoldErrorBatched, SimdOnEqualsOff) {
    // The SIMD kernels are an opt-in that must be bitwise-invisible: the
    // same seed and batch size must produce the identical error count with
    // opt.simd on and off.  Skip when PHLOGON_SIMD forces a tier, since then
    // both runs resolve to the same kernels and the test proves nothing.
    if (num::simd::envMode() != num::simd::EnvMode::Auto)
        GTEST_SKIP() << "PHLOGON_SIMD overrides the opt-in";
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    const double c = 2e-7;
    const double span = 40.0 / d.f1;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
        StochasticGaeOptions off;
        off.seed = 777;
        off.batch = batch;
        off.simd = false;
        const auto a = holdErrorProbability(gae, c, d.reference.phase1, span, 48, off);
        StochasticGaeOptions on = off;
        on.simd = true;
        const auto b = holdErrorProbability(gae, c, d.reference.phase1, span, 48, on);
        EXPECT_EQ(a.trials, b.trials) << "batch=" << batch;
        EXPECT_EQ(a.errors, b.errors) << "batch=" << batch;
    }
}

TEST(HoldErrorBatched, AgreesWithScalarPhysics) {
    // The batched engine is a different RNG configuration, so counts differ
    // from the scalar path — but the physics must agree: extreme noise
    // randomizes the bit in both engines, mild noise loses few bits in both.
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    StochasticGaeOptions batched;
    batched.batch = 32;
    const auto noisy = holdErrorProbability(gae, 1e-4, d.reference.phase1, 30.0 / d.f1, 60, batched);
    EXPECT_GT(noisy.errorRate(), 0.2);
    const auto quiet =
        holdErrorProbability(gae, 1e-12, d.reference.phase1, 30.0 / d.f1, 60, batched);
    EXPECT_LT(quiet.errorRate(), 0.05);
}

TEST(HoldErrorBatched, StrongerSyncHoldsBetter) {
    // Same design-knob conclusion as the scalar engine (Kramers escape over
    // the SHIL barrier), reached via the batched path.
    const auto& osc = testutil::sharedOsc();
    const double c = 2e-7;
    const double span = 60.0 / osc.f0();
    auto rate = [&](double syncAmp) {
        const Gae gae(osc.model(), testutil::kF1,
                      {Injection::tone(osc.outputUnknown(), syncAmp, 2)});
        const auto stable = gae.stableEquilibria();
        EXPECT_EQ(stable.size(), 2u);
        StochasticGaeOptions opt;
        opt.batch = 16;
        return holdErrorProbability(gae, c, stable[0].dphi, span, 120, opt).errorRate();
    };
    const double weak = rate(60e-6);
    const double strong = rate(300e-6);
    EXPECT_GT(weak, strong);
    EXPECT_GT(weak, 0.02);
}

TEST(HoldError, RequiresLockedGae) {
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, 1.1 * d.model.f0(), {d.sync()});  // way outside range
    EXPECT_THROW(holdErrorProbability(gae, 1e-9, 0.0, 1e-3, 5), std::invalid_argument);
}

}  // namespace
}  // namespace phlogon::core
