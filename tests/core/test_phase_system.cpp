#include "core/phase_system.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"

namespace phlogon::core {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

const PpvModel& model() { return testutil::sharedOsc().model(); }
std::size_t injNode() { return testutil::sharedOsc().outputUnknown(); }

TEST(PhaseSystem, FreeRunningLatchDriftsAtDetuningRate) {
    PhaseSystem sys;
    sys.addLatch(model(), "osc");
    const double f1 = model().f0() * 1.001;
    const double span = 10.0 / f1;
    const auto r = sys.simulate(f1, 0.0, span, num::Vec{0.0});
    ASSERT_TRUE(r.ok);
    // d(dphi)/dt = f0 - f1 with no injections.
    EXPECT_NEAR(r.dphi[0].back(), (model().f0() - f1) * span, 1e-6);
}

TEST(PhaseSystem, SyncInjectionLocksPhase) {
    PhaseSystem sys;
    const auto latch = sys.addLatch(model(), "osc");
    const double f1 = testutil::kF1;
    const auto sync = sys.addExternal(
        [f1](double t) { return 100e-6 * std::cos(kTwoPi * 2.0 * f1 * t); }, "sync");
    sys.connect(latch, injNode(), sync, 1.0);

    // Compare against the averaged GAE's stable phases.
    const Gae gae(model(), f1, {Injection::tone(injNode(), 100e-6, 2)});
    const auto stable = gae.stableEquilibria();
    ASSERT_EQ(stable.size(), 2u);

    const auto r = sys.simulate(f1, 0.0, 60.0 / f1, num::Vec{stable[0].dphi + 0.06});
    ASSERT_TRUE(r.ok);
    // The non-averaged simulation carries fast ripple and O(g) averaging
    // corrections relative to the averaged GAE equilibrium.
    EXPECT_LT(phaseDistance(r.dphi[0].back(), stable[0].dphi), 0.03);
}

TEST(PhaseSystem, NonAveragedMatchesGaeLockFromBothBasins) {
    PhaseSystem sys;
    const auto latch = sys.addLatch(model(), "osc");
    const double f1 = testutil::kF1;
    const auto sync = sys.addExternal(
        [f1](double t) { return 100e-6 * std::cos(kTwoPi * 2.0 * f1 * t); }, "sync");
    sys.connect(latch, injNode(), sync, 1.0);
    const Gae gae(model(), f1, {Injection::tone(injNode(), 100e-6, 2)});
    const auto stable = gae.stableEquilibria();
    for (const auto& eq : stable) {
        const auto r = sys.simulate(f1, 0.0, 60.0 / f1, num::Vec{eq.dphi - 0.07});
        ASSERT_TRUE(r.ok);
        EXPECT_LT(phaseDistance(r.dphi[0].back(), eq.dphi), 0.03);
    }
}

TEST(PhaseSystem, GateComputesWeightedSum) {
    PhaseSystem sys;
    const auto a = sys.addExternal([](double) { return 0.5; });
    const auto b = sys.addExternal([](double) { return -0.25; });
    const auto g = sys.addGate({{a, 2.0}, {b, 4.0}}, false, 0.0);
    EXPECT_NEAR(sys.signalValue(g, 0.0, 1.0, {}), 0.0, 1e-12);
    const auto gi = sys.addGate({{a, 1.0}}, true, 0.0);
    EXPECT_NEAR(sys.signalValue(gi, 0.0, 1.0, {}), -0.5, 1e-12);
}

TEST(PhaseSystem, GateClipSaturates) {
    PhaseSystem sys;
    const auto a = sys.addExternal([](double) { return 10.0; });
    const auto g = sys.addGate({{a, 1.0}}, false, 0.5);
    EXPECT_NEAR(sys.signalValue(g, 0.0, 1.0, {}), 0.5, 1e-6);
}

TEST(PhaseSystem, GateRejectsForwardReferences) {
    PhaseSystem sys;
    const auto a = sys.addExternal([](double) { return 0.0; });
    EXPECT_THROW(sys.addGate({{a + 5, 1.0}}), std::invalid_argument);
}

TEST(PhaseSystem, PlaceholderBindingAndLoopDetection) {
    PhaseSystem sys;
    const auto ph = sys.addPlaceholder("fwd");
    const auto a = sys.addExternal([](double) { return 2.0; });
    const auto g = sys.addGate({{ph, 1.0}, {a, 1.0}});
    // Binding the placeholder to a gate that depends on it is a loop.
    EXPECT_THROW(sys.bindPlaceholder(ph, g), std::invalid_argument);
    sys.bindPlaceholder(ph, a);
    EXPECT_NEAR(sys.signalValue(g, 0.0, 1.0, {}), 4.0, 1e-12);
}

TEST(PhaseSystem, UnboundPlaceholderThrowsOnEval) {
    PhaseSystem sys;
    const auto ph = sys.addPlaceholder("fwd");
    EXPECT_THROW(sys.signalValue(ph, 0.0, 1.0, {}), std::logic_error);
}

TEST(PhaseSystem, LatchOutputIsUnitFundamental) {
    PhaseSystem sys;
    const auto latch = sys.addLatch(model(), "osc");
    const auto out = sys.latchOutput(latch);
    const double f1 = model().f0();
    // At dphi = 0: peak at theta == dphiPeak, i.e. t = dphiPeak / f1.
    const num::Vec dphi{0.0};
    EXPECT_NEAR(sys.signalValue(out, model().dphiPeak() / f1, f1, dphi), 1.0, 1e-9);
    EXPECT_NEAR(sys.signalValue(out, (model().dphiPeak() + 0.5) / f1, f1, dphi), -1.0, 1e-9);
}

TEST(PhaseSystem, ConnectionDelayShiftsWritePhase) {
    // Delaying the injected tone by d cycles adds d to its phase chi; the
    // lock phase dphi* = offset - chi therefore moves by exactly -d.
    const double f1 = model().f0();
    auto lockWith = [&](double delayCycles) {
        PhaseSystem sys;
        const auto latch = sys.addLatch(model(), "osc");
        const auto toneSig = sys.addExternal(
            [f1](double t) { return 100e-6 * std::cos(kTwoPi * f1 * t); }, "in");
        sys.connect(latch, injNode(), toneSig, 1.0, delayCycles);
        const auto r = sys.simulate(f1, 0.0, 60.0 / f1, num::Vec{0.25});
        EXPECT_TRUE(r.ok);
        return num::wrap01(r.dphi[0].back());
    };
    const double base = lockWith(0.0);
    const double delayed = lockWith(0.2);
    // Each lock carries its own O(g) averaging correction; allow their sum.
    EXPECT_NEAR(phaseDistance(delayed, num::wrap01(base - 0.2)), 0.0, 0.02);
}

TEST(PhaseSystem, VoutReconstructionTracksPhase) {
    PhaseSystem sys;
    sys.addLatch(model(), "osc");
    const double f1 = model().f0();
    const auto r = sys.simulate(f1, 0.0, 2.0 / f1, num::Vec{0.0}, 64, 1);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.vout.size(), 1u);
    ASSERT_EQ(r.vout[0].size(), r.t.size());
    // vout must equal xs evaluated at theta(t).
    for (std::size_t i = 0; i < r.t.size(); i += 16) {
        const double theta = f1 * r.t[i] + r.dphi[0][i];
        EXPECT_NEAR(r.vout[0][i], model().xsAt(model().outputUnknown(), theta), 1e-9);
    }
}

TEST(PhaseSystem, SimulateValidatesArguments) {
    PhaseSystem sys;
    sys.addLatch(model(), "osc");
    EXPECT_THROW(sys.simulate(1.0, 0.0, 1.0, num::Vec{}), std::invalid_argument);
    EXPECT_THROW(sys.simulate(-1.0, 0.0, 1.0, num::Vec{0.0}), std::invalid_argument);
    EXPECT_THROW(sys.simulate(1.0, 1.0, 0.0, num::Vec{0.0}), std::invalid_argument);
}

TEST(PhaseSystem, ConnectValidatesIndices) {
    PhaseSystem sys;
    const auto latch = sys.addLatch(model(), "osc");
    EXPECT_THROW(sys.connect(latch, 9999, sys.latchOutput(latch), 1.0), std::invalid_argument);
    EXPECT_THROW(sys.connect(latch, injNode(), 42, 1.0), std::invalid_argument);
    EXPECT_THROW(sys.connect(latch + 1, injNode(), sys.latchOutput(latch), 1.0),
                 std::invalid_argument);
    // The out-of-range message must identify the offending latch and index so
    // a thousand-latch fabric build failure is debuggable.
    try {
        sys.connect(latch, 9999, sys.latchOutput(latch), 1.0);
        FAIL() << "connect accepted an out-of-range unknown index";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("9999"), std::string::npos) << msg;
        EXPECT_NE(msg.find("osc"), std::string::npos) << msg;
        EXPECT_NE(msg.find("unknown"), std::string::npos) << msg;
    }
}

TEST(PhaseSystem, SharedSignalMemoizationIsBitwiseNeutral) {
    // Two latches driven by the same external signal: the second latch's
    // connection evaluation hits the per-stage memo cache instead of
    // re-evaluating the signal.  The cache stores the computed double, so
    // each latch's trajectory must be bitwise identical to a single-latch
    // system with the same drive (simulate uses fixed-step RK4, so the time
    // grids coincide exactly).
    const double f1 = testutil::kF1;
    auto drive = [f1](double t) { return 100e-6 * std::cos(kTwoPi * 2.0 * f1 * t); };
    const double start = 0.1;
    const double span = 20.0 / f1;

    PhaseSystem solo;
    const auto l0 = solo.addLatch(model(), "osc");
    solo.connect(l0, injNode(), solo.addExternal(drive, "sync"), 1.0);
    const auto rs = solo.simulate(f1, 0.0, span, num::Vec{start});
    ASSERT_TRUE(rs.ok);

    PhaseSystem duo;
    const auto la = duo.addLatch(model(), "a");
    const auto lb = duo.addLatch(model(), "b");
    const auto sync = duo.addExternal(drive, "sync");
    duo.connect(la, injNode(), sync, 1.0);
    duo.connect(lb, injNode(), sync, 1.0);
    const auto rd = duo.simulate(f1, 0.0, span, num::Vec{start, start});
    ASSERT_TRUE(rd.ok);

    ASSERT_EQ(rd.t.size(), rs.t.size());
    for (std::size_t i = 0; i < rs.t.size(); ++i) {
        EXPECT_EQ(rd.dphi[0][i], rs.dphi[0][i]) << "i=" << i;
        EXPECT_EQ(rd.dphi[1][i], rs.dphi[0][i]) << "i=" << i;
    }
}

TEST(PhaseSystem, RepeatedSimulationsAreBitwiseReproducible) {
    // Guards the memo cache's stamp management: re-running simulate on the
    // same system (stale cache entries from the previous run) must change
    // nothing.
    PhaseSystem sys;
    const auto latch = sys.addLatch(model(), "osc");
    const double f1 = testutil::kF1;
    const auto sync = sys.addExternal(
        [f1](double t) { return 100e-6 * std::cos(kTwoPi * 2.0 * f1 * t); }, "sync");
    const auto g = sys.addGate({{sync, 1.0}}, false, 0.0);
    sys.connect(latch, injNode(), g, 1.0);
    const auto r1 = sys.simulate(f1, 0.0, 15.0 / f1, num::Vec{0.2});
    const auto r2 = sys.simulate(f1, 0.0, 15.0 / f1, num::Vec{0.2});
    ASSERT_TRUE(r1.ok && r2.ok);
    ASSERT_EQ(r1.t.size(), r2.t.size());
    for (std::size_t i = 0; i < r1.t.size(); ++i)
        EXPECT_EQ(r1.dphi[0][i], r2.dphi[0][i]);
}

TEST(PhaseSystem, TwoLatchesIndependentWhenUncoupled) {
    PhaseSystem sys;
    sys.addLatch(model(), "a");
    sys.addLatch(model(), "b");
    const double f1 = model().f0() * 1.0005;
    const auto r = sys.simulate(f1, 0.0, 10.0 / f1, num::Vec{0.1, 0.4});
    ASSERT_TRUE(r.ok);
    // Same drift applied to both, initial separation preserved.
    EXPECT_NEAR(r.dphi[1].back() - r.dphi[0].back(), 0.3, 1e-9);
}

}  // namespace
}  // namespace phlogon::core
