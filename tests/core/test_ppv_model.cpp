#include "core/ppv_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/osc_fixture.hpp"

namespace phlogon::core {
namespace {

TEST(PpvModel, BasicProperties) {
    const PpvModel& m = testutil::sharedOsc().model();
    EXPECT_TRUE(m.valid());
    EXPECT_GT(m.f0(), 0.0);
    EXPECT_NEAR(m.period(), 1.0 / m.f0(), 1e-15);
    EXPECT_EQ(m.size(), testutil::sharedOsc().dae().size());
    EXPECT_EQ(m.sampleCount(), 256u);
}

TEST(PpvModel, DefaultConstructedInvalid) {
    PpvModel m;
    EXPECT_FALSE(m.valid());
}

TEST(PpvModel, IndexOfFindsNodes) {
    const PpvModel& m = testutil::sharedOsc().model();
    EXPECT_EQ(m.indexOf("osc.n1"), testutil::sharedOsc().outputUnknown());
    EXPECT_THROW(m.indexOf("missing"), std::out_of_range);
}

TEST(PpvModel, XsInterpolationMatchesSamples) {
    const PpvModel& m = testutil::sharedOsc().model();
    const std::size_t idx = m.outputUnknown();
    const num::Vec& s = m.xsSamples(idx);
    for (std::size_t k = 0; k < s.size(); k += 17)
        EXPECT_NEAR(m.xsAt(idx, static_cast<double>(k) / s.size()), s[k], 1e-9);
}

TEST(PpvModel, XsIsPeriodic) {
    const PpvModel& m = testutil::sharedOsc().model();
    const std::size_t idx = m.outputUnknown();
    EXPECT_NEAR(m.xsAt(idx, 0.3), m.xsAt(idx, 1.3), 1e-12);
    EXPECT_NEAR(m.ppvAt(idx, 0.7), m.ppvAt(idx, -0.3), 1e-12);
}

TEST(PpvModel, FundamentalPeakIsWhereFundamentalPeaks) {
    const PpvModel& m = testutil::sharedOsc().model();
    const std::size_t idx = m.outputUnknown();
    // Reconstruct the fundamental from samples and verify the peak location.
    const num::CVec c = num::fourierCoefficients(m.xsSamples(idx), 1);
    const double peak = m.dphiPeak();
    const auto fund = [&](double th) {
        return 2.0 * std::abs(c[1]) *
               std::cos(2.0 * std::numbers::pi * th + std::arg(c[1]));
    };
    // Value at the reported peak should exceed neighbours.
    EXPECT_GT(fund(peak), fund(peak + 0.05));
    EXPECT_GT(fund(peak), fund(peak - 0.05));
}

TEST(PpvModel, OutputAmplitudeIsFundamentalMagnitude) {
    const PpvModel& m = testutil::sharedOsc().model();
    const num::CVec c = num::fourierCoefficients(m.xsSamples(m.outputUnknown()), 1);
    EXPECT_NEAR(m.outputAmplitude(), 2.0 * std::abs(c[1]), 1e-9);
}

TEST(PpvModel, OutputMeanNearMidRail) {
    const PpvModel& m = testutil::sharedOsc().model();
    EXPECT_GT(m.outputMean(), 1.0);
    EXPECT_LT(m.outputMean(), 2.0);
}

TEST(PpvModel, HarmonicsDecay) {
    const PpvModel& m = testutil::sharedOsc().model();
    const std::size_t idx = m.outputUnknown();
    EXPECT_GT(m.ppvHarmonic(idx, 1), m.ppvHarmonic(idx, 3));
    EXPECT_GT(m.ppvHarmonic(idx, 2), m.ppvHarmonic(idx, 5));
}

TEST(PpvModel, BuildRejectsBadInput) {
    an::PssResult badPss;
    an::PpvResult badPpv;
    EXPECT_THROW(PpvModel::build(badPss, badPpv, 0, {}), std::invalid_argument);
}

TEST(PpvModel, BuildRejectsBadOutputIndex) {
    const auto& osc = testutil::sharedOsc();
    EXPECT_THROW(PpvModel::build(osc.pss(), osc.ppv(), 999, osc.netlist().unknownNames()),
                 std::invalid_argument);
}

}  // namespace
}  // namespace phlogon::core
