// Determinism harness for the parallel sweep/ensemble layer: every parallel
// path must produce *bitwise identical* results at any thread count, because
// each index writes into its own pre-sized slot and all per-trial randomness
// is derived from the trial index (core::deriveTrialSeed), never drawn from
// a shared engine.  These tests pin 1-thread (the exact serial loop) against
// 4-thread runs with EXPECT_EQ on doubles — exact equality, no tolerance.

#include <gtest/gtest.h>

#include <vector>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"
#include "core/noise.hpp"
#include "numeric/parallel.hpp"

namespace phlogon::core {
namespace {

const PpvModel& model() { return testutil::sharedOsc().model(); }
std::size_t injNode() { return testutil::sharedOsc().outputUnknown(); }

num::Vec amplitudeGrid() {
    num::Vec amps;
    for (double a = 10e-6; a <= 200e-6; a += 10e-6) amps.push_back(a);
    return amps;
}

TEST(SweepDeterminism, LockingRangeVsAmplitudeBitwiseEqual) {
    const Injection unit = Injection::tone(injNode(), 1.0, 2);
    const num::Vec amps = amplitudeGrid();
    const auto serial = lockingRangeVsAmplitude(model(), unit, amps, 1024, 1);
    const auto par = lockingRangeVsAmplitude(model(), unit, amps, 1024, 4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].amplitude, par[i].amplitude);
        EXPECT_EQ(serial[i].range.locks, par[i].range.locks);
        EXPECT_EQ(serial[i].range.fLow, par[i].range.fLow);
        EXPECT_EQ(serial[i].range.fHigh, par[i].range.fHigh);
    }
}

TEST(SweepDeterminism, LockingRangeExactVariantBitwiseEqual) {
    const Injection unit = Injection::tone(injNode(), 1.0, 2);
    const num::Vec amps{30e-6, 70e-6, 120e-6, 180e-6};
    const auto serial = lockingRangeVsAmplitudeExact(model(), unit, amps, 512, 1);
    const auto par = lockingRangeVsAmplitudeExact(model(), unit, amps, 512, 4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].range.fLow, par[i].range.fLow);
        EXPECT_EQ(serial[i].range.fHigh, par[i].range.fHigh);
    }
}

TEST(SweepDeterminism, LockPhaseErrorSweepBitwiseEqual) {
    const std::vector<Injection> inj{Injection::tone(injNode(), 100e-6, 2)};
    const LockingRange range = lockingRange(model(), inj);
    ASSERT_TRUE(range.locks);
    num::Vec grid;
    for (std::size_t i = 0; i < 21; ++i)
        grid.push_back(range.fLow +
                       range.width() * (0.02 + 0.96 * static_cast<double>(i) / 20.0));
    const auto serial = lockPhaseErrorSweep(model(), inj, grid, 1024, 1);
    const auto par = lockPhaseErrorSweep(model(), inj, grid, 1024, 4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].f1, par[i].f1);
        EXPECT_EQ(serial[i].detune, par[i].detune);
        ASSERT_EQ(serial[i].phases.size(), par[i].phases.size());
        for (std::size_t s = 0; s < serial[i].phases.size(); ++s) {
            EXPECT_EQ(serial[i].phases[s], par[i].phases[s]);
            EXPECT_EQ(serial[i].references[s], par[i].references[s]);
            EXPECT_EQ(serial[i].errors[s], par[i].errors[s]);
        }
    }
}

TEST(SweepDeterminism, SweepInjectionAmplitudeBitwiseEqual) {
    const std::vector<Injection> sync{Injection::tone(injNode(), 100e-6, 2)};
    const Injection unitD = Injection::tone(injNode(), 1.0, 1);
    const num::Vec amps{0.0, 10e-6, 60e-6, 120e-6};
    const auto serial =
        sweepInjectionAmplitude(model(), testutil::kF1, sync, unitD, amps, 1024, 1);
    const auto par =
        sweepInjectionAmplitude(model(), testutil::kF1, sync, unitD, amps, 1024, 4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].equilibria.size(), par[i].equilibria.size());
        for (std::size_t e = 0; e < serial[i].equilibria.size(); ++e) {
            EXPECT_EQ(serial[i].equilibria[e].dphi, par[i].equilibria[e].dphi);
            EXPECT_EQ(serial[i].equilibria[e].gSlope, par[i].equilibria[e].gSlope);
            EXPECT_EQ(serial[i].equilibria[e].stable, par[i].equilibria[e].stable);
        }
    }
}

TEST(SweepDeterminism, CountIntersectionsBitwiseEqual) {
    const Injection unit = Injection::tone(injNode(), 1.0, 2);
    const num::Vec amps{5e-6, 80e-6, 500e-6};
    const double f1 = model().f0() * 1.004;
    const auto serial = countIntersectionsVsAmplitude(model(), f1, {}, unit, amps, 1024, 1);
    const auto par = countIntersectionsVsAmplitude(model(), f1, {}, unit, amps, 1024, 4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].total, par[i].total);
        EXPECT_EQ(serial[i].stable, par[i].stable);
    }
}

TEST(MonteCarloDeterminism, TrialSeedsAreCounterBased) {
    // The engine seed of trial k must depend only on (base, k).
    EXPECT_EQ(deriveTrialSeed(1, 5), deriveTrialSeed(1, 5));
    EXPECT_NE(deriveTrialSeed(1, 5), deriveTrialSeed(1, 6));
    EXPECT_NE(deriveTrialSeed(1, 5), deriveTrialSeed(2, 5));
    // The single-path entry point uses the same mixing, so trial 0 of an
    // ensemble equals a direct call with the base seed.
    EXPECT_EQ(deriveTrialSeed(42, 0), mixSeed(42));
}

TEST(MonteCarloDeterminism, HoldErrorCountsIdenticalAcrossThreadCounts) {
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    const double c = 2e-7;  // strong enough that errors actually occur
    const double span = 60.0 / d.f1;
    StochasticGaeOptions opt;
    opt.seed = 12345;
    opt.threads = 1;
    const auto serial = holdErrorProbability(gae, c, d.reference.phase1, span, 96, opt);
    opt.threads = 4;
    const auto par4 = holdErrorProbability(gae, c, d.reference.phase1, span, 96, opt);
    opt.threads = 3;
    const auto par3 = holdErrorProbability(gae, c, d.reference.phase1, span, 96, opt);
    EXPECT_EQ(serial.trials, 96u);
    EXPECT_EQ(par4.trials, serial.trials);
    EXPECT_EQ(par4.errors, serial.errors);
    EXPECT_EQ(par3.trials, serial.trials);
    EXPECT_EQ(par3.errors, serial.errors);
}

TEST(MonteCarloDeterminism, EnsembleEndpointsBitwiseEqual) {
    // Beyond aggregate counts: the per-trial sample paths themselves must be
    // bitwise identical however the trials are scheduled.  Reproduce the
    // ensemble's per-trial transients serially and compare endpoints.
    const auto& d = testutil::sharedDesign();
    const Gae gae(d.model, d.f1, {d.sync()});
    const double c = 1e-8;
    const double span = 20.0 / d.f1;
    const std::size_t trials = 32;
    auto endpoints = [&](unsigned threads) {
        std::vector<double> out(trials);
        num::parallelFor(
            trials,
            [&](std::size_t k) {
                StochasticGaeOptions o;
                o.seed = 7 + 0x9e3779b97f4a7c15ull * k;
                o.storeEvery = 1u << 20;
                out[k] = stochasticGaeTransient(gae, c, 0.1, 0.0, span, o).dphi.back();
            },
            threads);
        return out;
    };
    const auto serial = endpoints(1);
    const auto par = endpoints(4);
    for (std::size_t k = 0; k < trials; ++k) EXPECT_EQ(serial[k], par[k]);
}

}  // namespace
}  // namespace phlogon::core
