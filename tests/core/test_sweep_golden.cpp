// Golden-value regression tests for the figure-reproduction sweeps.
//
// The values below were produced by the *serial* sweep code (threads = 1)
// at the time the parallel execution layer was introduced, printed at %.17g.
// They pin Fig. 7 locking-range widths and Fig. 8 lock-phase errors at
// representative amplitudes/detunings so that any later rewiring of the
// sweep internals (parallelism, grid changes, refactors) that silently
// changes the science fails loudly.  Tolerance is 1e-12 *relative* — tight
// enough that only a real numerical change can trip it, loose enough to
// survive benign compiler/optimization-level differences.

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"

namespace phlogon::core {
namespace {

const PpvModel& model() { return testutil::sharedOsc().model(); }
std::size_t injNode() { return testutil::sharedOsc().outputUnknown(); }

// EXPECT a relative agreement of 1e-12 (absolute 1e-12 when golden == 0).
void expectGolden(double value, double golden) {
    EXPECT_NEAR(value, golden, 1e-12 * std::max(1.0, std::abs(golden)));
}

TEST(SweepGolden, OscillatorFrequency) {
    // Everything downstream keys off the characterized f0; pin it first so a
    // drift here is not misreported as a sweep regression.
    expectGolden(model().f0(), 9598.1372331279654);
}

TEST(SweepGolden, Fig7LockingRangeWidths) {
    const Injection unit = Injection::tone(injNode(), 1.0, 2);
    const num::Vec amps{50e-6, 100e-6, 200e-6};
    const auto pts = lockingRangeVsAmplitude(model(), unit, amps);
    ASSERT_EQ(pts.size(), 3u);
    ASSERT_TRUE(pts[0].range.locks && pts[1].range.locks && pts[2].range.locks);
    expectGolden(pts[0].range.width(), 90.135333931651985);   // A =  50 uA
    expectGolden(pts[1].range.width(), 180.27066786330397);   // A = 100 uA
    expectGolden(pts[2].range.width(), 360.54133572661158);   // A = 200 uA
    // Boundaries at the paper's operating amplitude (100 uA).
    expectGolden(pts[1].range.fLow, 9508.0018991963134);
    expectGolden(pts[1].range.fHigh, 9688.2725670596174);
}

TEST(SweepGolden, Fig8PhaseErrors) {
    const std::vector<Injection> inj{Injection::tone(injNode(), 100e-6, 2)};
    const LockingRange r = lockingRange(model(), inj);
    ASSERT_TRUE(r.locks);
    expectGolden(r.width(), 180.27066786330397);
    // Three representative detunings: 15% into the range from the low edge,
    // dead center (zero detuning), and 15% from the high edge.
    const num::Vec grid{r.fLow + 0.15 * r.width(), model().f0(), r.fHigh - 0.15 * r.width()};
    const auto pts = lockPhaseErrorSweep(model(), inj, grid);
    ASSERT_EQ(pts.size(), 3u);
    for (const auto& p : pts) ASSERT_EQ(p.phases.size(), 2u);  // SHIL bistable

    // Low edge: f1 = 9535.0424993758097 Hz, detune -6.5736e-3.
    expectGolden(pts[0].f1, 9535.0424993758097);
    expectGolden(pts[0].phases[0], 0.28605018966016577);
    expectGolden(pts[0].errors[0], 0.061703746451408581);
    expectGolden(pts[0].phases[1], 0.78605018966016571);
    expectGolden(pts[0].errors[1], 0.061703746451408636);

    // Band center: zero detuning, zero error by construction.
    expectGolden(pts[1].detune, 0.0);
    expectGolden(pts[1].phases[0], 0.22434644320875718);
    expectGolden(pts[1].errors[0], 0.0);
    expectGolden(pts[1].phases[1], 0.72434644320875707);
    expectGolden(pts[1].errors[1], 0.0);

    // High edge: mirror-symmetric error growth.
    expectGolden(pts[2].f1, 9661.231966880121);
    expectGolden(pts[2].phases[0], 0.16264269675328225);
    expectGolden(pts[2].errors[0], 0.061703746455474939);
    expectGolden(pts[2].phases[1], 0.66264269675328202);
    expectGolden(pts[2].errors[1], 0.06170374645547505);
}

}  // namespace
}  // namespace phlogon::core
