// Breadboard-substitute validation (paper Sec. 5.2, Figs. 18-20): the full
// SPICE-level serial adder — two ring-oscillator latches, op-amp majority
// gates, calibrated couplings — must compute correct sums against the golden
// model, given the carry state it wakes up in.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/dcop.hpp"
#include "analysis/transient.hpp"
#include "common/osc_fixture.hpp"
#include "phlogon/serial_adder.hpp"

namespace phlogon {
namespace {

using num::Vec;

struct FsmFixtureData {
    logic::SyncLatchDesign design;  // characterized WITH the FSM loads
    ckt::RingOscSpec spec;          // unloaded builder spec
};

const FsmFixtureData& fsmFixture() {
    static const FsmFixtureData data = [] {
        FsmFixtureData d;
        ckt::RingOscSpec loaded = d.spec;
        loaded.outputLoadsOhms = logic::serialAdderLatchLoads();
        an::PssOptions popt = logic::RingOscCharacterization::defaultPssOptions();
        popt.freqHint = 10.2e3;
        const auto osc = logic::RingOscCharacterization::run(loaded, popt);
        d.design = logic::designSyncLatch(osc.model(), osc.outputUnknown(), osc.f0(), 300e-6);
        return d;
    }();
    return data;
}

/// Decode the phase-logic value of a node near time tc by correlating one
/// reference cycle against REF(1).
int decodeNode(const ckt::Netlist& nl, const an::TransientResult& res,
               const logic::PhaseReference& ref, const std::string& node, double tc) {
    const auto idx = static_cast<std::size_t>(nl.findNode(node));
    double corr = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double t = tc - 1.0 / ref.f1 + i / 200.0 / ref.f1;
        const auto k = static_cast<std::size_t>(
            std::lower_bound(res.t.begin(), res.t.end(), t) - res.t.begin());
        const double v = res.x[std::min(k, res.t.size() - 1)][idx] - ref.vdd / 2.0;
        corr += v * std::cos(2.0 * std::numbers::pi * (ref.f1 * t - ref.dphiPeak + ref.phase1));
    }
    return corr > 0.0 ? 1 : 0;
}

TEST(FsmCircuit, SerialAdderComputesAgainstGolden) {
    const auto& fx = fsmFixture();
    const auto& ref = fx.design.reference;

    const logic::Bits a{0, 1, 1, 0}, b{0, 1, 0, 1};
    ckt::Netlist nl;
    logic::SerialAdderOptions opt;
    opt.bitPeriodCycles = 80;
    const auto sc = logic::buildSerialAdderCircuit(nl, fx.design, fx.spec, a, b, opt);

    ckt::Dae dae(nl);
    const an::DcopResult dc = an::dcOperatingPoint(dae);
    ASSERT_TRUE(dc.ok) << dc.message;
    Vec x0 = dc.x;
    for (const char* n : {"lat1.n1", "lat1.n2", "lat1.n3"})
        x0[static_cast<std::size_t>(nl.findNode(n))] += 0.4;
    for (const char* n : {"lat2.n2", "lat2.n3"})
        x0[static_cast<std::size_t>(nl.findNode(n))] -= 0.4;

    an::TransientOptions topt;
    topt.dt = 1.0 / (ref.f1 * 200.0);
    topt.storeEvery = 4;
    const an::TransientResult res =
        an::transient(dae, x0, 0.0, a.size() * sc.bitPeriod, topt);
    ASSERT_TRUE(res.ok) << res.message;

    // The machine wakes up with an arbitrary carry; decode it in the reset
    // slot (a=b=0 there, so cout is forced to 0 and the carry propagates
    // correctly from slot 1 on).
    const int carry0 = decodeNode(nl, res, ref, sc.q2Node, 0.45 * sc.bitPeriod);
    logic::Bits gc;
    const logic::Bits gs = logic::goldenSerialAdd(a, b, carry0, &gc);

    for (std::size_t k = 0; k < a.size(); ++k) {
        const double tc = (static_cast<double>(k) + 0.45) * sc.bitPeriod;
        EXPECT_EQ(decodeNode(nl, res, ref, sc.sumNode, tc), gs[k]) << "sum, slot " << k;
        EXPECT_EQ(decodeNode(nl, res, ref, sc.coutNode, tc), gc[k]) << "cout, slot " << k;
    }
}

TEST(FsmCircuit, MasterSlaveEdgeBehaviour) {
    // The paper's Fig. 19 oscilloscope check: Q1 takes cout while CLK=1,
    // Q2 takes Q1 while CLK=0.
    const auto& fx = fsmFixture();
    const auto& ref = fx.design.reference;

    const logic::Bits a{0, 1, 1}, b{0, 1, 0};
    ckt::Netlist nl;
    logic::SerialAdderOptions opt;
    opt.bitPeriodCycles = 80;
    const auto sc = logic::buildSerialAdderCircuit(nl, fx.design, fx.spec, a, b, opt);

    ckt::Dae dae(nl);
    const an::DcopResult dc = an::dcOperatingPoint(dae);
    ASSERT_TRUE(dc.ok);
    Vec x0 = dc.x;
    for (const char* n : {"lat1.n1", "lat2.n1"})
        x0[static_cast<std::size_t>(nl.findNode(n))] += 0.4;
    an::TransientOptions topt;
    topt.dt = 1.0 / (ref.f1 * 200.0);
    topt.storeEvery = 4;
    const an::TransientResult res =
        an::transient(dae, x0, 0.0, a.size() * sc.bitPeriod, topt);
    ASSERT_TRUE(res.ok);

    for (std::size_t k = 1; k < a.size(); ++k) {
        // End of slot k (CLK=1 half): Q1 holds cout(k).
        const double tLate = (static_cast<double>(k) + 0.95) * sc.bitPeriod;
        const int coutK = decodeNode(nl, res, ref, sc.coutNode, tLate);
        EXPECT_EQ(decodeNode(nl, res, ref, sc.q1Node, tLate), coutK) << "slot " << k;
        // First half of slot k (CLK=0): Q2 equals Q1.
        const double tEarly = (static_cast<double>(k) + 0.45) * sc.bitPeriod;
        EXPECT_EQ(decodeNode(nl, res, ref, sc.q2Node, tEarly),
                  decodeNode(nl, res, ref, sc.q1Node, tEarly))
            << "slot " << k;
    }
}

}  // namespace
}  // namespace phlogon
