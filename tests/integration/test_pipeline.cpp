// End-to-end pipeline: circuit -> PSS -> PPV -> GAE -> predictions validated
// against independent device-level transient simulations.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dcop.hpp"
#include "analysis/transient.hpp"
#include "analysis/waveform.hpp"
#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"
#include "phlogon/encoding.hpp"
#include "phlogon/latch.hpp"

namespace phlogon {
namespace {

using logic::RingOscCharacterization;
using num::Vec;

/// Run a circuit transient of a SYNC-driven latch and measure the locked
/// frequency of n1 (or 0 if unlocked).
double measureLockedFrequency(double f1, double syncAmp, double spanCycles = 120.0) {
    ckt::Netlist nl;
    const auto nodes = logic::buildSyncLatchCircuit(nl, "lat", ckt::RingOscSpec{}, syncAmp, f1);
    ckt::Dae dae(nl);
    const an::DcopResult dc = an::dcOperatingPoint(dae);
    EXPECT_TRUE(dc.ok);
    Vec x0 = dc.x;
    for (std::size_t i = 0; i < x0.size(); ++i)
        x0[i] += 0.3 * std::sin(1.0 + 2.3 * static_cast<double>(i));
    an::TransientOptions opt;
    opt.dt = 1.0 / (f1 * 300.0);
    const an::TransientResult r = an::transient(dae, x0, 0.0, spanCycles / f1, opt);
    EXPECT_TRUE(r.ok);
    const int n1 = nl.findNode("lat.n1");
    const Vec v = r.column(static_cast<std::size_t>(n1));
    const std::size_t half = v.size() / 2;
    const Vec tt(r.t.begin() + static_cast<long>(half), r.t.end());
    const Vec vv(v.begin() + static_cast<long>(half), v.end());
    const an::PeriodEstimate pe = an::estimatePeriod(tt, vv, 1.5, 15);
    return pe.ok ? pe.frequency : 0.0;
}

TEST(Pipeline, PredictedLockingRangeMatchesCircuitBehaviour) {
    // The GAE locking range is a prediction about the real circuit: inside
    // the range the oscillator's frequency must snap to f1; outside it must
    // not.
    const auto& osc = testutil::sharedOsc();
    const double syncAmp = 100e-6;
    const core::LockingRange range = core::lockingRange(
        osc.model(), {core::Injection::tone(osc.outputUnknown(), syncAmp, 2)});
    ASSERT_TRUE(range.locks);

    const double fInside = 0.5 * (range.fLow + range.fHigh);
    const double fMeasIn = measureLockedFrequency(fInside, syncAmp);
    EXPECT_NEAR(fMeasIn, fInside, 2.0) << "should lock inside the range";

    const double fOutside = range.fHigh + 3.0 * range.width();
    const double fMeasOut = measureLockedFrequency(fOutside, syncAmp);
    EXPECT_GT(std::abs(fMeasOut - fOutside), 10.0) << "should not lock outside the range";
}

TEST(Pipeline, CircuitLockPhaseMatchesGaePrediction) {
    // Lock the latch with SYNC and a D input writing bit 1; the zero
    // crossings of V(n1) must land at the phase the GAE predicts.
    const auto& d = testutil::sharedDesign();
    const auto& osc = testutil::sharedOsc();

    ckt::Netlist nl;
    const auto nodes =
        logic::buildSyncLatchCircuit(nl, "lat", ckt::RingOscSpec{}, d.syncAmp, d.f1);
    ckt::addCurrentInjection(nl, "id", nodes.out(),
                             logic::dataCurrentWaveform(d, 150e-6, {1}, 1.0), 10e6);
    ckt::Dae dae(nl);
    const an::DcopResult dc = an::dcOperatingPoint(dae);
    ASSERT_TRUE(dc.ok);
    Vec x0 = dc.x;
    for (std::size_t i = 0; i < x0.size(); ++i)
        x0[i] += 0.3 * std::sin(1.0 + 2.3 * static_cast<double>(i));
    an::TransientOptions opt;
    opt.dt = 1.0 / (d.f1 * 300.0);
    const an::TransientResult r = an::transient(dae, x0, 0.0, 80.0 / d.f1, opt);
    ASSERT_TRUE(r.ok);

    // Measured dphi from crossings: theta(tc) = theta_cross at rising
    // crossings, so dphi = theta_cross - f1 * tc (mod 1).
    const Vec v = r.column(osc.outputUnknown());
    Vec tTail, vTail;
    for (std::size_t i = 0; i < r.t.size(); ++i) {
        if (r.t[i] > 60.0 / d.f1) {
            tTail.push_back(r.t[i]);
            vTail.push_back(v[i]);
        }
    }
    const Vec cr = an::risingCrossings(tTail, vTail, 1.5);
    ASSERT_GE(cr.size(), 3u);
    // theta_cross: rising 1.5 V crossing position of the model waveform.
    const Vec& xs = d.model.xsSamples(d.model.outputUnknown());
    Vec theta(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        theta[i] = static_cast<double>(i) / static_cast<double>(xs.size());
    const Vec mc = an::risingCrossings(theta, xs, 1.5);
    ASSERT_FALSE(mc.empty());
    const double dphiMeas = num::wrap01(mc[0] - d.f1 * cr.back());
    EXPECT_LT(core::phaseDistance(dphiMeas, d.reference.phase1), 0.05);
}

TEST(Pipeline, LoadedOscillatorShiftsFrequency) {
    // Characterizing with output loads must track the loaded oscillator —
    // the effect that detunes naive (unloaded) designs inside a full FSM.
    ckt::RingOscSpec loaded;
    loaded.outputLoadsOhms = {30e3, 30e3, 100e3, 100e3};
    an::PssOptions popt = RingOscCharacterization::defaultPssOptions();
    popt.freqHint = 10.2e3;
    const auto oscLoaded = RingOscCharacterization::run(loaded, popt);
    EXPECT_GT(oscLoaded.f0(), testutil::sharedOsc().f0() + 100.0);
}

TEST(Pipeline, TwoNinePVariantWidensLockingRange) {
    // The paper's Fig. 6/7 design insight, end to end: asymmetrizing the
    // inverter (2N1P) boosts the PPV 2nd harmonic and widens the SHIL
    // locking range.
    ckt::RingOscSpec spec2n1p;
    spec2n1p.nmosM = 2.0;
    an::PssOptions popt = RingOscCharacterization::defaultPssOptions();
    popt.freqHint = 12e3;
    const auto osc2 = RingOscCharacterization::run(spec2n1p, popt);

    const auto& osc1 = testutil::sharedOsc();
    const double v2rel1 = osc1.model().ppvHarmonic(osc1.outputUnknown(), 2) /
                          osc1.model().ppvHarmonic(osc1.outputUnknown(), 1);
    const double v2rel2 = osc2.model().ppvHarmonic(osc2.outputUnknown(), 2) /
                          osc2.model().ppvHarmonic(osc2.outputUnknown(), 1);
    EXPECT_GT(v2rel2, v2rel1);

    // Same *relative* locking-range comparison (normalized by f0 since the
    // two designs oscillate at different frequencies).
    const double w1 = core::lockingRange(
                          osc1.model(), {core::Injection::tone(osc1.outputUnknown(), 100e-6, 2)})
                          .width() /
                      osc1.f0();
    const double w2 = core::lockingRange(
                          osc2.model(), {core::Injection::tone(osc2.outputUnknown(), 100e-6, 2)})
                          .width() /
                      osc2.f0();
    EXPECT_GT(w2, w1);
}

}  // namespace
}  // namespace phlogon
