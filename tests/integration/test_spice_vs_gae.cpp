// The paper's Sec. 5.1 validation (Fig. 17) as a test: the GAE's prediction
// of bit-flip settling must agree with a SPICE-level transient of the Fig. 9
// D latch, with the phase read off the circuit via zero crossings.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dcop.hpp"
#include "analysis/transient.hpp"
#include "analysis/waveform.hpp"
#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"
#include "core/gae_transient.hpp"
#include "phlogon/encoding.hpp"
#include "phlogon/latch.hpp"

namespace phlogon {
namespace {

using num::Vec;

TEST(SpiceVsGae, BitFlipSettlingTimesAgree) {
    const auto& d = testutil::sharedDesign();
    const double f1 = d.f1;
    const double tFlip = 40.0 / f1;  // settle first, then flip D's phase
    const double tEnd = 110.0 / f1;
    const double aD = 150e-6;

    // --- GAE macromodel prediction.
    std::vector<core::GaeSegment> sched{
        {0.0, {d.sync(), d.dataInjection(aD, 0)}},
        {tFlip, {d.sync(), d.dataInjection(aD, 1)}},
    };
    const auto gae =
        core::gaeTransient(d.model, f1, sched, d.reference.phase0 + 0.02, 0.0, tEnd);
    ASSERT_TRUE(gae.ok);
    const double gaeSettle = core::settleTime(gae, d.reference.phase1, 0.03) - tFlip;
    ASSERT_GT(gaeSettle, 0.0);

    // --- SPICE-level Fig. 9 D latch, EN = 1 throughout.
    ckt::Netlist nl;
    logic::buildDLatchEnCircuit(nl, "dl", ckt::RingOscSpec{}, d.syncAmp, f1,
                                logic::dataCurrentWaveform(d, aD, {0, 1}, tFlip),
                                [](double) { return true; });
    ckt::Dae dae(nl);
    const an::DcopResult dc = an::dcOperatingPoint(dae);
    ASSERT_TRUE(dc.ok);
    Vec x0 = dc.x;
    for (std::size_t i = 0; i < x0.size(); ++i)
        x0[i] += 0.3 * std::sin(1.0 + 2.3 * static_cast<double>(i));
    an::TransientOptions opt;
    opt.dt = 1.0 / (f1 * 300.0);
    const an::TransientResult tr = an::transient(dae, x0, 0.0, tEnd, opt);
    ASSERT_TRUE(tr.ok);

    // Decode the phase trajectory from rising crossings of V(n1).
    const std::size_t n1 = static_cast<std::size_t>(nl.findNode("dl.n1"));
    const Vec cr = an::risingCrossings(tr.t, tr.column(n1), 1.5);
    ASSERT_GE(cr.size(), 50u);
    // theta at the model's rising crossing:
    const Vec& xs = d.model.xsSamples(d.model.outputUnknown());
    Vec th(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        th[i] = static_cast<double>(i) / static_cast<double>(xs.size());
    const Vec mc = an::risingCrossings(th, xs, 1.5);
    ASSERT_FALSE(mc.empty());

    // Find when the measured dphi first settles within 0.05 of phase1 and
    // stays there.
    double spiceSettle = -1.0;
    for (std::size_t k = 0; k < cr.size(); ++k) {
        if (cr[k] < tFlip) continue;
        const double dphi = num::wrap01(mc[0] - f1 * cr[k]);
        if (core::phaseDistance(dphi, d.reference.phase1) < 0.05) {
            spiceSettle = cr[k] - tFlip;
            break;
        }
    }
    ASSERT_GT(spiceSettle, 0.0) << "circuit never settled at the new phase";

    // As in the paper's Fig. 17: the two do not overlap exactly (different
    // phase definitions), but settle on the same time scale.
    EXPECT_LT(spiceSettle, 3.0 * gaeSettle + 5.0 / f1);
    EXPECT_GT(spiceSettle, gaeSettle / 3.0 - 5.0 / f1);
}

TEST(SpiceVsGae, EnLowBlocksTheFlip) {
    // With EN = 0 the switch isolates D (100 Gohm): the latch must hold its
    // bit regardless of D's phase.
    const auto& d = testutil::sharedDesign();
    const double f1 = d.f1;
    const double tEnd = 80.0 / f1;

    ckt::Netlist nl;
    logic::buildDLatchEnCircuit(nl, "dl", ckt::RingOscSpec{}, d.syncAmp, f1,
                                logic::dataCurrentWaveform(d, 150e-6, {1}, 1.0),
                                [](double) { return false; });
    ckt::Dae dae(nl);
    const an::DcopResult dc = an::dcOperatingPoint(dae);
    ASSERT_TRUE(dc.ok);
    Vec x0 = dc.x;
    for (std::size_t i = 0; i < x0.size(); ++i)
        x0[i] += 0.3 * std::sin(1.0 + 2.3 * static_cast<double>(i));
    an::TransientOptions opt;
    opt.dt = 1.0 / (f1 * 300.0);
    const an::TransientResult tr = an::transient(dae, x0, 0.0, tEnd, opt);
    ASSERT_TRUE(tr.ok);

    const std::size_t n1 = static_cast<std::size_t>(nl.findNode("dl.n1"));
    const Vec v = tr.column(n1);
    Vec tt, vv;
    for (std::size_t i = 0; i < tr.t.size(); ++i)
        if (tr.t[i] > 0.5 * tEnd) {
            tt.push_back(tr.t[i]);
            vv.push_back(v[i]);
        }
    const Vec cr = an::risingCrossings(tt, vv, 1.5);
    ASSERT_GE(cr.size(), 5u);
    // Whatever bit it settled into from the kick, successive crossings must
    // be f1-periodic (locked by SYNC alone, no steady drift toward D).
    for (std::size_t k = 1; k < cr.size(); ++k)
        EXPECT_NEAR((cr[k] - cr[k - 1]) * f1, 1.0, 5e-3);
}

TEST(SpiceVsGae, GaePredictsFlipThresholdOrdering) {
    // Fig. 12's qualitative content, cross-validated: amplitudes ordered
    // below/above the threshold produce fail/slow/fast flips in BOTH the
    // GAE and the settle-time ordering.
    const auto& d = testutil::sharedDesign();
    const double f1 = d.f1;
    const double span = 120.0 / f1;
    auto settle = [&](double amp) {
        std::vector<core::GaeSegment> sched{{0.0, {d.sync(), d.dataInjection(amp, 1)}}};
        const auto r =
            core::gaeTransient(d.model, f1, sched, d.reference.phase0 + 0.02, 0.0, span);
        EXPECT_TRUE(r.ok);
        return core::settleTime(r, d.reference.phase1, 0.03);
    };
    const double tWeak = settle(10e-6);   // below threshold: never settles
    const double tSlow = settle(30e-6);   // just above: slow
    const double tFast = settle(150e-6);  // far above: fast
    EXPECT_NEAR(tWeak, span, 1e-9);
    EXPECT_LT(tFast, tSlow);
    EXPECT_LT(tSlow, span * 0.9);
}

}  // namespace
}  // namespace phlogon
