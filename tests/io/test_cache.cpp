#include "io/cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "circuit/subckt.hpp"
#include "io/hash.hpp"
#include "io/model_cache.hpp"
#include "io/serialize.hpp"
#include "phlogon/latch.hpp"

namespace phlogon::io {
namespace {

namespace fs = std::filesystem;

class CacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        // Per-test directory: ctest runs each discovered test in its own
        // process, possibly in parallel — a shared directory would let one
        // test's SetUp remove_all another's live entries.
        dir_ = fs::temp_directory_path() /
               (std::string("phlogon_io_cache_test_") +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    fs::path dir_;
};

std::vector<std::uint8_t> bytesOf(std::initializer_list<int> v) {
    std::vector<std::uint8_t> out;
    for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
    return out;
}

TEST_F(CacheTest, DisabledCacheMissesAndDropsStores) {
    const ArtifactCache cache;  // no directory
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.store(1, kTypeWaveform, bytesOf({1, 2})));
    EXPECT_FALSE(cache.fetch(1, kTypeWaveform).has_value());
    EXPECT_TRUE(cache.entries().empty());
    EXPECT_EQ(cache.evictToFit(), 0u);
}

TEST_F(CacheTest, StoreThenFetchRoundTrips) {
    const ArtifactCache cache(dir_);
    const auto payload = bytesOf({10, 20, 30, 40});
    ASSERT_TRUE(cache.store(0xABCDEF0123456789ull, kTypePpvModel, payload));
    EXPECT_TRUE(fs::exists(dir_ / "abcdef0123456789.phlg"));
    const auto hit = cache.fetch(0xABCDEF0123456789ull, kTypePpvModel);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
    // A different key misses without touching the stored entry.
    EXPECT_FALSE(cache.fetch(0x1111, kTypePpvModel).has_value());
    EXPECT_TRUE(fs::exists(dir_ / "abcdef0123456789.phlg"));
}

TEST_F(CacheTest, WrongTypeFetchRemovesEntry) {
    const ArtifactCache cache(dir_);
    ASSERT_TRUE(cache.store(7, kTypePssResult, bytesOf({1})));
    EXPECT_FALSE(cache.fetch(7, kTypePpvModel).has_value());
    EXPECT_FALSE(fs::exists(cache.entryPath(7)));  // mistyped entry dropped
}

TEST_F(CacheTest, CorruptEntryIsRemovedAndReportsMiss) {
    const ArtifactCache cache(dir_);
    ASSERT_TRUE(cache.store(42, kTypeWaveform, bytesOf({5, 6, 7, 8})));
    // Flip a payload byte in place.
    const fs::path p = cache.entryPath(42);
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kHeaderSize + 2));
    f.put(static_cast<char>(0x7F));
    f.close();
    EXPECT_FALSE(cache.fetch(42, kTypeWaveform).has_value());
    EXPECT_FALSE(fs::exists(p));  // corrupt entry dropped
    // The slot is clean: a re-store works and fetches again.
    ASSERT_TRUE(cache.store(42, kTypeWaveform, bytesOf({5, 6, 7, 8})));
    EXPECT_TRUE(cache.fetch(42, kTypeWaveform).has_value());
}

TEST_F(CacheTest, EntriesListValidityAndOrder) {
    const ArtifactCache cache(dir_);
    ASSERT_TRUE(cache.store(1, kTypeWaveform, bytesOf({1})));
    ASSERT_TRUE(cache.store(2, kTypePssResult, bytesOf({2, 2})));
    const auto entries = cache.entries();
    ASSERT_EQ(entries.size(), 2u);
    for (const auto& e : entries) EXPECT_TRUE(e.valid);
    EXPECT_LE(entries[0].mtime, entries[1].mtime);
}

TEST_F(CacheTest, LruEvictionDropsOldestFirst) {
    // Cap small enough that three ~1 KiB entries cannot coexist.
    const std::vector<std::uint8_t> big(1024, 0x5A);
    const ArtifactCache cache(dir_, 2 * (kHeaderSize + big.size()));
    ASSERT_TRUE(cache.store(1, kTypeWaveform, big));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(cache.store(2, kTypeWaveform, big));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Touch entry 1 (fetch refreshes mtime), then overflow: 2 is now oldest.
    ASSERT_TRUE(cache.fetch(1, kTypeWaveform).has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(cache.store(3, kTypeWaveform, big));
    EXPECT_TRUE(fs::exists(cache.entryPath(1)));
    EXPECT_FALSE(fs::exists(cache.entryPath(2)));
    EXPECT_TRUE(fs::exists(cache.entryPath(3)));
}

TEST_F(CacheTest, StatsCountOutcomesAndAreSharedAcrossCopies) {
    const ArtifactCache cache(dir_);
    const ArtifactCache copy = cache;  // copies address the same directory
    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses + s.stores + s.evictions + s.corruptions + s.foreign, 0u);

    ASSERT_TRUE(cache.store(1, kTypeWaveform, bytesOf({1, 2, 3})));
    EXPECT_TRUE(copy.fetch(1, kTypeWaveform).has_value());      // hit
    EXPECT_FALSE(cache.fetch(2, kTypeWaveform).has_value());    // miss
    // Corrupt the entry: the next fetch counts a corruption AND a miss.
    const fs::path p = cache.entryPath(1);
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kHeaderSize + 1));
    f.put(static_cast<char>(0x7F));
    f.close();
    EXPECT_FALSE(cache.fetch(1, kTypeWaveform).has_value());

    s = copy.stats();  // the copy observes the same counters
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.corruptions, 1u);
    EXPECT_EQ(s.evictions, 0u);
}

TEST_F(CacheTest, ForeignPhlgFilesAreSkippedNotKeyedAsZero) {
    // Regression: entries() used to run strtoull(stem, nullptr, 16) with no
    // end-pointer check, so a stray "garbage.phlg" parsed as key 0, was
    // listed as a (corrupt) entry, and entered the LRU eviction pool — a
    // cache scan could delete a user's file it never created.
    const ArtifactCache cache(dir_);
    ASSERT_TRUE(cache.store(1, kTypeWaveform, bytesOf({1, 2, 3})));
    const fs::path garbage = dir_ / "garbage.phlg";
    const fs::path shortHex = dir_ / "abc.phlg";        // hex but not 16 digits
    const fs::path mixed = dir_ / "0123456789abcdeg.phlg";  // 16 chars, non-hex 'g'
    for (const fs::path& p : {garbage, shortHex, mixed}) {
        std::ofstream f(p, std::ios::binary);
        f << "not a cache artifact";
    }

    const auto entries = cache.entries();
    ASSERT_EQ(entries.size(), 1u);  // only the real key is listed
    EXPECT_EQ(entries[0].key, 1u);
    EXPECT_EQ(cache.stats().foreign, 3u);

    // Overflow the budget: eviction may drop real entries but must never
    // touch the foreign files.
    const ArtifactCache tiny(dir_, 1);  // 1-byte budget evicts everything keyed
    EXPECT_GE(tiny.evictToFit(), 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath(1)));
    EXPECT_TRUE(fs::exists(garbage));
    EXPECT_TRUE(fs::exists(shortHex));
    EXPECT_TRUE(fs::exists(mixed));

    // Uppercase 16-digit hex stems are still accepted as keys.
    std::ofstream(dir_ / "00000000000000AB.phlg", std::ios::binary) << "x";
    bool sawUpper = false;
    for (const auto& e : cache.entries()) sawUpper = sawUpper || e.key == 0xABu;
    EXPECT_TRUE(sawUpper);
}

TEST_F(CacheTest, StatsCountEvictions) {
    // 1 KiB budget with ~40-byte entries: storing many forces LRU pruning.
    const ArtifactCache cache(dir_, 1024);
    for (std::uint64_t k = 0; k < 64; ++k)
        ASSERT_TRUE(cache.store(k, kTypeWaveform, bytesOf({1, 2, 3, 4})));
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.stores, 64u);
    EXPECT_GE(s.evictions, 1u);
    EXPECT_EQ(s.stores - s.evictions, cache.entries().size());
}

class FromEnvTest : public CacheTest {
protected:
    void SetUp() override {
        CacheTest::SetUp();
        ::setenv("PHLOGON_CACHE_DIR", dir_.c_str(), 1);
    }
    void TearDown() override {
        ::unsetenv("PHLOGON_CACHE_DIR");
        ::unsetenv("PHLOGON_CACHE_MAX_MB");
        CacheTest::TearDown();
    }
};

TEST_F(FromEnvTest, ParsesMaxMb) {
    ::setenv("PHLOGON_CACHE_MAX_MB", "64", 1);
    const ArtifactCache cache = ArtifactCache::fromEnv();
    EXPECT_TRUE(cache.enabled());
    EXPECT_EQ(cache.maxBytes(), 64ull * 1024 * 1024);
}

TEST_F(FromEnvTest, HugeMaxMbSaturatesInsteadOfWrapping) {
    // Regression: ULLONG_MAX megabytes used to overflow v * 1024 * 1024 and
    // wrap around to a tiny byte budget, silently evicting the whole cache.
    ::setenv("PHLOGON_CACHE_MAX_MB", "18446744073709551615", 1);
    const ArtifactCache cache = ArtifactCache::fromEnv();
    EXPECT_EQ(cache.maxBytes(), std::numeric_limits<std::uintmax_t>::max());
    // Any value at or above max/2^20 MB saturates too.
    ::setenv("PHLOGON_CACHE_MAX_MB", "17592186044416", 1);  // 2^64 / 2^20
    EXPECT_EQ(ArtifactCache::fromEnv().maxBytes(), std::numeric_limits<std::uintmax_t>::max());
}

TEST_F(FromEnvTest, UnparseableMaxMbKeepsDefault) {
    for (const char* bad : {"12abc", "abc", "-5", ""}) {
        ::setenv("PHLOGON_CACHE_MAX_MB", bad, 1);
        const ArtifactCache cache = ArtifactCache::fromEnv();
        EXPECT_EQ(cache.maxBytes(), ArtifactCache::kDefaultMaxBytes) << "value='" << bad << "'";
    }
}

TEST_F(CacheTest, HashHexIs16LowercaseDigits) {
    EXPECT_EQ(hashHex(0), "0000000000000000");
    EXPECT_EQ(hashHex(0xABCDEF0123456789ull), "abcdef0123456789");
}

TEST_F(CacheTest, Fnv1a64MatchesReferenceVectors) {
    // Standard FNV-1a test vectors (raw byte stream, no length framing).
    EXPECT_EQ(Fnv1a64().digest(), 0xcbf29ce484222325ull);
    EXPECT_EQ(Fnv1a64().bytes("a", 1).digest(), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(Fnv1a64().bytes("foobar", 6).digest(), 0x85944171f73967e8ull);
    // Order and field separation matter: "ab" then "c" != "a" then "bc" is
    // NOT guaranteed by raw FNV (it is a plain stream), but str() folds the
    // length so concatenation ambiguity cannot alias keys.
    EXPECT_NE(Fnv1a64().str("ab").str("c").digest(), Fnv1a64().str("a").str("bc").digest());
}

// ---- cache-aware characterization flow ------------------------------------

class ModelCacheTest : public CacheTest {};

TEST_F(ModelCacheTest, CharacterizeMissesThenHitsWithZeroedCounters) {
    ckt::Netlist nl;
    ckt::buildRingOscillator(nl, "osc", ckt::RingOscSpec{});
    ckt::Dae dae(nl);
    const an::PssOptions pssOpt = logic::RingOscCharacterization::defaultPssOptions();
    const an::PpvOptions ppvOpt{};
    const ArtifactCache cache(dir_);

    const auto key = characterizationKey(nl, pssOpt, ppvOpt);
    ASSERT_TRUE(key.has_value());  // ring oscillator devices all canonical

    const auto cold = characterizeCached(dae, nl, pssOpt, ppvOpt, cache);
    ASSERT_TRUE(cold.value.pss.ok);
    ASSERT_TRUE(cold.value.ppv.ok);
    EXPECT_EQ(cold.outcome, CacheOutcome::Miss);
    EXPECT_EQ(cold.key, *key);
    EXPECT_GT(cold.value.pss.counters.luFactorizations, 0u);

    const auto warm = characterizeCached(dae, nl, pssOpt, ppvOpt, cache);
    ASSERT_TRUE(warm.value.pss.ok);
    EXPECT_EQ(warm.outcome, CacheOutcome::Hit);
    // Counters report work done *this run*: a hit does none.
    EXPECT_EQ(warm.value.pss.counters.luFactorizations, 0u);
    EXPECT_EQ(warm.value.pss.counters.rhsEvals, 0u);
    // The physics payload is bit-identical to the computed one.
    EXPECT_EQ(warm.value.pss.period, cold.value.pss.period);
    ASSERT_EQ(warm.value.ppv.v.size(), cold.value.ppv.v.size());
    for (std::size_t k = 0; k < cold.value.ppv.v.size(); ++k)
        for (std::size_t i = 0; i < cold.value.ppv.v[k].size(); ++i)
            EXPECT_EQ(warm.value.ppv.v[k][i], cold.value.ppv.v[k][i]);
}

TEST_F(ModelCacheTest, CorruptCacheEntryRecomputesInsteadOfCrashing) {
    ckt::Netlist nl;
    ckt::buildRingOscillator(nl, "osc", ckt::RingOscSpec{});
    ckt::Dae dae(nl);
    const an::PssOptions pssOpt = logic::RingOscCharacterization::defaultPssOptions();
    const ArtifactCache cache(dir_);

    const auto cold = characterizeCached(dae, nl, pssOpt, {}, cache);
    ASSERT_EQ(cold.outcome, CacheOutcome::Miss);

    // Truncate the stored artifact mid-payload.
    const fs::path p = cache.entryPath(cold.key);
    ASSERT_TRUE(fs::exists(p));
    fs::resize_file(p, fs::file_size(p) / 2);

    const auto again = characterizeCached(dae, nl, pssOpt, {}, cache);
    EXPECT_EQ(again.outcome, CacheOutcome::Miss);  // recomputed, no crash
    ASSERT_TRUE(again.value.pss.ok);
    EXPECT_GT(again.value.pss.counters.luFactorizations, 0u);
    // And the recompute re-published a valid entry.
    EXPECT_EQ(characterizeCached(dae, nl, pssOpt, {}, cache).outcome, CacheOutcome::Hit);
}

TEST_F(ModelCacheTest, NonCanonicalNetlistIsNotCacheable) {
    ckt::Netlist nl;
    const ckt::RingOscNodes nodes = ckt::buildRingOscillator(nl, "osc", ckt::RingOscSpec{});
    // A time switch carries an opaque std::function control: no sound key.
    nl.addSwitch("sw", nodes.out(), "0", [](double) { return false; }, 1.0, 1e9);
    EXPECT_TRUE(nl.canonicalForm().empty());
    EXPECT_FALSE(characterizationKey(nl, {}, {}).has_value());

    ckt::Dae dae(nl);
    const ArtifactCache cache(dir_);
    const auto r = characterizeCached(dae, nl, logic::RingOscCharacterization::defaultPssOptions(),
                                      {}, cache);
    EXPECT_EQ(r.outcome, CacheOutcome::NotCacheable);
    EXPECT_TRUE(r.value.pss.ok);  // still computes the real answer
    EXPECT_TRUE(cache.entries().empty());
}

TEST_F(ModelCacheTest, KeyChangesWithOptionsAndCircuit) {
    ckt::Netlist nl;
    ckt::buildRingOscillator(nl, "osc", ckt::RingOscSpec{});
    const an::PssOptions pssOpt = logic::RingOscCharacterization::defaultPssOptions();
    an::PssOptions pssOpt2 = pssOpt;
    pssOpt2.nSamples += 1;
    const auto k1 = characterizationKey(nl, pssOpt, {});
    const auto k2 = characterizationKey(nl, pssOpt2, {});
    ASSERT_TRUE(k1 && k2);
    EXPECT_NE(*k1, *k2);

    ckt::Netlist nl2;
    ckt::RingOscSpec spec;
    spec.capFarads *= 1.0000001;  // tiny parameter change must change the key
    ckt::buildRingOscillator(nl2, "osc", spec);
    const auto k3 = characterizationKey(nl2, pssOpt, {});
    ASSERT_TRUE(k3.has_value());
    EXPECT_NE(*k1, *k3);
}

}  // namespace
}  // namespace phlogon::io
