#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/transient.hpp"
#include "circuit/subckt.hpp"
#include "common/osc_fixture.hpp"
#include "core/gae_transient.hpp"
#include "io/serialize.hpp"

namespace phlogon::io {
namespace {

namespace fs = std::filesystem;
using num::Vec;

const core::PpvModel& model() { return testutil::sharedOsc().model(); }

class CheckpointTest : public ::testing::Test {
protected:
    void SetUp() override {
        // Per-test directory: ctest runs each TEST as its own process, so a
        // shared directory would let one test's SetUp/TearDown remove_all
        // clobber another's checkpoint files under parallel ctest.
        dir_ = fs::temp_directory_path() /
               (std::string("phlogon_io_checkpoint_test_") +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    fs::path dir_;

    fs::path file(const char* name) const { return dir_ / name; }
};

// ---- snapshot payload round-trips ------------------------------------------

TEST_F(CheckpointTest, TransientCheckpointRoundTripsBitwise) {
    TransientCheckpoint c;
    c.t0 = 0.0;
    c.t1 = 3e-3;
    c.t = 1.337e-3;
    c.h = 2.5e-6;
    c.stepIndex = 421;
    c.x = Vec{0.123456789, -3.25, 1e-300};
    c.counters.steps = 421;
    c.counters.newtonIters = 900;
    c.counters.wallSeconds = 0.125;

    ASSERT_TRUE(saveTransientCheckpoint(file("t.phlg"), c));
    const auto back = loadTransientCheckpoint(file("t.phlg"));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->t0, c.t0);
    EXPECT_EQ(back->t1, c.t1);
    EXPECT_EQ(back->t, c.t);
    EXPECT_EQ(back->h, c.h);
    EXPECT_EQ(back->stepIndex, c.stepIndex);
    ASSERT_EQ(back->x.size(), c.x.size());
    for (std::size_t i = 0; i < c.x.size(); ++i) EXPECT_EQ(back->x[i], c.x[i]);
    EXPECT_EQ(back->counters.steps, c.counters.steps);
    EXPECT_EQ(back->counters.newtonIters, c.counters.newtonIters);
    EXPECT_EQ(back->counters.wallSeconds, c.counters.wallSeconds);
}

TEST_F(CheckpointTest, GaeCheckpointRoundTripsBitwise) {
    GaeCheckpoint c;
    c.t = 7.5e-4;
    c.dphi = -1.2578125;
    c.h = 3.0517578125e-05;
    c.counters.rhsEvals = 1234;
    c.counters.steps = 200;
    ASSERT_TRUE(saveGaeCheckpoint(file("g.phlg"), c));
    const auto back = loadGaeCheckpoint(file("g.phlg"));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->t, c.t);
    EXPECT_EQ(back->dphi, c.dphi);
    EXPECT_EQ(back->h, c.h);
    EXPECT_EQ(back->counters.rhsEvals, c.counters.rhsEvals);
    EXPECT_EQ(back->counters.steps, c.counters.steps);
}

TEST_F(CheckpointTest, CorruptSnapshotsLoadAsAbsent) {
    EXPECT_FALSE(loadTransientCheckpoint(file("missing.phlg")).has_value());
    // Wrong artifact type.
    GaeCheckpoint g;
    ASSERT_TRUE(saveGaeCheckpoint(file("g.phlg"), g));
    EXPECT_FALSE(loadTransientCheckpoint(file("g.phlg")).has_value());
    // Truncated payload.
    TransientCheckpoint c;
    c.x = Vec{1.0, 2.0};
    ASSERT_TRUE(saveTransientCheckpoint(file("t.phlg"), c));
    fs::resize_file(file("t.phlg"), fs::file_size(file("t.phlg")) - 5);
    EXPECT_FALSE(loadTransientCheckpoint(file("t.phlg")).has_value());
    EXPECT_FALSE(decodeTransientCheckpoint({1, 2, 3}).has_value());
    EXPECT_FALSE(decodeGaeCheckpoint({}).has_value());
}

// ---- circuit transient resume ---------------------------------------------

ckt::Netlist& rcNetlist() {
    static ckt::Netlist nl = [] {
        ckt::Netlist n;
        n.addResistor("r", "n", "0", 1e3);
        n.addCapacitor("c", "n", "0", 1e-6);  // tau = 1 ms
        return n;
    }();
    return nl;
}

void expectTailIdentical(const an::TransientResult& full, const an::TransientResult& tail) {
    ASSERT_TRUE(full.ok) << full.message;
    ASSERT_TRUE(tail.ok) << tail.message;
    ASSERT_GE(tail.t.size(), 2u);
    // Locate the tail's first point (the checkpoint point) in the full run.
    std::size_t j = 0;
    while (j < full.t.size() && full.t[j] != tail.t[0]) ++j;
    ASSERT_LT(j, full.t.size()) << "checkpoint time not a stored point of the full run";
    ASSERT_EQ(full.t.size() - j, tail.t.size());
    for (std::size_t i = 0; i < tail.t.size(); ++i) {
        EXPECT_EQ(full.t[j + i], tail.t[i]) << "time diverged at tail index " << i;
        ASSERT_EQ(full.x[j + i].size(), tail.x[i].size());
        for (std::size_t k = 0; k < tail.x[i].size(); ++k)
            EXPECT_EQ(full.x[j + i][k], tail.x[i][k]) << "state diverged at tail index " << i;
    }
}

TEST_F(CheckpointTest, FixedStepResumeIsBitIdentical) {
    ckt::Dae dae(rcNetlist());
    an::TransientOptions opt;
    opt.dt = 1e-5;

    const an::TransientResult full = an::transient(dae, Vec{1.0}, 0.0, 3e-3, opt);
    ASSERT_TRUE(full.ok);

    // Same run with one mid-span snapshot (interval > half the span, so the
    // surviving file is a genuine mid-run checkpoint, not the final state).
    an::TransientOptions ckOpt = opt;
    ckOpt.checkpoint.interval = 1.7e-3;
    ckOpt.checkpoint.path = file("rc.ckpt.phlg");
    const an::TransientResult withCk = an::transient(dae, Vec{1.0}, 0.0, 3e-3, ckOpt);
    ASSERT_TRUE(withCk.ok);
    // Checkpointing must not perturb the trajectory.
    ASSERT_EQ(withCk.t.size(), full.t.size());
    for (std::size_t i = 0; i < full.t.size(); ++i) EXPECT_EQ(withCk.x[i][0], full.x[i][0]);

    const auto ck = loadTransientCheckpoint(ckOpt.checkpoint.path);
    ASSERT_TRUE(ck.has_value());
    EXPECT_GT(ck->t, 1e-3);
    EXPECT_LT(ck->t, 3e-3);

    const an::TransientResult tail = resumeTransient(dae, ckOpt.checkpoint.path, 3e-3, opt);
    expectTailIdentical(full, tail);
    // Resumed counters continue from the checkpoint: total accepted steps
    // across the whole resumed run equal the uninterrupted run's.
    EXPECT_EQ(tail.counters.steps, full.counters.steps);
    EXPECT_EQ(tail.counters.newtonIters, full.counters.newtonIters);
    EXPECT_EQ(tail.counters.rhsEvals, full.counters.rhsEvals);
}

TEST_F(CheckpointTest, FixedStepResumePreservesStoreEveryPhase) {
    ckt::Dae dae(rcNetlist());
    an::TransientOptions opt;
    opt.dt = 1e-5;
    opt.storeEvery = 7;  // deliberately not a divisor of the step count

    const an::TransientResult full = an::transient(dae, Vec{1.0}, 0.0, 3e-3, opt);

    an::TransientOptions ckOpt = opt;
    ckOpt.checkpoint.interval = 1.6e-3;
    ckOpt.checkpoint.path = file("rc7.ckpt.phlg");
    ASSERT_TRUE(an::transient(dae, Vec{1.0}, 0.0, 3e-3, ckOpt).ok);

    const an::TransientResult tail = resumeTransient(dae, ckOpt.checkpoint.path, 3e-3, opt);
    ASSERT_TRUE(tail.ok) << tail.message;
    // Every stored tail point (after the checkpoint point itself) must appear
    // at the same times as in the full run — the stepIndex phase survived.
    std::size_t j = 0;
    while (j < full.t.size() && full.t[j] < tail.t[1]) ++j;
    ASSERT_LT(j, full.t.size());
    for (std::size_t i = 1; i < tail.t.size(); ++i, ++j) {
        ASSERT_LT(j, full.t.size());
        EXPECT_EQ(full.t[j], tail.t[i]);
        EXPECT_EQ(full.x[j][0], tail.x[i][0]);
    }
}

TEST_F(CheckpointTest, AdaptiveResumeIsBitIdentical) {
    // Drive the RC with a cosine so the adaptive controller actually moves h.
    ckt::Netlist nl;
    nl.addVoltageSource("v", "in", "0", ckt::Waveform::cosine(1.0, 1e3));
    nl.addResistor("r", "in", "n", 1e3);
    nl.addCapacitor("c", "n", "0", 0.1e-6);
    ckt::Dae dae(nl);

    an::TransientOptions opt;
    opt.dt = 1e-6;
    opt.adaptive = true;
    const Vec x0{1.0, 0.0, 0.0};

    const an::TransientResult full = an::transient(dae, x0, 0.0, 4e-3, opt);
    ASSERT_TRUE(full.ok);
    EXPECT_GT(full.counters.steps, 10u);

    an::TransientOptions ckOpt = opt;
    ckOpt.checkpoint.interval = 2.3e-3;
    ckOpt.checkpoint.path = file("ad.ckpt.phlg");
    const an::TransientResult withCk = an::transient(dae, x0, 0.0, 4e-3, ckOpt);
    ASSERT_TRUE(withCk.ok);
    ASSERT_EQ(withCk.t.size(), full.t.size());

    const auto ck = loadTransientCheckpoint(ckOpt.checkpoint.path);
    ASSERT_TRUE(ck.has_value());
    EXPECT_GT(ck->h, 0.0);  // adaptive snapshots carry the next-step proposal

    const an::TransientResult tail = resumeTransient(dae, ckOpt.checkpoint.path, 4e-3, opt);
    expectTailIdentical(full, tail);
    EXPECT_EQ(tail.counters.steps, full.counters.steps);
    EXPECT_EQ(tail.counters.rejectedSteps, full.counters.rejectedSteps);
}

TEST_F(CheckpointTest, ResumeRejectsBadSnapshots) {
    ckt::Dae dae(rcNetlist());
    an::TransientOptions opt;
    opt.dt = 1e-5;
    // Missing file.
    const an::TransientResult r1 = resumeTransient(dae, file("nope.phlg"), 1e-3, opt);
    EXPECT_FALSE(r1.ok);
    EXPECT_FALSE(r1.message.empty());
    // Snapshot of a different circuit (state size mismatch).
    TransientCheckpoint c;
    c.t = 1e-4;
    c.stepIndex = 10;
    c.x = Vec{1.0, 2.0, 3.0};  // RC circuit has 1 unknown
    ASSERT_TRUE(saveTransientCheckpoint(file("wrong.phlg"), c));
    const an::TransientResult r2 = resumeTransient(dae, file("wrong.phlg"), 1e-3, opt);
    EXPECT_FALSE(r2.ok);
    EXPECT_FALSE(r2.message.empty());
}

// ---- GAE transient resume --------------------------------------------------

TEST_F(CheckpointTest, GaeResumeIsBitIdentical) {
    const core::PpvModel& model = testutil::sharedOsc().model();
    const std::size_t node = testutil::sharedOsc().outputUnknown();
    const std::vector<core::GaeSegment> sched{
        {0.0, {core::Injection::tone(node, 100e-6, 2)}}};
    const double t1 = 40.0 / testutil::kF1;
    const double start = 0.3;

    const auto full = core::gaeTransient(model, testutil::kF1, sched, start, 0.0, t1);
    ASSERT_TRUE(full.ok);

    core::GaeCheckpointOptions ck;
    ck.interval = 0.55 * t1;  // exactly one mid-run snapshot survives
    ck.path = file("gae.ckpt.phlg");
    const auto withCk = core::gaeTransient(model, testutil::kF1, sched, start, 0.0, t1, {}, 1024, ck);
    ASSERT_TRUE(withCk.ok);
    // Checkpointing must not perturb the trajectory.
    ASSERT_EQ(withCk.t.size(), full.t.size());
    for (std::size_t i = 0; i < full.t.size(); ++i) {
        EXPECT_EQ(withCk.t[i], full.t[i]);
        EXPECT_EQ(withCk.dphi[i], full.dphi[i]);
    }

    const auto snap = loadGaeCheckpoint(ck.path);
    ASSERT_TRUE(snap.has_value());
    EXPECT_GT(snap->t, 0.0);
    EXPECT_LT(snap->t, t1);
    EXPECT_GT(snap->h, 0.0);

    const auto tail = resumeGaeTransient(model, testutil::kF1, sched, ck.path, t1);
    ASSERT_TRUE(tail.ok);
    // The tail (from the checkpoint time) matches the uninterrupted run
    // bit-for-bit.
    std::size_t j = 0;
    while (j < full.t.size() && full.t[j] != tail.t[0]) ++j;
    ASSERT_LT(j, full.t.size()) << "checkpoint time not on the uninterrupted grid";
    ASSERT_EQ(full.t.size() - j, tail.t.size());
    for (std::size_t i = 0; i < tail.t.size(); ++i) {
        EXPECT_EQ(full.t[j + i], tail.t[i]);
        EXPECT_EQ(full.dphi[j + i], tail.dphi[i]);
    }
    EXPECT_EQ(tail.final(), full.final());
    // Counters fold the checkpoint's pre-resume work back in.
    EXPECT_EQ(tail.counters.rhsEvals, full.counters.rhsEvals);
}

TEST_F(CheckpointTest, GaeResumeCrossesScheduleSegments) {
    const auto& d = testutil::sharedDesign();
    const double bitT = 40.0 / d.f1;
    const std::vector<core::GaeSegment> sched{
        {0.0, {d.sync(), d.dataInjection(150e-6, 1)}},
        {bitT, {d.sync(), d.dataInjection(150e-6, 0)}},
    };
    const double t1 = 2.0 * bitT;
    const double start = d.reference.phase0 + 0.02;

    const auto full = core::gaeTransient(model(), d.f1, sched, start, 0.0, t1);
    ASSERT_TRUE(full.ok);

    core::GaeCheckpointOptions ck;
    // The snapshot file is rewritten at each interval; the survivor is the
    // last one, landing inside the SECOND segment — resuming from it must
    // pick up mid-schedule with that segment's injections.
    ck.interval = 0.3 * bitT;
    ck.path = file("gae2.ckpt.phlg");
    ASSERT_TRUE(core::gaeTransient(model(), d.f1, sched, start, 0.0, t1, {}, 1024, ck).ok);

    const auto snap = loadGaeCheckpoint(ck.path);
    ASSERT_TRUE(snap.has_value());

    const auto tail = resumeGaeTransient(model(), d.f1, sched, ck.path, t1);
    ASSERT_TRUE(tail.ok);
    EXPECT_EQ(tail.final(), full.final());
    // The resumed endpoint answers the logic question identically.
    EXPECT_EQ(tail.dphi.back(), full.dphi.back());
}

TEST_F(CheckpointTest, GaeResumeRejectsBadSnapshot) {
    const auto r = resumeGaeTransient(testutil::sharedOsc().model(), testutil::kF1,
                                      {{0.0, {core::Injection::tone(0, 1e-6, 2)}}},
                                      file("absent.phlg"), 1e-3);
    EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace phlogon::io
