// io/file_lock + the ArtifactCache's cross-process locking (satellite of
// ROADMAP item 3): mutual exclusion is verified with real forked
// processes hammering one lock / one cache directory.

#include "io/file_lock.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/cache.hpp"
#include "io/serialize.hpp"

namespace fs = std::filesystem;
using phlogon::io::ArtifactCache;
using phlogon::io::FileLock;

namespace {

fs::path freshDir(const std::string& name) {
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

int readCounter(const fs::path& p) {
    std::ifstream in(p);
    int v = 0;
    in >> v;
    return in ? v : 0;
}

void writeCounter(const fs::path& p, int v) {
    std::ofstream out(p, std::ios::trunc);
    out << v << "\n";
}

}  // namespace

TEST(FileLock, AcquireAndRelease) {
    const fs::path dir = freshDir("phlogon_flock_basic");
    FileLock lk(dir / ".lock");
    EXPECT_TRUE(lk.held());
    lk.release();
    EXPECT_FALSE(lk.held());
    lk.release();  // idempotent
    EXPECT_TRUE(fs::exists(dir / ".lock"));  // lock file stays in place
    fs::remove_all(dir);
}

TEST(FileLock, MoveTransfersOwnership) {
    const fs::path dir = freshDir("phlogon_flock_move");
    FileLock a(dir / ".lock");
    EXPECT_TRUE(a.held());
    FileLock b(std::move(a));
    EXPECT_TRUE(b.held());
    EXPECT_FALSE(a.held());
    a = std::move(b);
    EXPECT_TRUE(a.held());
    fs::remove_all(dir);
}

TEST(FileLock, UnwritableDirDegradesToUnlocked) {
    // Robustness policy: a lock that cannot be created reports !held() and
    // the caller proceeds unlocked, never fails.
    FileLock lk("/proc/definitely/not/writable/.lock");
    EXPECT_FALSE(lk.held());
}

// N forked processes each perform K non-atomic read-modify-write
// increments of a counter file, serialized only by FileLock.  Without
// mutual exclusion the lost-update race makes the final count fall short
// virtually always at this contention level.
TEST(FileLock, ForkedProcessesSerializeReadModifyWrite) {
    const fs::path dir = freshDir("phlogon_flock_fork");
    const fs::path counter = dir / "counter.txt";
    const fs::path lockPath = dir / ".lock";
    writeCounter(counter, 0);

    constexpr int kProcs = 4;
    constexpr int kIncrements = 150;
    std::vector<pid_t> kids;
    for (int p = 0; p < kProcs; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            for (int i = 0; i < kIncrements; ++i) {
                FileLock lk(lockPath);
                const int v = readCounter(counter);
                // Widen the race window: yield between read and write.
                ::usleep(100);
                writeCounter(counter, v + 1);
            }
            ::_exit(0);
        }
        kids.push_back(pid);
    }
    for (const pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
    EXPECT_EQ(readCounter(counter), kProcs * kIncrements);
    fs::remove_all(dir);
}

// Two forked processes store + evict concurrently in one tightly-bounded
// cache directory.  The regression this guards: unlocked concurrent
// eviction passes could double-evict far below the watermark or delete an
// entry a peer just published.  With the flock serializing mutating
// passes, every surviving entry must be a valid artifact and the
// directory must respect the byte bound once either process finishes its
// last store.
TEST(FileLock, TwoProcessCacheStoreEvictionRace) {
    const fs::path dir = freshDir("phlogon_flock_cache");
    constexpr std::uintmax_t kMaxBytes = 8 * 1024;
    constexpr std::uint32_t kType = phlogon::io::fourcc('T', 'E', 'S', 'T');
    const std::vector<std::uint8_t> payload(512, 0xAB);

    constexpr int kProcs = 2;
    constexpr int kStores = 120;
    std::vector<pid_t> kids;
    for (int p = 0; p < kProcs; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            const ArtifactCache cache(dir, kMaxBytes);
            bool ok = true;
            for (int i = 0; i < kStores; ++i) {
                const auto key = static_cast<std::uint64_t>(p) * 1000000u +
                                 static_cast<std::uint64_t>(i);
                ok = cache.store(key, kType, payload) && ok;
                // Re-fetch own store or a peer's: either a valid payload or
                // a clean miss (evicted) — never corruption (fetch deletes
                // corrupt entries and counts them).
                (void)cache.fetch(key, kType);
            }
            ok = ok && cache.stats().corruptions == 0;
            ::_exit(ok ? 0 : 1);
        }
        kids.push_back(pid);
    }
    for (const pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // Post-mortem: every surviving entry validates, and the directory is
    // within the bound (the last mutating pass pruned under the lock).
    const ArtifactCache cache(dir, kMaxBytes);
    std::uintmax_t total = 0;
    for (const ArtifactCache::Entry& e : cache.entries()) {
        EXPECT_TRUE(e.valid) << e.path;
        total += e.fileBytes;
    }
    EXPECT_LE(total, kMaxBytes);
    fs::remove_all(dir);
}
