// io/json: strict parser + canonical serializer shared by the trace
// reader, the service protocol and the tools.

#include "io/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace json = phlogon::io::json;

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(json::parse("null").value.isNull());
    EXPECT_TRUE(json::parse("true").value.boolOr(false));
    EXPECT_FALSE(json::parse("false").value.boolOr(true));
    EXPECT_DOUBLE_EQ(json::parse("42").value.numberOr(0), 42.0);
    EXPECT_DOUBLE_EQ(json::parse("-1.5e3").value.numberOr(0), -1500.0);
    EXPECT_EQ(json::parse("\"hi\"").value.stringOr(""), "hi");
}

TEST(Json, ParsesNestedStructure) {
    const auto r = json::parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
    ASSERT_TRUE(r.ok) << r.error;
    const json::Value* a = r.value.field("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    EXPECT_EQ(a->size(), 3u);
    EXPECT_TRUE((*a->arr)[2].fieldBool("b", false));
    const json::Value* c = r.value.field("c");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->field("d")->isNull());
}

TEST(Json, StringEscapes) {
    const auto r = json::parse(R"("a\"b\\c\n\tA")");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.str, "a\"b\\c\n\tA");
    // quote() must invert the standard escapes.
    const auto rt = json::parse(json::quote("x\"\\\n\ty"));
    ASSERT_TRUE(rt.ok);
    EXPECT_EQ(rt.value.str, "x\"\\\n\ty");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_FALSE(json::parse("").ok);
    EXPECT_FALSE(json::parse("{").ok);
    EXPECT_FALSE(json::parse("[1, 2,]").ok);
    EXPECT_FALSE(json::parse("{\"a\": }").ok);
    EXPECT_FALSE(json::parse("nul").ok);
    EXPECT_FALSE(json::parse("1.2.3").ok);
    EXPECT_FALSE(json::parse("\"bad\\x\"").ok);
    EXPECT_FALSE(json::parse("\"unterminated").ok);
    // Strictness: trailing content after a complete value is an error.
    EXPECT_FALSE(json::parse("{} garbage").ok);
    EXPECT_FALSE(json::parse("1 2").ok);
}

TEST(Json, DepthBoundStopsHostileNesting) {
    // "[[[[..." deeper than kMaxDepth must fail with a diagnostic, not
    // overflow the stack (the malformed-frame hardening path).
    std::string deep(2048, '[');
    const auto r = json::parse(deep);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("depth"), std::string::npos);
    // At the bound it still parses.
    std::string okDeep;
    for (int i = 0; i < json::kMaxDepth - 1; ++i) okDeep += '[';
    for (int i = 0; i < json::kMaxDepth - 1; ++i) okDeep += ']';
    EXPECT_TRUE(json::parse(okDeep).ok);
}

TEST(Json, FieldHelpersFallBack) {
    const auto r = json::parse(R"({"n": 3, "b": true, "s": "x"})");
    ASSERT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(r.value.fieldNumber("n", -1), 3.0);
    EXPECT_DOUBLE_EQ(r.value.fieldNumber("missing", -1), -1.0);
    EXPECT_DOUBLE_EQ(r.value.fieldNumber("s", -1), -1.0);  // wrong kind
    EXPECT_TRUE(r.value.fieldBool("b", false));
    EXPECT_FALSE(r.value.fieldBool("n", false));
    EXPECT_EQ(r.value.fieldString("s", "?"), "x");
    EXPECT_EQ(r.value.fieldString("b", "?"), "?");
    // field() on a non-object is null, not a crash.
    EXPECT_EQ(json::parse("3").value.field("x"), nullptr);
}

TEST(Json, DumpRoundTrips) {
    json::Value v = json::Value::object();
    v.set("id", json::Value::integer(123456789));
    v.set("pi", json::Value::number(3.25));
    v.set("ok", json::Value::boolean(true));
    json::Value arr = json::Value::array();
    arr.push(json::Value::string("a\"b"));
    arr.push(json::Value::null());
    v.set("xs", arr);
    const std::string text = json::dump(v);
    const auto r = json::parse(text);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.value.fieldNumber("id", 0), 123456789.0);
    EXPECT_DOUBLE_EQ(r.value.fieldNumber("pi", 0), 3.25);
    EXPECT_TRUE(r.value.fieldBool("ok", false));
    EXPECT_EQ((*r.value.field("xs")->arr)[0].str, "a\"b");
    // Integral doubles print without an exponent so ids round-trip
    // textually.
    EXPECT_NE(text.find("123456789"), std::string::npos);
    EXPECT_EQ(text.find("e+"), std::string::npos);
}

TEST(Json, DumpNanInfAsNull) {
    json::Value v = json::Value::object();
    v.set("bad", json::Value::number(std::nan("")));
    const auto r = json::parse(json::dump(v));
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.value.field("bad")->isNull());
}

TEST(Json, SetOnNonObjectIsNoOp) {
    json::Value n = json::Value::number(1.0);
    n.set("k", json::Value::number(2.0));  // documented no-op
    EXPECT_TRUE(n.isNumber());
    EXPECT_EQ(n.field("k"), nullptr);
}
