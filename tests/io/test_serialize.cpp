#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "io/artifact.hpp"

namespace phlogon::io {
namespace {

namespace fs = std::filesystem;
using num::Vec;

class SerializeTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "phlogon_io_serialize_test";
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    fs::path dir_;

    fs::path file(const char* name) const { return dir_ / name; }

    static std::vector<std::uint8_t> slurp(const fs::path& p) {
        std::ifstream in(p, std::ios::binary);
        return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
    }
    static void dump(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
};

// ---- primitives ------------------------------------------------------------

TEST_F(SerializeTest, WriterReaderRoundTripsPrimitives) {
    BinaryWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.f64(-0.0);
    w.f64(1.0 / 3.0);
    w.str("hello \0 world");  // embedded NUL truncates at the literal, fine
    w.vec(Vec{1.5, -2.25, 3e-300});
    w.vecList({Vec{1.0}, Vec{}, Vec{2.0, 3.0}});
    w.strList({"a", "", "long-ish string with spaces"});

    BinaryReader r(w.bytes());
    std::uint8_t u8v = 0;
    std::uint32_t u32v = 0;
    std::uint64_t u64v = 0;
    double d1 = 0, d2 = 0;
    std::string s;
    Vec v;
    std::vector<Vec> vs;
    std::vector<std::string> ss;
    ASSERT_TRUE(r.u8(u8v));
    ASSERT_TRUE(r.u32(u32v));
    ASSERT_TRUE(r.u64(u64v));
    ASSERT_TRUE(r.f64(d1));
    ASSERT_TRUE(r.f64(d2));
    ASSERT_TRUE(r.str(s));
    ASSERT_TRUE(r.vec(v));
    ASSERT_TRUE(r.vecList(vs));
    ASSERT_TRUE(r.strList(ss));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(u8v, 0xAB);
    EXPECT_EQ(u32v, 0xDEADBEEFu);
    EXPECT_EQ(u64v, 0x0123456789ABCDEFull);
    EXPECT_TRUE(std::signbit(d1));  // -0.0 preserved bitwise
    EXPECT_EQ(d2, 1.0 / 3.0);
    EXPECT_EQ(s, std::string("hello "));
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], 3e-300);
    ASSERT_EQ(vs.size(), 3u);
    EXPECT_EQ(vs[1].size(), 0u);
    EXPECT_EQ(vs[2][1], 3.0);
    ASSERT_EQ(ss.size(), 3u);
    EXPECT_EQ(ss[2], "long-ish string with spaces");
}

TEST_F(SerializeTest, ReaderReportsTruncationWithoutReadingGarbage) {
    BinaryWriter w;
    w.u64(42);
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes.resize(5);  // mid-u64
    BinaryReader r(bytes);
    std::uint64_t v = 7;
    EXPECT_FALSE(r.u64(v));
    EXPECT_EQ(v, 7u);  // untouched on failure

    BinaryWriter w2;
    w2.str("abcdef");
    std::vector<std::uint8_t> b2 = w2.bytes();
    b2.resize(b2.size() - 2);  // cut the string body short
    BinaryReader r2(b2);
    std::string s = "sentinel";
    EXPECT_FALSE(r2.str(s));
    EXPECT_EQ(s, "sentinel");
}

TEST_F(SerializeTest, Crc32MatchesKnownVector) {
    // The classic IEEE 802.3 check value.
    const char* s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

// ---- artifact container ----------------------------------------------------

TEST_F(SerializeTest, ArtifactFileRoundTrips) {
    const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 250, 251};
    ASSERT_TRUE(writeArtifactFile(file("a.phlg"), kTypePssResult, payload));

    const ArtifactReadResult r = readArtifactFile(file("a.phlg"), kTypePssResult);
    ASSERT_TRUE(r.ok()) << statusName(r.status);
    EXPECT_EQ(r.payload, payload);
    EXPECT_EQ(r.header.version, kFormatVersion);
    EXPECT_EQ(r.header.type, kTypePssResult);
    EXPECT_EQ(r.header.payloadSize, payload.size());

    const ArtifactProbe p = probeArtifactFile(file("a.phlg"));
    EXPECT_EQ(p.status, ArtifactStatus::Ok);
    EXPECT_TRUE(p.crcOk);

    // No temp files left behind by the atomic write.
    std::size_t files = 0;
    for ([[maybe_unused]] const auto& de : fs::directory_iterator(dir_)) ++files;
    EXPECT_EQ(files, 1u);
}

TEST_F(SerializeTest, MissingFileIsIoError) {
    EXPECT_EQ(readArtifactFile(file("absent.phlg")).status, ArtifactStatus::IoError);
    EXPECT_EQ(probeArtifactFile(file("absent.phlg")).status, ArtifactStatus::IoError);
}

TEST_F(SerializeTest, TruncatedFileDetected) {
    ASSERT_TRUE(writeArtifactFile(file("t.phlg"), kTypeWaveform, {9, 8, 7, 6, 5, 4, 3, 2}));
    std::vector<std::uint8_t> bytes = slurp(file("t.phlg"));
    bytes.resize(bytes.size() - 3);  // cut into the payload
    dump(file("t.phlg"), bytes);
    EXPECT_EQ(readArtifactFile(file("t.phlg")).status, ArtifactStatus::Truncated);

    bytes.resize(kHeaderSize - 4);  // not even a full header
    dump(file("t.phlg"), bytes);
    EXPECT_EQ(readArtifactFile(file("t.phlg")).status, ArtifactStatus::IoError);
}

TEST_F(SerializeTest, FlippedPayloadByteFailsCrc) {
    ASSERT_TRUE(writeArtifactFile(file("c.phlg"), kTypeWaveform, {1, 2, 3, 4}));
    std::vector<std::uint8_t> bytes = slurp(file("c.phlg"));
    bytes[kHeaderSize + 1] ^= 0x40;
    dump(file("c.phlg"), bytes);
    EXPECT_EQ(readArtifactFile(file("c.phlg")).status, ArtifactStatus::BadCrc);
}

TEST_F(SerializeTest, FlippedCrcByteFailsCrc) {
    ASSERT_TRUE(writeArtifactFile(file("c2.phlg"), kTypeWaveform, {1, 2, 3, 4}));
    std::vector<std::uint8_t> bytes = slurp(file("c2.phlg"));
    bytes[20] ^= 0x01;  // CRC field lives at offset 20..23
    dump(file("c2.phlg"), bytes);
    EXPECT_EQ(readArtifactFile(file("c2.phlg")).status, ArtifactStatus::BadCrc);
}

TEST_F(SerializeTest, WrongVersionRejected) {
    ASSERT_TRUE(writeArtifactFile(file("v.phlg"), kTypeWaveform, {1, 2}));
    std::vector<std::uint8_t> bytes = slurp(file("v.phlg"));
    bytes[4] = static_cast<std::uint8_t>(kFormatVersion + 1);  // version field
    dump(file("v.phlg"), bytes);
    EXPECT_EQ(readArtifactFile(file("v.phlg")).status, ArtifactStatus::BadVersion);
}

TEST_F(SerializeTest, BadMagicAndWrongTypeRejected) {
    ASSERT_TRUE(writeArtifactFile(file("m.phlg"), kTypePssResult, {1}));
    std::vector<std::uint8_t> bytes = slurp(file("m.phlg"));
    bytes[0] = 'X';
    dump(file("m.phlg"), bytes);
    EXPECT_EQ(readArtifactFile(file("m.phlg")).status, ArtifactStatus::BadMagic);

    ASSERT_TRUE(writeArtifactFile(file("ty.phlg"), kTypePssResult, {1}));
    EXPECT_EQ(readArtifactFile(file("ty.phlg"), kTypePpvModel).status, ArtifactStatus::WrongType);
    EXPECT_TRUE(readArtifactFile(file("ty.phlg")).ok());  // expectedType 0 = any
}

// ---- typed payloads --------------------------------------------------------

an::PssResult fakePss() {
    an::PssResult pss;
    pss.ok = true;
    pss.message = "converged";
    pss.period = 1.0 / 9.6e3;
    pss.f0 = 9.6e3;
    pss.phaseUnknown = 2;
    pss.shootResidual = 1.25e-11;
    pss.shootIterations = 7;
    pss.xs = {Vec{0.1, 0.2, -0.3}, Vec{0.4, 0.5, 0.6}};
    pss.xFine = {Vec{1e-5, 2e-5, 3e-5}, Vec{4e-5, 5e-5, 6e-5}, Vec{7e-5, 8e-5, 9e-5}};
    pss.tFine = Vec{0.0, 0.5e-4, 1.0e-4};
    pss.counters.rhsEvals = 1234;
    pss.counters.luFactorizations = 99;
    pss.counters.wallSeconds = 0.0625;  // exactly representable
    return pss;
}

an::PpvResult fakePpv() {
    an::PpvResult ppv;
    ppv.ok = true;
    ppv.period = 1.0 / 9.6e3;
    ppv.f0 = 9.6e3;
    ppv.v = {Vec{0.9, -0.8}, Vec{0.7, 0.6}, Vec{0.5, -0.4}};
    ppv.floquetMu = 0.999999321;
    ppv.normalizationSpread = 3.5e-7;
    ppv.sweepsUsed = 4;
    return ppv;
}

void expectBitwiseEqual(const an::PssResult& a, const an::PssResult& b) {
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.message, b.message);
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.f0, b.f0);
    EXPECT_EQ(a.phaseUnknown, b.phaseUnknown);
    EXPECT_EQ(a.shootResidual, b.shootResidual);
    EXPECT_EQ(a.shootIterations, b.shootIterations);
    ASSERT_EQ(a.xs.size(), b.xs.size());
    for (std::size_t k = 0; k < a.xs.size(); ++k)
        for (std::size_t i = 0; i < a.xs[k].size(); ++i) EXPECT_EQ(a.xs[k][i], b.xs[k][i]);
    ASSERT_EQ(a.xFine.size(), b.xFine.size());
    ASSERT_EQ(a.tFine.size(), b.tFine.size());
    for (std::size_t i = 0; i < a.tFine.size(); ++i) EXPECT_EQ(a.tFine[i], b.tFine[i]);
    EXPECT_EQ(a.counters.rhsEvals, b.counters.rhsEvals);
    EXPECT_EQ(a.counters.luFactorizations, b.counters.luFactorizations);
    EXPECT_EQ(a.counters.wallSeconds, b.counters.wallSeconds);
}

TEST_F(SerializeTest, PssResultRoundTripsBitwise) {
    const an::PssResult pss = fakePss();
    const auto back = decodePssResult(encodePssResult(pss));
    ASSERT_TRUE(back.has_value());
    expectBitwiseEqual(pss, *back);

    ASSERT_TRUE(savePssResult(file("pss.phlg"), pss));
    const auto loaded = loadPssResult(file("pss.phlg"));
    ASSERT_TRUE(loaded.has_value());
    expectBitwiseEqual(pss, *loaded);
}

TEST_F(SerializeTest, PpvResultRoundTripsBitwise) {
    const an::PpvResult ppv = fakePpv();
    const auto back = decodePpvResult(encodePpvResult(ppv));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->ok, ppv.ok);
    EXPECT_EQ(back->f0, ppv.f0);
    EXPECT_EQ(back->floquetMu, ppv.floquetMu);
    EXPECT_EQ(back->normalizationSpread, ppv.normalizationSpread);
    EXPECT_EQ(back->sweepsUsed, ppv.sweepsUsed);
    ASSERT_EQ(back->v.size(), ppv.v.size());
    for (std::size_t k = 0; k < ppv.v.size(); ++k)
        for (std::size_t i = 0; i < ppv.v[k].size(); ++i) EXPECT_EQ(back->v[k][i], ppv.v[k][i]);
}

TEST_F(SerializeTest, PpvModelRoundTripReproducesEveryQueryBitwise) {
    // Build a small but realistic model from synthetic extraction data.
    an::PssResult pss = fakePss();
    an::PpvResult ppv = fakePpv();
    // Make sizes consistent: 2 unknowns, 3 samples.
    pss.xs = {Vec{0.1, -0.2}, Vec{0.3, 0.4}, Vec{0.5, 0.6}};
    const core::PpvModel model = core::PpvModel::build(pss, ppv, 1, {"n1", "n2"});
    ASSERT_TRUE(model.valid());

    const auto back = decodePpvModel(encodePpvModel(model));
    ASSERT_TRUE(back.has_value());
    ASSERT_TRUE(back->valid());
    EXPECT_EQ(back->f0(), model.f0());
    EXPECT_EQ(back->size(), model.size());
    EXPECT_EQ(back->outputUnknown(), model.outputUnknown());
    EXPECT_EQ(back->unknownNames(), model.unknownNames());
    ASSERT_EQ(back->sampleCount(), model.sampleCount());
    for (std::size_t idx = 0; idx < model.size(); ++idx)
        for (std::size_t k = 0; k < model.sampleCount(); ++k) {
            EXPECT_EQ(back->xsSamples(idx)[k], model.xsSamples(idx)[k]);
            EXPECT_EQ(back->ppvSamples(idx)[k], model.ppvSamples(idx)[k]);
        }
    // Restored splines answer interpolated queries identically.
    for (double theta : {0.0, 0.17, 0.33, 0.5, 0.77, 0.999})
        for (std::size_t idx = 0; idx < model.size(); ++idx) {
            EXPECT_EQ(back->xsAt(idx, theta), model.xsAt(idx, theta));
            EXPECT_EQ(back->ppvAt(idx, theta), model.ppvAt(idx, theta));
        }
    ASSERT_TRUE(savePpvModel(file("model.phlg"), model));
    ASSERT_TRUE(loadPpvModel(file("model.phlg")).has_value());
}

TEST_F(SerializeTest, CharacterizationBundleRoundTrips) {
    Characterization c{fakePss(), fakePpv()};
    const auto back = decodeCharacterization(encodeCharacterization(c));
    ASSERT_TRUE(back.has_value());
    expectBitwiseEqual(c.pss, back->pss);
    EXPECT_EQ(back->ppv.floquetMu, c.ppv.floquetMu);
}

TEST_F(SerializeTest, SweepTablesRoundTrip) {
    std::vector<core::LockingRangePoint> lr(3);
    lr[0] = {10e-6, {true, 9.55e3, 9.72e3}};
    lr[1] = {50e-6, {true, 9.31e3, 9.93e3}};
    lr[2] = {0.0, {false, 0.0, 0.0}};
    const auto lrBack = decodeLockingRangeTable(encodeLockingRangeTable(lr));
    ASSERT_TRUE(lrBack.has_value());
    ASSERT_EQ(lrBack->size(), 3u);
    EXPECT_EQ((*lrBack)[1].amplitude, 50e-6);
    EXPECT_EQ((*lrBack)[1].range.fLow, 9.31e3);
    EXPECT_FALSE((*lrBack)[2].range.locks);
    ASSERT_TRUE(saveLockingRangeTable(file("lr.phlg"), lr));
    ASSERT_TRUE(loadLockingRangeTable(file("lr.phlg")).has_value());

    std::vector<core::PhaseErrorPoint> pe(2);
    pe[0] = {9.6e3, 0.0, {0.25, 0.75}, {0.25, 0.75}, {0.0, 0.0}};
    pe[1] = {9.7e3, 0.0104, {0.27, 0.77}, {0.25, 0.75}, {0.02, 0.02}};
    const auto peBack = decodePhaseErrorTable(encodePhaseErrorTable(pe));
    ASSERT_TRUE(peBack.has_value());
    ASSERT_EQ(peBack->size(), 2u);
    EXPECT_EQ((*peBack)[1].f1, 9.7e3);
    ASSERT_EQ((*peBack)[1].phases.size(), 2u);
    EXPECT_EQ((*peBack)[1].errors[0], 0.02);
}

TEST_F(SerializeTest, OdeSolutionAndTransientResultRoundTrip) {
    num::OdeSolution sol;
    sol.ok = true;
    sol.t = Vec{0.0, 0.125, 0.25};
    sol.y = {Vec{1.0, 2.0}, Vec{1.5, 2.5}, Vec{1.75, 2.75}};
    sol.rejectedSteps = 3;
    const auto solBack = decodeOdeSolution(encodeOdeSolution(sol));
    ASSERT_TRUE(solBack.has_value());
    EXPECT_EQ(solBack->rejectedSteps, 3u);
    EXPECT_EQ(solBack->y[2][1], 2.75);

    an::TransientResult tr;
    tr.ok = true;
    tr.message = "done";
    tr.t = Vec{0.0, 1e-5};
    tr.x = {Vec{1.0}, Vec{0.99}};
    tr.newtonIterationsTotal = 12;
    tr.counters.newtonIters = 12;
    const auto trBack = decodeTransientResult(encodeTransientResult(tr));
    ASSERT_TRUE(trBack.has_value());
    EXPECT_EQ(trBack->message, "done");
    EXPECT_EQ(trBack->x[1][0], 0.99);
    EXPECT_EQ(trBack->counters.newtonIters, 12u);
}

TEST_F(SerializeTest, DecodersRejectTruncatedAndMistypedPayloads) {
    std::vector<std::uint8_t> payload = encodePssResult(fakePss());
    for (std::size_t cut : {std::size_t{0}, std::size_t{1}, payload.size() / 2,
                            payload.size() - 1}) {
        std::vector<std::uint8_t> part(payload.begin(),
                                       payload.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_FALSE(decodePssResult(part).has_value()) << "cut=" << cut;
    }
    // A PSS payload is not a PPV model.
    EXPECT_FALSE(decodePpvModel(payload).has_value());
}

}  // namespace
}  // namespace phlogon::io
