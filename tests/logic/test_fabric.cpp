// Fabric IR tests: builder API, structural validation (undriven /
// multiply-driven nets, fan-in limits, combinational-cycle detection with
// the full cycle path), the netlist text parser, and the Boolean reference
// semantics of the workload generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "logic/workloads.hpp"

using namespace phlogon::logic;

namespace {

std::string caught(const LogicNetlist& nl) {
    try {
        nl.validate();
    } catch (const FabricError& e) {
        return e.what();
    }
    return {};
}

}  // namespace

TEST(Fabric, BuilderCreatesNetsOnFirstMention) {
    LogicNetlist nl;
    nl.addInput("a");
    nl.addInput("b");
    nl.addGate(GateOp::And, "y", {"a", "b"});
    nl.addOutput("y");
    EXPECT_EQ(nl.netCount(), 3u);
    EXPECT_TRUE(nl.hasNet("y"));
    EXPECT_FALSE(nl.hasNet("z"));
    EXPECT_EQ(nl.netName(nl.findNet("a")), "a");
    EXPECT_THROW(nl.findNet("z"), FabricError);
    EXPECT_NO_THROW(nl.validate());
}

TEST(Fabric, GateArityCheckedImmediately) {
    LogicNetlist nl;
    nl.addInput("a");
    nl.addInput("b");
    nl.addInput("c");
    EXPECT_THROW(nl.addGate(GateOp::Not, "y", {"a", "b"}), FabricError);
    EXPECT_THROW(nl.addGate(GateOp::Buf, "y", {}), FabricError);
    EXPECT_THROW(nl.addGate(GateOp::And, "y", {"a"}), FabricError);
    EXPECT_THROW(nl.addGate(GateOp::Maj, "y", {"a", "b"}), FabricError);  // even fan-in
    EXPECT_NO_THROW(nl.addGate(GateOp::Maj, "y", {"a", "b", "c"}));
}

TEST(Fabric, MultipleDriversThrowWithNetName) {
    LogicNetlist nl;
    nl.addInput("a");
    nl.addInput("b");
    nl.addGate(GateOp::Not, "y", {"a"});
    try {
        nl.addGate(GateOp::Not, "y", {"b"});
        FAIL() << "second driver accepted";
    } catch (const FabricError& e) {
        EXPECT_NE(std::string(e.what()).find("'y'"), std::string::npos) << e.what();
    }
    EXPECT_THROW(nl.addInput("y"), FabricError);
    EXPECT_THROW(nl.addDff("y", "a"), FabricError);
}

TEST(Fabric, ValidateReportsUndrivenNets) {
    LogicNetlist nl;
    nl.addInput("a");
    nl.addGate(GateOp::And, "y", {"a", "ghost"});
    nl.addOutput("y");
    const std::string msg = caught(nl);
    EXPECT_NE(msg.find("undriven"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ghost"), std::string::npos) << msg;
}

TEST(Fabric, ValidateEnforcesFanInLimit) {
    LogicNetlist nl;
    std::vector<std::string> ins;
    for (int i = 0; i < 4; ++i) {
        ins.push_back("a" + std::to_string(i));
        nl.addInput(ins.back());
    }
    nl.addGate(GateOp::And, "y", ins);
    nl.addOutput("y");
    EXPECT_NO_THROW(nl.validate());
    EXPECT_THROW(nl.validate({/*maxFanIn=*/3}), FabricError);
}

TEST(Fabric, ValidateRejectsEmptyNetlist) {
    LogicNetlist nl;
    EXPECT_THROW(nl.validate(), FabricError);
}

// Regression: a 3-gate combinational loop must be caught at build time with
// the full cycle path in the message (the recursive evaluator would
// previously have recursed forever at run time).
TEST(Fabric, CombinationalCycleReportedWithPath) {
    LogicNetlist nl;
    nl.addInput("a");
    nl.addGate(GateOp::And, "x", {"a", "z"});
    nl.addGate(GateOp::Not, "y", {"x"});
    nl.addGate(GateOp::Not, "z", {"y"});
    nl.addOutput("z");
    try {
        nl.topoOrder();
        FAIL() << "cycle not detected";
    } catch (const FabricError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("combinational cycle"), std::string::npos) << msg;
        // All three nets appear, in dependency order around the loop.
        for (const char* net : {"x", "y", "z"})
            EXPECT_NE(msg.find(std::string(" ") + net), std::string::npos) << msg;
    }
    // validate() folds the same report into its aggregate error.
    EXPECT_NE(caught(nl).find("combinational cycle"), std::string::npos);
}

TEST(Fabric, FeedbackThroughDffIsNotACycle) {
    LogicNetlist nl;
    nl.addDff("q", "d");
    nl.addGate(GateOp::Not, "d", {"q"});
    nl.addOutput("q");
    EXPECT_NO_THROW(nl.validate());
}

TEST(Fabric, TopoOrderRespectsDependencies) {
    LogicNetlist nl;
    nl.addInput("a");
    nl.addInput("b");
    // Declared out of dependency order on purpose.
    nl.addGate(GateOp::Or, "y", {"t", "u"});
    nl.addGate(GateOp::And, "t", {"a", "b"});
    nl.addGate(GateOp::Xor, "u", {"a", "t"});
    nl.addOutput("y");
    const auto order = nl.topoOrder();
    ASSERT_EQ(order.size(), 3u);
    std::vector<int> pos(nl.gates().size());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
    // gate 0 (y) reads gates 1 (t) and 2 (u); gate 2 reads gate 1.
    EXPECT_GT(pos[0], pos[1]);
    EXPECT_GT(pos[0], pos[2]);
    EXPECT_GT(pos[2], pos[1]);
}

TEST(Fabric, EvalGateTruthTables) {
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::And, {1, 1, 1}), 1);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::And, {1, 0, 1}), 0);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Nand, {1, 1}), 0);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Or, {0, 0, 1}), 1);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Nor, {0, 0}), 1);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Xor, {1, 1, 1}), 1);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Xnor, {1, 0}), 0);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Maj, {1, 0, 1}), 1);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Maj, {1, 0, 0, 0, 1}), 0);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Buf, {1}), 1);
    EXPECT_EQ(LogicNetlist::evalGate(GateOp::Not, {1}), 0);
}

TEST(Fabric, StepImplementsSynchronousSemantics) {
    // Toggle bit: out_k shows state_k, state advances after.
    LogicNetlist nl;
    nl.addDff("q", "d");
    nl.addGate(GateOp::Not, "d", {"q"});
    nl.addOutput("q");
    nl.addOutput("d");
    std::vector<int> state{0};
    for (int k = 0; k < 4; ++k) {
        const auto out = nl.step({}, state);
        EXPECT_EQ(out[0], k % 2) << "slot " << k;
        EXPECT_EQ(out[1], 1 - k % 2) << "slot " << k;
        EXPECT_EQ(state[0], 1 - k % 2) << "slot " << k;
    }
}

TEST(Fabric, ParserRoundTrip) {
    const auto nl = parseLogicNetlist(R"(
        # full adder
        input a b cin      // three inputs
        xor sum a b cin
        maj cout a b cin
        output sum cout
    )");
    EXPECT_EQ(nl.inputs().size(), 3u);
    EXPECT_EQ(nl.outputs().size(), 2u);
    EXPECT_EQ(nl.gates().size(), 2u);
    std::vector<int> state;
    for (int v = 0; v < 8; ++v) {
        const int a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
        const auto out = nl.step({a, b, c}, state);
        EXPECT_EQ(out[0] + 2 * out[1], a + b + c) << "v=" << v;
    }
}

TEST(Fabric, ParserReportsLineNumbers) {
    try {
        parseLogicNetlist("input a\nfrobnicate y a\n");
        FAIL() << "bad op accepted";
    } catch (const FabricError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;
    }
    EXPECT_THROW(parseLogicNetlist("dff q\n"), FabricError);          // arity
    EXPECT_THROW(parseLogicNetlist("input a\noutput a\nnot b\n"), FabricError);
}

TEST(Fabric, GateOpNamesRoundTrip) {
    for (const auto op : {GateOp::Buf, GateOp::Not, GateOp::And, GateOp::Nand, GateOp::Or,
                          GateOp::Nor, GateOp::Xor, GateOp::Xnor, GateOp::Maj})
        EXPECT_EQ(gateOpFromName(gateOpName(op)), op);
    EXPECT_THROW(gateOpFromName("nandify"), FabricError);
}

// ---------------------------------------------------------------------------
// Workload generators against integer arithmetic (the netlist Boolean layer
// itself — the phase-domain equivalence harness then trusts these as golden).
// ---------------------------------------------------------------------------

TEST(FabricWorkloads, RippleAdderMatchesIntegerAdd) {
    const auto nl = rippleAdder(4);
    std::vector<int> state;
    for (std::uint64_t a = 0; a < 16; ++a)
        for (std::uint64_t b = 0; b < 16; ++b)
            for (std::uint64_t cin = 0; cin < 2; ++cin) {
                auto in = toBits(a, 4);
                const auto bb = toBits(b, 4);
                in.insert(in.end(), bb.begin(), bb.end());
                in.push_back(static_cast<int>(cin));
                EXPECT_EQ(fromBits(nl.step(in, state)), a + b + cin);
            }
}

TEST(FabricWorkloads, CarrySelectAdderMatchesIntegerAdd) {
    const auto nl = carrySelectAdder(8, 3);
    std::vector<int> state;
    for (std::uint64_t a = 0; a < 256; a += 7)
        for (std::uint64_t b = 0; b < 256; b += 5)
            for (std::uint64_t cin = 0; cin < 2; ++cin) {
                auto in = toBits(a, 8);
                const auto bb = toBits(b, 8);
                in.insert(in.end(), bb.begin(), bb.end());
                in.push_back(static_cast<int>(cin));
                EXPECT_EQ(fromBits(nl.step(in, state)), a + b + cin);
            }
}

TEST(FabricWorkloads, Multiplier4x4MatchesIntegerMul) {
    const auto nl = multiplier4x4();
    std::vector<int> state;
    for (std::uint64_t a = 0; a < 16; ++a)
        for (std::uint64_t b = 0; b < 16; ++b) {
            auto in = toBits(a, 4);
            const auto bb = toBits(b, 4);
            in.insert(in.end(), bb.begin(), bb.end());
            EXPECT_EQ(fromBits(nl.step(in, state)), a * b) << a << "*" << b;
        }
}

TEST(FabricWorkloads, UpCounterCounts) {
    const auto nl = upCounter(4);
    std::vector<int> state(nl.dffs().size(), 0);
    for (std::uint64_t k = 0; k < 40; ++k)
        EXPECT_EQ(fromBits(nl.step({}, state)), k % 16) << "tick " << k;
}

TEST(FabricWorkloads, LfsrHasFullPeriodFromZeroState) {
    const auto nl = lfsr(4);
    std::vector<int> state(nl.dffs().size(), 0);
    std::vector<std::uint64_t> seen;
    for (int k = 0; k < 15; ++k) seen.push_back(fromBits(nl.step({}, state)));
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    // XNOR-feedback Fibonacci LFSR visits 2^n - 1 states (all but 1111).
    EXPECT_EQ(seen.size(), 15u);
}

TEST(FabricWorkloads, RegisteredRippleAdderDelaysOneSlot) {
    const auto nl = registeredRippleAdder(4);
    std::vector<int> state(nl.dffs().size(), 0);
    std::uint64_t prev = 0;  // power-on registers
    for (const auto& [a, b] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {3, 5}, {15, 15}, {9, 0}, {7, 8}}) {
        auto in = toBits(a, 4);
        const auto bb = toBits(b, 4);
        in.insert(in.end(), bb.begin(), bb.end());
        in.push_back(0);
        EXPECT_EQ(fromBits(nl.step(in, state)), prev);
        prev = a + b;
    }
}

TEST(FabricWorkloads, GeneratorsRejectDegenerateWidths) {
    EXPECT_THROW(rippleAdder(0), FabricError);
    EXPECT_THROW(registeredRippleAdder(0), FabricError);
    EXPECT_THROW(carrySelectAdder(0, 4), FabricError);
    EXPECT_THROW(carrySelectAdder(8, 0), FabricError);
    EXPECT_THROW(upCounter(0), FabricError);
    EXPECT_THROW(lfsr(1), FabricError);
    EXPECT_THROW(shiftRegister(0), FabricError);
}

TEST(FabricWorkloads, ShiftRegisterDelaysNSlots) {
    const auto nl = shiftRegister(3);
    std::vector<int> state(nl.dffs().size(), 0);
    const std::vector<int> in{1, 0, 1, 1, 0, 1, 0, 0};
    for (std::size_t k = 0; k < in.size(); ++k) {
        const auto out = nl.step({in[k]}, state);
        const int want = k >= 3 ? in[k - 3] : 0;
        EXPECT_EQ(out[0], want) << "slot " << k;
    }
}
