// Batched-vs-scalar determinism contract: PhaseSystem::simulateBatched must
// produce BITWISE-identical trajectories to PhaseSystem::simulate for any
// fabric, any batch partition (blockSize) and any thread count — the batched
// engine is a performance path, never a numerical one.  EXPECT_EQ on doubles
// below is deliberate: exact equality, no tolerance.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/osc_fixture.hpp"
#include "logic/compile.hpp"
#include "logic/workloads.hpp"
#include "phlogon/serial_adder.hpp"

using namespace phlogon;
using core::PhaseSystem;

namespace {

/// Exact (bitwise) comparison of two simulation results.
void expectBitwiseEqual(const PhaseSystem::Result& a, const PhaseSystem::Result& b,
                        const char* what) {
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_EQ(a.t.size(), b.t.size()) << what;
    EXPECT_EQ(a.t, b.t) << what << ": time grids differ";
    ASSERT_EQ(a.dphi.size(), b.dphi.size()) << what;
    for (std::size_t i = 0; i < a.dphi.size(); ++i)
        EXPECT_EQ(a.dphi[i], b.dphi[i]) << what << ": latch " << i << " trajectory differs";
    ASSERT_EQ(a.vout.size(), b.vout.size()) << what;
    for (std::size_t i = 0; i < a.vout.size(); ++i)
        EXPECT_EQ(a.vout[i], b.vout[i]) << what << ": latch " << i << " vout differs";
}

/// RAII PHLOGON_THREADS override.
struct ScopedThreadsEnv {
    explicit ScopedThreadsEnv(const char* value) {
        const char* old = std::getenv("PHLOGON_THREADS");
        if (old) saved_ = old;
        had_ = old != nullptr;
        setenv("PHLOGON_THREADS", value, 1);
    }
    ~ScopedThreadsEnv() {
        if (had_)
            setenv("PHLOGON_THREADS", saved_.c_str(), 1);
        else
            unsetenv("PHLOGON_THREADS");
    }
    std::string saved_;
    bool had_ = false;
};

}  // namespace

TEST(FabricBatchParity, SerialAdderScalarVsBatched) {
    const auto& design = testutil::sharedFsmDesign();
    core::PhaseSystem sys;
    const auto adder =
        buildPhaseSerialAdder(sys, design, {1, 0, 1, 1}, {1, 1, 0, 1});
    const num::Vec dphi0(sys.latchCount(), design.reference.phase0 + 0.02);
    const double t1 = static_cast<double>(adder.nBits) * adder.bitPeriod;

    const auto scalar = sys.simulate(design.f1, 0.0, t1, dphi0, 64, 8);
    for (const core::BatchSimOptions opt :
         {core::BatchSimOptions{}, core::BatchSimOptions{1, 1}, core::BatchSimOptions{4, 7}}) {
        const auto batched = sys.simulateBatched(design.f1, 0.0, t1, dphi0, 64, 8, opt);
        expectBitwiseEqual(scalar, batched, "serial adder");
    }

    // Decoded answer is (a fortiori) identical and correct: 1011 + 1101.
    const auto batched = sys.simulateBatched(design.f1, 0.0, t1, dphi0, 64, 8);
    const auto [sums, couts] = decodeSerialAdderRun(sys, adder, batched, design.reference);
    EXPECT_EQ(sums, (logic::Bits{0, 0, 0, 1}));
    EXPECT_EQ(couts, (logic::Bits{1, 1, 1, 1}));
}

TEST(FabricBatchParity, RippleAdder16ScalarVsBatchedAcrossPartitions) {
    // 16-bit registered ripple adder: 34 latches, deep carry cones — the
    // stress case for signal-evaluation order and delay-group handling.
    const auto nl = logic::registeredRippleAdder(16);
    const std::vector<std::vector<int>> vectors{
        logic::toBits(0x1B35F | (0x0F0F0ull << 16), 33),  // a=0x.., b=0x.., cin packed LSB-first
        logic::toBits(0x2AAAA | (0x15555ull << 16), 33),
    };
    const auto fab = logic::compileFabric(nl, testutil::sharedFsmDesign(), vectors);
    ASSERT_EQ(fab.sys.latchCount(), 34u);

    const auto scalar =
        fab.sys.simulate(testutil::kF1, 0.0, fab.tEnd(), fab.initialDphi, 64, 16);
    for (const core::BatchSimOptions opt :
         {core::BatchSimOptions{1, 0}, core::BatchSimOptions{1, 1}, core::BatchSimOptions{4, 7},
          core::BatchSimOptions{4, 33}}) {
        const auto batched =
            fab.sys.simulateBatched(testutil::kF1, 0.0, fab.tEnd(), fab.initialDphi, 64, 16, opt);
        expectBitwiseEqual(scalar, batched, "ripple16");
    }
}

TEST(FabricBatchParity, ThreadsFromEnvironmentAreBitwiseNeutral) {
    const auto nl = logic::upCounter(3);
    const auto fab = logic::compileFabric(nl, testutil::sharedFsmDesign(),
                                          std::vector<std::vector<int>>(2));
    const auto scalar =
        fab.sys.simulate(testutil::kF1, 0.0, fab.tEnd(), fab.initialDphi, 64, 8);
    for (const char* threads : {"1", "2", "4"}) {
        ScopedThreadsEnv env(threads);
        // threads=0 defers to PHLOGON_THREADS; blockSize 1 maximizes the
        // number of parallel work items.
        const auto batched = fab.sys.simulateBatched(testutil::kF1, 0.0, fab.tEnd(),
                                                     fab.initialDphi, 64, 8, {0, 1});
        expectBitwiseEqual(scalar, batched, threads);
    }
}

TEST(FabricBatchParity, UnevenStoreEveryKeepsLastPoint) {
    const auto nl = logic::shiftRegister(1);
    const auto fab = logic::compileFabric(nl, testutil::sharedFsmDesign(),
                                          std::vector<std::vector<int>>{{1}});
    // storeEvery = 5 does not divide the step count: both paths must keep
    // the same thinned grid including the final point.
    const auto scalar =
        fab.sys.simulate(testutil::kF1, 0.0, fab.tEnd(), fab.initialDphi, 64, 5);
    const auto batched =
        fab.sys.simulateBatched(testutil::kF1, 0.0, fab.tEnd(), fab.initialDphi, 64, 5);
    expectBitwiseEqual(scalar, batched, "storeEvery=5");
    EXPECT_DOUBLE_EQ(scalar.t.back(), fab.tEnd());
}
