// Phase-domain equivalence harness: every compiled fabric must behave
// exactly like its netlist's Boolean semantics (LogicNetlist::step — itself
// verified against integer arithmetic in test_fabric.cpp).
//
// Two tiers:
//   * FabricIdealSim — latches pinned at their lock phases, the lowered gate
//     network (weights, constants, normalizers, clock gating) decoded by
//     correlation.  Cheap enough for >= 256 SplitMix64 random vectors per
//     fabric plus exhaustive input sweeps for widths <= 8.
//   * full phase-ODE runs (simulateBatched) — spot-check the dynamics on the
//     small sequential fabrics.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/osc_fixture.hpp"
#include "logic/compile.hpp"
#include "logic/workloads.hpp"
#include "numeric/rng.hpp"

using namespace phlogon;
using logic::LogicNetlist;

namespace {

std::vector<std::vector<int>> randomVectors(std::uint64_t seed, std::size_t count,
                                            std::size_t width) {
    num::SplitMix64 rng(seed);
    std::vector<std::vector<int>> vecs(count);
    for (auto& v : vecs) {
        v.resize(width);
        for (auto& bit : v) bit = static_cast<int>(rng() & 1u);
    }
    return vecs;
}

std::vector<std::vector<int>> exhaustiveVectors(std::size_t width) {
    std::vector<std::vector<int>> vecs;
    vecs.reserve(std::size_t{1} << width);
    for (std::uint64_t v = 0; v < (std::uint64_t{1} << width); ++v)
        vecs.push_back(logic::toBits(v, width));
    return vecs;
}

/// Compile `nl` with the given schedule and check every slot's decoded
/// outputs (and the flip-flop state trajectory) against LogicNetlist::step.
void expectFabricMatchesNetlist(const LogicNetlist& nl,
                                const std::vector<std::vector<int>>& vectors,
                                const char* what) {
    const auto fab = logic::compileFabric(nl, testutil::sharedFsmDesign(), vectors);
    logic::FabricIdealSim sim(fab);
    std::vector<int> state(nl.dffs().size(), 0);
    for (std::size_t k = 0; k < vectors.size(); ++k) {
        const auto want = nl.step(vectors[k], state);
        const auto got = sim.step();
        ASSERT_EQ(got, want) << what << ": outputs diverge at slot " << k;
        ASSERT_EQ(sim.state(), state) << what << ": dff state diverges at slot " << k;
    }
}

}  // namespace

// -- exhaustive sweeps (every input combination, widths <= 8) ---------------

TEST(FabricEquivalence, RippleAdder3Exhaustive) {
    const auto nl = logic::rippleAdder(3);  // 7 inputs -> 128 vectors
    expectFabricMatchesNetlist(nl, exhaustiveVectors(nl.inputs().size()), "ripple3");
}

TEST(FabricEquivalence, Multiplier4x4Exhaustive) {
    const auto nl = logic::multiplier4x4();  // 8 inputs -> 256 vectors
    expectFabricMatchesNetlist(nl, exhaustiveVectors(nl.inputs().size()), "mult4x4");
}

TEST(FabricEquivalence, CarrySelect3Exhaustive) {
    const auto nl = logic::carrySelectAdder(3, 2);  // 7 inputs -> 128 vectors
    expectFabricMatchesNetlist(nl, exhaustiveVectors(nl.inputs().size()), "csel3");
}

TEST(FabricEquivalence, EveryGateOpExhaustiveAndRandom) {
    // One netlist exercising every IR op's lowering (incl. nand/nor, which
    // no arithmetic workload uses), plus a dff closing a feedback path.
    const auto nl = logic::parseLogicNetlist(R"(
        input a b c
        and  t1 a b
        nand t2 a b
        or   t3 b c
        nor  t4 b c
        xor  t5 a c
        xnor t6 a b c
        maj  t7 t1 t3 t5
        not  t8 t7
        buf  t9 t8
        dff  q  d
        xor  d  q t9
        output t1 t2 t3 t4 t5 t6 t7 t8 t9 q
    )");
    auto vectors = exhaustiveVectors(nl.inputs().size());
    const auto rand = randomVectors(0x90DD, 256, nl.inputs().size());
    vectors.insert(vectors.end(), rand.begin(), rand.end());
    expectFabricMatchesNetlist(nl, vectors, "all-ops");
}

// -- random-vector sweeps (>= 256 SplitMix64 vectors per fabric) ------------

TEST(FabricEquivalence, RippleAdder8Random) {
    const auto nl = logic::rippleAdder(8);  // 17 inputs
    expectFabricMatchesNetlist(nl, randomVectors(0xA11CE, 256, nl.inputs().size()), "ripple8");
}

TEST(FabricEquivalence, CarrySelectAdder8Random) {
    const auto nl = logic::carrySelectAdder(8, 3);
    expectFabricMatchesNetlist(nl, randomVectors(0xB0B, 256, nl.inputs().size()), "csel8");
}

TEST(FabricEquivalence, RegisteredRippleAdder4Random) {
    const auto nl = logic::registeredRippleAdder(4);
    expectFabricMatchesNetlist(nl, randomVectors(0xCAFE, 256, nl.inputs().size()), "rripple4");
}

TEST(FabricEquivalence, ShiftRegister8Random) {
    const auto nl = logic::shiftRegister(8);
    expectFabricMatchesNetlist(nl, randomVectors(0xD1CE, 256, nl.inputs().size()), "shift8");
}

TEST(FabricEquivalence, UpCounter4Sequential) {
    const auto nl = logic::upCounter(4);  // no inputs: 256 empty slots
    expectFabricMatchesNetlist(nl, std::vector<std::vector<int>>(256), "counter4");
}

TEST(FabricEquivalence, Lfsr8Sequential) {
    const auto nl = logic::lfsr(8);
    expectFabricMatchesNetlist(nl, std::vector<std::vector<int>>(260), "lfsr8");
}

// -- full phase-ODE spot checks ---------------------------------------------

TEST(FabricEquivalence, UpCounter2FullOde) {
    const auto nl = logic::upCounter(2);
    const std::size_t ticks = 6;
    const auto fab = logic::compileFabric(nl, testutil::sharedFsmDesign(),
                                          std::vector<std::vector<int>>(ticks));
    const auto res = fab.sys.simulateBatched(testutil::kF1, 0.0, fab.tEnd(),
                                             fab.initialDphi, 64, 8);
    ASSERT_TRUE(res.ok);
    const auto decoded = logic::decodeFabricRun(fab, res);
    std::vector<int> state(nl.dffs().size(), 0);
    for (std::size_t k = 0; k < ticks; ++k)
        EXPECT_EQ(decoded[k], nl.step({}, state)) << "tick " << k;
}

TEST(FabricEquivalence, RegisteredRippleAdder2FullOde) {
    const auto nl = logic::registeredRippleAdder(2);
    const auto vectors = randomVectors(0xFEED, 6, nl.inputs().size());
    const auto fab = logic::compileFabric(nl, testutil::sharedFsmDesign(), vectors);
    const auto res = fab.sys.simulateBatched(testutil::kF1, 0.0, fab.tEnd(),
                                             fab.initialDphi, 64, 8);
    ASSERT_TRUE(res.ok);
    const auto decoded = logic::decodeFabricRun(fab, res);
    std::vector<int> state(nl.dffs().size(), 0);
    for (std::size_t k = 0; k < vectors.size(); ++k)
        EXPECT_EQ(decoded[k], nl.step(vectors[k], state)) << "slot " << k;
}

TEST(FabricEquivalence, ShiftRegister2FullOde) {
    const auto nl = logic::shiftRegister(2);
    const std::vector<std::vector<int>> vectors{{1}, {0}, {1}, {1}, {0}, {0}};
    const auto fab = logic::compileFabric(nl, testutil::sharedFsmDesign(), vectors);
    const auto res = fab.sys.simulateBatched(testutil::kF1, 0.0, fab.tEnd(),
                                             fab.initialDphi, 64, 8);
    ASSERT_TRUE(res.ok);
    const auto decoded = logic::decodeFabricRun(fab, res);
    std::vector<int> state(nl.dffs().size(), 0);
    for (std::size_t k = 0; k < vectors.size(); ++k)
        EXPECT_EQ(decoded[k], nl.step(vectors[k], state)) << "slot " << k;
}

// Compile-time guard rails of the fabric compiler itself.
TEST(FabricEquivalence, CompileRejectsBadSchedules) {
    const auto nl = logic::rippleAdder(2);
    EXPECT_THROW(logic::compileFabric(nl, testutil::sharedFsmDesign(), {}),
                 logic::FabricError);
    EXPECT_THROW(logic::compileFabric(nl, testutil::sharedFsmDesign(), {{1, 0}}),
                 logic::FabricError);  // 5 inputs, 2 bits
}
