#include "numeric/batch_ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace phlogon::num {
namespace {

// Scalar RHS and its batched mirror: per-lane arithmetic is identical, which
// is the precondition for BatchOde's bitwise-equivalence contract.
double decayRhs(double /*t*/, double y) { return -3.0 * y + std::sin(y); }

const BatchRhs1 decayBatch = [](const double* t, const double* y, double* dydt,
                                const unsigned char* /*active*/, std::size_t lanes) {
    for (std::size_t l = 0; l < lanes; ++l) dydt[l] = decayRhs(t[l], y[l]);
};

double stiffishRhs(double t, double y) { return std::cos(10.0 * t) - 0.5 * y * y; }

const BatchRhs1 stiffishBatch = [](const double* t, const double* y, double* dydt,
                                   const unsigned char* /*active*/, std::size_t lanes) {
    for (std::size_t l = 0; l < lanes; ++l) dydt[l] = stiffishRhs(t[l], y[l]);
};

TEST(BatchOde, MatchesScalarTrajectoriesBitwise) {
    // Property test over batch sizes B = 1..8: every lane's accepted-point
    // trajectory must equal the standalone rkf45Scalar run from the same
    // initial condition — bit for bit, including step placement.
    for (std::size_t B = 1; B <= 8; ++B) {
        Vec y0(B);
        for (std::size_t l = 0; l < B; ++l) y0[l] = 0.1 + 0.37 * static_cast<double>(l);
        BatchOde batch(B);
        const BatchOdeSolution sol = batch.rkf45(stiffishBatch, y0, 0.0, 2.5);
        ASSERT_TRUE(sol.ok) << "B=" << B;
        ASSERT_EQ(sol.lanes.size(), B);
        for (std::size_t l = 0; l < B; ++l) {
            const OdeSolution1 ref = rkf45Scalar(stiffishRhs, y0[l], 0.0, 2.5);
            ASSERT_TRUE(ref.ok);
            ASSERT_EQ(sol.lanes[l].t.size(), ref.t.size()) << "B=" << B << " lane=" << l;
            EXPECT_EQ(sol.lanes[l].rejectedSteps, ref.rejectedSteps);
            for (std::size_t p = 0; p < ref.t.size(); ++p) {
                EXPECT_EQ(sol.lanes[l].t[p], ref.t[p]) << "B=" << B << " lane=" << l;
                EXPECT_EQ(sol.lanes[l].y[p], ref.y[p]) << "B=" << B << " lane=" << l;
            }
        }
    }
}

TEST(BatchOde, LanePartitioningDoesNotChangeResults) {
    // Integrating 8 lanes at once or as 2+3+3 must give identical per-lane
    // results: lanes never interact.
    Vec y0(8);
    for (std::size_t l = 0; l < 8; ++l) y0[l] = -1.0 + 0.25 * static_cast<double>(l);
    BatchOde batch;
    const BatchOdeSolution whole = batch.rkf45(decayBatch, y0, 0.0, 1.7);
    ASSERT_TRUE(whole.ok);
    std::size_t lane = 0;
    for (const std::size_t part : {2u, 3u, 3u}) {
        Vec sub(part);
        for (std::size_t i = 0; i < part; ++i) sub[i] = y0[lane + i];
        const BatchOdeSolution piece = batch.rkf45(decayBatch, sub, 0.0, 1.7);
        ASSERT_TRUE(piece.ok);
        for (std::size_t i = 0; i < part; ++i) {
            ASSERT_EQ(piece.lanes[i].y.size(), whole.lanes[lane + i].y.size());
            for (std::size_t p = 0; p < piece.lanes[i].y.size(); ++p)
                EXPECT_EQ(piece.lanes[i].y[p], whole.lanes[lane + i].y[p]);
        }
        lane += part;
    }
}

TEST(BatchOde, RespectsOptionsLikeScalar) {
    OdeOptions opt;
    opt.relTol = 1e-10;
    opt.absTol = 1e-13;
    opt.maxStep = 0.05;
    opt.initialStep = 0.01;
    Vec y0{0.3, 1.1, -0.4};
    BatchOde batch;
    const BatchOdeSolution sol = batch.rkf45(stiffishBatch, y0, 0.0, 1.0, opt);
    ASSERT_TRUE(sol.ok);
    for (std::size_t l = 0; l < y0.size(); ++l) {
        const OdeSolution1 ref = rkf45Scalar(stiffishRhs, y0[l], 0.0, 1.0, opt);
        ASSERT_EQ(sol.lanes[l].t.size(), ref.t.size());
        for (std::size_t p = 0; p < ref.t.size(); ++p)
            EXPECT_EQ(sol.lanes[l].y[p], ref.y[p]);
        // maxStep honoured per lane.
        for (std::size_t p = 1; p < sol.lanes[l].t.size(); ++p)
            EXPECT_LE(sol.lanes[l].t[p] - sol.lanes[l].t[p - 1], opt.maxStep * (1 + 1e-12));
    }
}

TEST(BatchOde, MaxStepsFailsLanesLikeScalar) {
    OdeOptions opt;
    opt.maxSteps = 5;  // far too few
    Vec y0{0.5, 0.7};
    BatchOde batch;
    const BatchOdeSolution sol = batch.rkf45(stiffishBatch, y0, 0.0, 10.0, opt);
    EXPECT_FALSE(sol.ok);
    for (std::size_t l = 0; l < y0.size(); ++l) {
        const OdeSolution1 ref = rkf45Scalar(stiffishRhs, y0[l], 0.0, 10.0, opt);
        EXPECT_EQ(sol.lanes[l].ok, ref.ok);
        ASSERT_EQ(sol.lanes[l].t.size(), ref.t.size());
        for (std::size_t p = 0; p < ref.t.size(); ++p)
            EXPECT_EQ(sol.lanes[l].y[p], ref.y[p]);
    }
}

TEST(BatchOde, EmptyBatchAndDegenerateSpan) {
    BatchOde batch;
    const BatchOdeSolution none = batch.rkf45(decayBatch, Vec{}, 0.0, 1.0);
    EXPECT_TRUE(none.ok);
    EXPECT_TRUE(none.lanes.empty());
    const BatchOdeSolution flat = batch.rkf45(decayBatch, Vec{1.0, 2.0}, 1.0, 1.0);
    EXPECT_TRUE(flat.ok);
    ASSERT_EQ(flat.lanes.size(), 2u);
    for (const auto& lane : flat.lanes) {
        EXPECT_TRUE(lane.ok);
        ASSERT_EQ(lane.y.size(), 1u);
    }
    EXPECT_EQ(flat.lanes[1].y[0], 2.0);
}

TEST(BatchOde, InactiveLanesMayBeSkippedByRhs) {
    // An RHS that writes NaN into inactive lanes must not corrupt active
    // ones (the driver only reads k values for active lanes).
    const BatchRhs1 guarded = [](const double* t, const double* y, double* dydt,
                                 const unsigned char* active, std::size_t lanes) {
        for (std::size_t l = 0; l < lanes; ++l)
            dydt[l] = active[l] ? decayRhs(t[l], y[l]) : std::nan("");
    };
    // Lane 0 finishes much later than lane 1 (tighter tolerance -> more
    // steps), so rounds exist where lane 1 is inactive.
    Vec y0{2.0, 0.001};
    BatchOde batch;
    const BatchOdeSolution sol = batch.rkf45(guarded, y0, 0.0, 3.0);
    ASSERT_TRUE(sol.ok);
    const OdeSolution1 ref = rkf45Scalar(decayRhs, 2.0, 0.0, 3.0);
    ASSERT_EQ(sol.lanes[0].y.size(), ref.y.size());
    for (std::size_t p = 0; p < ref.y.size(); ++p) EXPECT_EQ(sol.lanes[0].y[p], ref.y[p]);
}

}  // namespace
}  // namespace phlogon::num
