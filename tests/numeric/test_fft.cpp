#include "numeric/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

namespace phlogon::num {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(Fft, RoundTripPowerOfTwo) {
    std::mt19937 rng(1);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    CVec a(64);
    for (Cplx& v : a) v = Cplx(dist(rng), dist(rng));
    CVec b = a;
    fft(b);
    ifft(b);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(b[i].real(), a[i].real(), 1e-12);
        EXPECT_NEAR(b[i].imag(), a[i].imag(), 1e-12);
    }
}

TEST(Fft, RoundTripNonPowerOfTwo) {
    CVec a(12);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = Cplx(std::sin(0.7 * i), std::cos(0.3 * i));
    CVec b = a;
    fft(b);
    ifft(b);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(std::abs(b[i] - a[i]), 0.0, 1e-11);
}

TEST(Fft, DeltaTransformsToConstant) {
    CVec a(8, Cplx(0.0));
    a[0] = 1.0;
    fft(a);
    for (const Cplx& v : a) EXPECT_NEAR(std::abs(v - Cplx(1.0)), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
    const std::size_t n = 32;
    Vec x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = std::cos(kTwoPi * 3.0 * i / n);
    const CVec s = dftReal(x);
    for (std::size_t k = 0; k < n; ++k) {
        const double expected = (k == 3 || k == n - 3) ? n / 2.0 : 0.0;
        EXPECT_NEAR(std::abs(s[k]), expected, 1e-9) << "bin " << k;
    }
}

TEST(FourierCoefficients, ReconstructsSignalConvention) {
    // f(t) = 1 + 2 cos(2 pi t) + 0.5 cos(2 pi 2 t + 0.3)
    const std::size_t n = 64;
    Vec x(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / n;
        x[i] = 1.0 + 2.0 * std::cos(kTwoPi * t) + 0.5 * std::cos(kTwoPi * 2.0 * t + 0.3);
    }
    const CVec c = fourierCoefficients(x, 4);
    EXPECT_NEAR(harmonicMagnitude(c, 0), 1.0, 1e-10);
    EXPECT_NEAR(harmonicMagnitude(c, 1), 2.0, 1e-10);
    EXPECT_NEAR(harmonicMagnitude(c, 2), 0.5, 1e-10);
    EXPECT_NEAR(harmonicMagnitude(c, 3), 0.0, 1e-10);
    EXPECT_NEAR(harmonicMagnitude(c, 99), 0.0, 1e-15);  // out of range -> 0
}

TEST(FourierCoefficients, PhaseRecovered) {
    const std::size_t n = 128;
    const double phase = 0.8;
    Vec x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::cos(kTwoPi * static_cast<double>(i) / n + phase);
    const CVec c = fourierCoefficients(x, 1);
    // Convention: f ~ 2*Re(c1 e^{j 2 pi t}) -> arg(c1) = phase.
    EXPECT_NEAR(std::arg(c[1]), phase, 1e-10);
}

TEST(CyclicCorrelation, MatchesDirectSum) {
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 24;
    Vec a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = dist(rng);
        b[i] = dist(rng);
    }
    const Vec r = cyclicCorrelation(a, b);
    for (std::size_t m = 0; m < n; ++m) {
        double direct = 0.0;
        for (std::size_t i = 0; i < n; ++i) direct += a[(i + m) % n] * b[i];
        EXPECT_NEAR(r[m], direct / n, 1e-12) << "lag " << m;
    }
}

TEST(CyclicCorrelation, OfShiftedCosinesIsCosineOfLag) {
    // (1/N) sum cos(2 pi (i+m)/N) cos(2 pi i/N) = cos(2 pi m/N)/2
    const std::size_t n = 64;
    Vec a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = std::cos(kTwoPi * i / n);
        b[i] = std::cos(kTwoPi * i / n);
    }
    const Vec r = cyclicCorrelation(a, b);
    for (std::size_t m = 0; m < n; m += 7)
        EXPECT_NEAR(r[m], 0.5 * std::cos(kTwoPi * m / n), 1e-12);
}

TEST(CyclicCorrelation, OrthogonalHarmonicsGiveZero) {
    const std::size_t n = 64;
    Vec a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = std::cos(kTwoPi * i / n);        // fundamental
        b[i] = std::cos(kTwoPi * 2.0 * i / n);  // 2nd harmonic
    }
    const Vec r = cyclicCorrelation(a, b);
    for (double v : r) EXPECT_NEAR(v, 0.0, 1e-12);
}

}  // namespace
}  // namespace phlogon::num
