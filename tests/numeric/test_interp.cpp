#include "numeric/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace phlogon::num {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(Wrap01, BasicCases) {
    EXPECT_DOUBLE_EQ(wrap01(0.25), 0.25);
    EXPECT_DOUBLE_EQ(wrap01(1.25), 0.25);
    EXPECT_DOUBLE_EQ(wrap01(-0.25), 0.75);
    EXPECT_DOUBLE_EQ(wrap01(3.0), 0.0);
    EXPECT_DOUBLE_EQ(wrap01(-2.0), 0.0);
    EXPECT_GE(wrap01(-1e-18), 0.0);
    EXPECT_LT(wrap01(-1e-18), 1.0);
}

TEST(PeriodicLinear, HitsSamplesExactly) {
    const Vec s{0.0, 1.0, 0.0, -1.0};
    PeriodicLinear p(s);
    for (std::size_t i = 0; i < s.size(); ++i)
        EXPECT_DOUBLE_EQ(p(static_cast<double>(i) / 4.0), s[i]);
}

TEST(PeriodicLinear, InterpolatesAndWraps) {
    PeriodicLinear p(Vec{0.0, 1.0});
    EXPECT_DOUBLE_EQ(p(0.25), 0.5);
    EXPECT_DOUBLE_EQ(p(0.75), 0.5);  // wraps from 1.0 back to 0.0
    EXPECT_DOUBLE_EQ(p(1.25), 0.5);
    EXPECT_DOUBLE_EQ(p(-0.75), 0.5);
}

TEST(PeriodicCubicSpline, RequiresThreeSamples) {
    EXPECT_THROW(PeriodicCubicSpline(Vec{1.0, 2.0}), std::invalid_argument);
}

TEST(PeriodicCubicSpline, HitsKnots) {
    const Vec s{0.0, 1.0, 0.5, -0.5, -1.0};
    PeriodicCubicSpline p(s);
    for (std::size_t i = 0; i < s.size(); ++i)
        EXPECT_NEAR(p(static_cast<double>(i) / s.size()), s[i], 1e-12);
}

TEST(PeriodicCubicSpline, ReproducesSmoothPeriodicFunction) {
    const std::size_t n = 32;
    Vec s(n);
    for (std::size_t i = 0; i < n; ++i) s[i] = std::sin(kTwoPi * i / n);
    PeriodicCubicSpline p(s);
    for (double t = 0.0; t < 1.0; t += 0.013)
        EXPECT_NEAR(p(t), std::sin(kTwoPi * t), 2e-5) << "t=" << t;
}

TEST(PeriodicCubicSpline, DerivativeMatchesAnalytic) {
    const std::size_t n = 64;
    Vec s(n);
    for (std::size_t i = 0; i < n; ++i) s[i] = std::cos(kTwoPi * i / n);
    PeriodicCubicSpline p(s);
    for (double t = 0.05; t < 1.0; t += 0.1)
        EXPECT_NEAR(p.derivative(t), -kTwoPi * std::sin(kTwoPi * t), 3e-3) << "t=" << t;
}

TEST(PeriodicCubicSpline, ContinuousAcrossPeriodBoundary) {
    Vec s{1.0, 0.2, -0.7, 0.4, 0.9, -0.1};
    PeriodicCubicSpline p(s);
    const double eps = 1e-9;
    EXPECT_NEAR(p(1.0 - eps), p(0.0 + eps), 1e-6);
    EXPECT_NEAR(p.derivative(1.0 - eps), p.derivative(0.0 + eps), 1e-4);
}

TEST(ResampleUniform, IdentityOnMatchingGrid) {
    const Vec t{0.0, 0.25, 0.5, 0.75, 1.0};
    const Vec x{1.0, 2.0, 3.0, 4.0, 5.0};
    const Vec u = resampleUniform(t, x, 0.0, 1.0, 4);
    ASSERT_EQ(u.size(), 4u);
    EXPECT_NEAR(u[0], 1.0, 1e-12);
    EXPECT_NEAR(u[1], 2.0, 1e-12);
    EXPECT_NEAR(u[3], 4.0, 1e-12);
}

TEST(ResampleUniform, LinearInterpolationBetweenPoints) {
    const Vec t{0.0, 1.0};
    const Vec x{0.0, 10.0};
    const Vec u = resampleUniform(t, x, 0.0, 1.0, 10);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(u[i], static_cast<double>(i), 1e-10);
}

TEST(ResampleUniform, ClampsOutsideRange) {
    const Vec t{0.2, 0.8};
    const Vec x{5.0, 7.0};
    const Vec u = resampleUniform(t, x, 0.0, 1.0, 4);  // samples at 0, .25, .5, .75
    EXPECT_DOUBLE_EQ(u[0], 5.0);  // before first point -> clamped
    EXPECT_NEAR(u[2], 6.0, 1e-12);
}

TEST(ResampleUniform, NonUniformSourceGrid) {
    const Vec t{0.0, 0.1, 0.9, 1.0};
    const Vec x{0.0, 1.0, 9.0, 10.0};  // globally linear y = 10 t
    const Vec u = resampleUniform(t, x, 0.0, 1.0, 5);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(u[i], 2.0 * i, 1e-10);
}

TEST(ResampleUniform, BoundaryKnots) {
    // Sample points landing exactly on t.front(), interior knots, and the
    // value just below t.back() — the regions the (collapsed) k-advance loop
    // must position correctly.
    const Vec t{0.0, 0.25, 0.5, 0.75, 1.0};
    const Vec x{0.0, 2.5, 5.0, 7.5, 10.0};
    const Vec u = resampleUniform(t, x, 0.0, 1.0, 4);  // ti = 0, .25, .5, .75
    EXPECT_DOUBLE_EQ(u[0], 0.0);   // ti == t.front(): clamped branch
    EXPECT_NEAR(u[1], 2.5, 1e-12);  // ti exactly on an interior knot
    EXPECT_NEAR(u[2], 5.0, 1e-12);
    EXPECT_NEAR(u[3], 7.5, 1e-12);
}

TEST(ResampleUniform, EndpointAtBack) {
    // ti >= t.back() clamps to x.back(); just below it interpolates within
    // the last cell.
    const Vec t{0.0, 1.0};
    const Vec x{0.0, 10.0};
    const Vec u = resampleUniform(t, x, 0.5, 1.0, 2);  // ti = 0.5, 1.0
    EXPECT_NEAR(u[0], 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(u[1], 10.0);  // ti == t.back(): clamped
    // Many samples crammed into the final cell never read past the end.
    const Vec v = resampleUniform(t, x, 0.9, 0.1, 8);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(v[i], 9.0 + 0.1 * 10.0 * static_cast<double>(i) / 8.0, 1e-12);
}

TEST(PackedPeriodicSpline, MatchesSourceSplineEverywhere) {
    Vec s(16);
    for (std::size_t i = 0; i < 16; ++i) s[i] = std::sin(kTwoPi * i / 16.0) + 0.3 * std::cos(2 * kTwoPi * i / 16.0);
    const PeriodicCubicSpline spline(s);
    const PackedPeriodicSpline packed(spline);
    for (int i = -300; i <= 300; ++i) {
        const double t = static_cast<double>(i) / 97.0;
        EXPECT_NEAR(packed(t), spline(t), 1e-12) << "t=" << t;
    }
}

TEST(PackedPeriodicSpline, SeamWrapsLikeSourceSpline) {
    // Regression for the seam disagreement: the packed clamp used to
    // evaluate segment n-1 at s = 1 when wrap01(t)*n rounded up to n, while
    // PeriodicCubicSpline's i % n wraps the same corner to segment 0 at
    // s = 0 (value exactly x_[0]).  Both paths must agree bitwise at and
    // around the seam.
    Vec s(8);
    for (std::size_t i = 0; i < 8; ++i) s[i] = std::cos(kTwoPi * i / 8.0) - 0.2 * std::sin(3 * kTwoPi * i / 8.0);
    const PeriodicCubicSpline spline(s);
    const PackedPeriodicSpline packed(spline);

    // Exact integers hit the seam corner: wrap01 == 0, value == x_[0].
    for (double t : {0.0, 1.0, -1.0, 5.0, -7.0, 1024.0}) {
        EXPECT_EQ(packed(t), s[0]) << "t=" << t;
        EXPECT_EQ(spline(t), packed(t)) << "t=" << t;
    }
    // Seam-adjacent values from both sides stay continuous and equal to the
    // source spline to rounding.
    for (double t : {std::nextafter(1.0, 0.0), std::nextafter(1.0, 2.0),
                     1.0 - 1e-13, 1.0 + 1e-13, 2.0 - 1e-13, -1e-13}) {
        EXPECT_NEAR(packed(t), spline(t), 1e-12) << "t=" << t;
        EXPECT_NEAR(packed(t), s[0], 1e-9) << "t=" << t;  // continuity at the knot
    }
    // The batched path takes the same seam branch as operator().
    const double ts[4] = {0.0, std::nextafter(1.0, 0.0), 3.0, -2.0};
    double out[4];
    packed.evalMany(ts, out, 4);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(packed(ts[i]), out[i]);
}

}  // namespace
}  // namespace phlogon::num
