#include "numeric/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace phlogon::num {
namespace {

TEST(Lu, SolvesKnownSystem) {
    Matrix a{{2, 1}, {1, 3}};
    auto f = LuFactor::factor(a);
    ASSERT_TRUE(f.has_value());
    const Vec x = f->solve(Vec{3, 5});
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RejectsSingular) {
    Matrix a{{1, 2}, {2, 4}};
    EXPECT_FALSE(LuFactor::factor(a).has_value());
}

TEST(Lu, RejectsEmptyAndNonSquare) {
    EXPECT_FALSE(LuFactor::factor(Matrix()).has_value());
    EXPECT_FALSE(LuFactor::factor(Matrix(2, 3)).has_value());
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
    Matrix a{{0, 1}, {1, 0}};
    auto f = LuFactor::factor(a);
    ASSERT_TRUE(f.has_value());
    const Vec x = f->solve(Vec{2, 3});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, Determinant) {
    Matrix a{{2, 0}, {0, 3}};
    EXPECT_NEAR(LuFactor::factor(a)->determinant(), 6.0, 1e-12);
    Matrix b{{0, 1}, {1, 0}};  // permutation, det = -1
    EXPECT_NEAR(LuFactor::factor(b)->determinant(), -1.0, 1e-12);
}

TEST(Lu, SolveTransposedMatchesExplicitTranspose) {
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + static_cast<std::size_t>(trial % 7);
        Matrix a(n, n);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
            a(r, r) += 3.0;  // make well conditioned
        }
        Vec b(n);
        for (double& v : b) v = dist(rng);
        auto f = LuFactor::factor(a);
        ASSERT_TRUE(f.has_value());
        const Vec x1 = f->solveTransposed(b);
        auto ft = LuFactor::factor(a.transposed());
        ASSERT_TRUE(ft.has_value());
        const Vec x2 = ft->solve(b);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
    }
}

TEST(Lu, ResidualSmallOnRandomSystems) {
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 9);
        Matrix a(n, n);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng) + (r == c ? 2.0 : 0.0);
        Vec b(n);
        for (double& v : b) v = dist(rng);
        auto f = LuFactor::factor(a);
        ASSERT_TRUE(f.has_value());
        const Vec x = f->solve(b);
        const Vec r = a * x - b;
        EXPECT_LT(normInf(r), 1e-11);
    }
}

TEST(Lu, SolveMatrixReproducesInverse) {
    Matrix a{{4, 1}, {2, 3}};
    auto inv = inverse(a);
    ASSERT_TRUE(inv.has_value());
    const Matrix prod = a * (*inv);
    EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
    EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
    EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
}

TEST(Lu, SolveLinearConvenience) {
    const auto x = solveLinear(Matrix{{1, 0}, {0, 2}}, Vec{1, 4});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[1], 2.0, 1e-14);
    EXPECT_FALSE(solveLinear(Matrix{{1, 1}, {1, 1}}, Vec{1, 1}).has_value());
}

TEST(Lu, RefactorReusesStorageAndMatchesFactor) {
    LuFactor f;
    EXPECT_FALSE(f.valid());
    Matrix a{{2, 1}, {1, 3}};
    ASSERT_TRUE(f.refactor(a));
    EXPECT_TRUE(f.valid());
    Vec x;
    f.solveInto(Vec{3, 5}, x);
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);

    // Refactor a different same-size matrix in place.
    Matrix b{{0, 1}, {1, 0}};
    ASSERT_TRUE(f.refactor(b));
    f.solveInto(Vec{2, 3}, x);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);

    // A singular refactor invalidates the object.
    Matrix s{{1, 2}, {2, 4}};
    EXPECT_FALSE(f.refactor(s));
    EXPECT_FALSE(f.valid());
}

TEST(Lu, SolveIntoMatchesSolveBitwise) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 6);
        Matrix a(n, n);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng) + (r == c ? 3.0 : 0.0);
        Vec b(n);
        for (double& v : b) v = dist(rng);
        auto f = LuFactor::factor(a);
        ASSERT_TRUE(f.has_value());
        const Vec x1 = f->solve(b);
        Vec x2;
        f->solveInto(b, x2);
        for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
    }
}

TEST(Lu, SolveMatrixIntoMatchesColumnwiseSolves) {
    // The blocked row-sweep multi-RHS path must agree with one triangular
    // solve per column to the last bit (identical per-element op chains).
    std::mt19937 rng(23);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 7);
        const std::size_t m = n + 1;  // PSS sensitivity shape
        Matrix a(n, n);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng) + (r == c ? 3.0 : 0.0);
        Matrix b(n, m);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < m; ++c) b(r, c) = dist(rng);
        auto f = LuFactor::factor(a);
        ASSERT_TRUE(f.has_value());
        Matrix x;
        f->solveMatrixInto(b, x);
        ASSERT_EQ(x.rows(), n);
        ASSERT_EQ(x.cols(), m);
        Vec col(n), sol;
        for (std::size_t c = 0; c < m; ++c) {
            for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
            f->solveInto(col, sol);
            for (std::size_t r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(x(r, c), sol[r]);
        }
    }
}

TEST(Lu, RcondEstimateOrdersWellVsIllConditioned) {
    const double good = LuFactor::factor(Matrix::identity(3))->rcondEstimate();
    Matrix bad{{1, 0}, {0, 1e-10}};
    const double poor = LuFactor::factor(bad)->rcondEstimate();
    EXPECT_GT(good, 0.5);
    EXPECT_LT(poor, 1e-9);
}

TEST(Eigen, InverseIterationFindsNearestEigenpair) {
    // Symmetric matrix with eigenvalues 1 and 3.
    Matrix a{{2, 1}, {1, 2}};
    const auto p1 = inverseIteration(a, 0.9);
    ASSERT_TRUE(p1.has_value());
    EXPECT_NEAR(p1->first, 1.0, 1e-8);
    const auto p3 = inverseIteration(a, 3.2);
    ASSERT_TRUE(p3.has_value());
    EXPECT_NEAR(p3->first, 3.0, 1e-8);
    // Eigenvector of eigenvalue 3 is (1,1)/sqrt(2).
    EXPECT_NEAR(std::abs(p3->second[0]), std::abs(p3->second[1]), 1e-8);
}

TEST(Eigen, InverseIterationHandlesExactShift) {
    Matrix a{{2, 0}, {0, 5}};
    const auto p = inverseIteration(a, 5.0);  // exactly singular shift: nudged internally
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->first, 5.0, 1e-6);
}

TEST(Eigen, PowerIterationFindsDominant) {
    Matrix a{{3, 1}, {0, 1}};
    const auto p = powerIteration(a);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->first, 3.0, 1e-8);
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(LuDeathTest, SolveIntoRejectsAliasedOutput) {
    // solveInto seeds x with the permuted b before substituting in place, so
    // an aliased output would silently corrupt the solve; the debug assert
    // turns that into an immediate failure.
    auto f = LuFactor::factor(Matrix{{2, 1}, {1, 3}});
    ASSERT_TRUE(f.has_value());
    Vec b{3, 5};
    EXPECT_DEATH(f->solveInto(b, b), "");
}

TEST(LuDeathTest, SolveMatrixIntoRejectsAliasedOutput) {
    auto f = LuFactor::factor(Matrix{{2, 1}, {1, 3}});
    ASSERT_TRUE(f.has_value());
    Matrix b{{1, 0}, {0, 1}};
    EXPECT_DEATH(f->solveMatrixInto(b, b), "");
}
#endif

TEST(Eigen, PowerIterationBreaksDownOnZeroMatrix) {
    // A v = 0 on the first multiply: the iteration cannot normalize and must
    // report failure instead of dividing by zero.
    EXPECT_FALSE(powerIteration(Matrix(3, 3)).has_value());
}

TEST(Eigen, PowerIterationBreaksDownOnNilpotent) {
    // [[0,1],[0,0]] annihilates every vector in two steps; all eigenvalues
    // are 0 so there is no dominant direction for the iteration to find.
    Matrix a{{0, 1}, {0, 0}};
    EXPECT_FALSE(powerIteration(a).has_value());
}

TEST(Eigen, IterationsRejectEmptyAndNonSquare) {
    EXPECT_FALSE(powerIteration(Matrix()).has_value());
    EXPECT_FALSE(powerIteration(Matrix(2, 3)).has_value());
    EXPECT_FALSE(inverseIteration(Matrix(), 0.0).has_value());
    EXPECT_FALSE(inverseIteration(Matrix(2, 3), 0.0).has_value());
}

TEST(Eigen, InverseIterationZeroMatrixTakesNudgePath) {
    // The zero matrix is singular at shift 0; the internal shift nudge makes
    // (A - eps I) factorable and the iteration settles on eigenvalue 0.
    const auto p = inverseIteration(Matrix(2, 2), 0.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->first, 0.0, 1e-8);
}

TEST(Eigen, InverseIterationNullSpace) {
    // Singular matrix: eigenvalue 0 with eigenvector (1,-1)/sqrt(2).
    Matrix a{{1, 1}, {1, 1}};
    const auto p = inverseIteration(a, 0.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->first, 0.0, 1e-8);
    EXPECT_NEAR(p->second[0] + p->second[1], 0.0, 1e-7);
}

}  // namespace
}  // namespace phlogon::num
