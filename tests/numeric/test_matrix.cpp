#include "numeric/matrix.hpp"

#include <gtest/gtest.h>

namespace phlogon::num {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
    Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructorFills) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerList) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
    const Matrix i = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transposed) {
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, AddSubtractScale) {
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{4, 3}, {2, 1}};
    const Matrix s = a + b;
    EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
    const Matrix d = a - b;
    EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
    const Matrix sc = 2.0 * a;
    EXPECT_DOUBLE_EQ(sc(1, 0), 6.0);
}

TEST(Matrix, MatrixMatrixProduct) {
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{0, 1}, {1, 0}};
    const Matrix p = a * b;
    EXPECT_DOUBLE_EQ(p(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(p(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(p(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 3.0);
}

TEST(Matrix, MatrixVectorProduct) {
    Matrix a{{1, 2}, {3, 4}};
    const Vec y = a * Vec{1.0, 1.0};
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MultTranspose) {
    Matrix a{{1, 2}, {3, 4}};
    const Vec y = multTranspose(a, Vec{1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, Norms) {
    Matrix a{{3, 0}, {0, 4}};
    EXPECT_DOUBLE_EQ(a.normFro(), 5.0);
    EXPECT_DOUBLE_EQ(a.normMax(), 4.0);
}

TEST(Matrix, ResizeZeroes) {
    Matrix a{{1, 2}, {3, 4}};
    a.resize(3, 3);
    EXPECT_EQ(a.rows(), 3u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(a(r, c), 0.0);
}

TEST(VecOps, Arithmetic) {
    Vec a{1, 2, 3}, b{3, 2, 1};
    const Vec s = a + b;
    EXPECT_DOUBLE_EQ(s[0], 4.0);
    const Vec d = a - b;
    EXPECT_DOUBLE_EQ(d[0], -2.0);
    const Vec m = 2.0 * a;
    EXPECT_DOUBLE_EQ(m[2], 6.0);
    a += b;
    EXPECT_DOUBLE_EQ(a[1], 4.0);
    a -= b;
    EXPECT_DOUBLE_EQ(a[1], 2.0);
    a *= 3.0;
    EXPECT_DOUBLE_EQ(a[0], 3.0);
}

TEST(VecOps, AxpyDotNorms) {
    Vec a{1, 2, 2};
    Vec b{1, 0, 0};
    axpy(2.0, b, a);
    EXPECT_DOUBLE_EQ(a[0], 3.0);
    EXPECT_DOUBLE_EQ(dot(Vec{1, 2}, Vec{3, 4}), 11.0);
    EXPECT_DOUBLE_EQ(normInf(Vec{-5, 2}), 5.0);
    EXPECT_DOUBLE_EQ(norm2(Vec{3, 4}), 5.0);
}

TEST(VecOps, Linspace) {
    const Vec v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
    EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(VecOps, LinspaceSinglePoint) {
    const Vec v = linspace(2.0, 5.0, 1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_DOUBLE_EQ(v[0], 2.0);
}

}  // namespace
}  // namespace phlogon::num
