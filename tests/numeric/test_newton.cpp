#include "numeric/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace phlogon::num {
namespace {

TEST(Newton, SolvesScalarQuadratic) {
    // x^2 - 4 = 0, starting near the positive root.
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] * x[0] - 4.0}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{2.0 * x[0]}}; };
    Vec x{3.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 2.0, 1e-8);
    EXPECT_LT(r.iterations, 12);
}

TEST(Newton, Solves2dNonlinearSystem) {
    // x^2 + y^2 = 1, y = x  ->  x = y = 1/sqrt(2).
    const ResidualFn f = [](const Vec& v) {
        return Vec{v[0] * v[0] + v[1] * v[1] - 1.0, v[1] - v[0]};
    };
    const JacobianFn j = [](const Vec& v) {
        return Matrix{{2.0 * v[0], 2.0 * v[1]}, {-1.0, 1.0}};
    };
    Vec x{1.0, 0.5};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(x[1], 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(Newton, QuadraticConvergenceIsFast) {
    const ResidualFn f = [](const Vec& x) { return Vec{std::exp(x[0]) - 2.0}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{std::exp(x[0])}}; };
    Vec x{0.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], std::log(2.0), 1e-10);
    EXPECT_LE(r.iterations, 8);
}

TEST(Newton, DampingRescuesOvershoot) {
    // atan has a famously divergent undamped Newton from |x0| > ~1.39.
    const ResidualFn f = [](const Vec& x) { return Vec{std::atan(x[0])}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{1.0 / (1.0 + x[0] * x[0])}}; };
    Vec x{3.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 0.0, 1e-8);
}

TEST(Newton, ReportsSingularJacobian) {
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] * x[0] + 1.0}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{0.0}}; };
    Vec x{1.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.message, "singular Jacobian");
}

TEST(Newton, MaxIterationsReported) {
    // No real root: x^2 + 1 = 0.
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] * x[0] + 1.0}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{2.0 * x[0]}}; };
    Vec x{1.0};
    NewtonOptions opt;
    opt.maxIter = 15;
    const NewtonResult r = newtonSolve(f, j, x, opt);
    EXPECT_FALSE(r.converged);
}

TEST(Newton, MaxStepClampRespected) {
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] - 100.0}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{1.0}}; };
    Vec x{0.0};
    NewtonOptions opt;
    opt.maxStep = 10.0;
    opt.maxIter = 30;
    const NewtonResult r = newtonSolve(f, j, x, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 100.0, 1e-8);
    EXPECT_GE(r.iterations, 10);  // clamped to <= 10 per step
}

TEST(Newton, AlreadyConvergedReturnsImmediately) {
    const ResidualFn f = [](const Vec& x) { return Vec{x[0]}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{1.0}}; };
    Vec x{0.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 1);
}

TEST(FdJacobian, MatchesAnalyticOnSmoothSystem) {
    const ResidualFn f = [](const Vec& v) {
        return Vec{std::sin(v[0]) + v[1] * v[1], v[0] * v[1]};
    };
    const Vec x{0.3, -0.7};
    const Matrix j = fdJacobian(f, x);
    EXPECT_NEAR(j(0, 0), std::cos(0.3), 1e-7);
    EXPECT_NEAR(j(0, 1), -1.4, 1e-7);
    EXPECT_NEAR(j(1, 0), -0.7, 1e-7);
    EXPECT_NEAR(j(1, 1), 0.3, 1e-7);
}

TEST(FdJacobian, HandlesRectangularOutput) {
    const ResidualFn f = [](const Vec& v) { return Vec{v[0], 2.0 * v[0], 3.0 * v[0]}; };
    const Matrix j = fdJacobian(f, Vec{1.0});
    ASSERT_EQ(j.rows(), 3u);
    ASSERT_EQ(j.cols(), 1u);
    EXPECT_NEAR(j(2, 0), 3.0, 1e-8);
}

}  // namespace
}  // namespace phlogon::num
