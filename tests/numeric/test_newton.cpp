#include "numeric/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace phlogon::num {
namespace {

TEST(Newton, SolvesScalarQuadratic) {
    // x^2 - 4 = 0, starting near the positive root.
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] * x[0] - 4.0}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{2.0 * x[0]}}; };
    Vec x{3.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 2.0, 1e-8);
    EXPECT_LT(r.iterations, 12);
}

TEST(Newton, Solves2dNonlinearSystem) {
    // x^2 + y^2 = 1, y = x  ->  x = y = 1/sqrt(2).
    const ResidualFn f = [](const Vec& v) {
        return Vec{v[0] * v[0] + v[1] * v[1] - 1.0, v[1] - v[0]};
    };
    const JacobianFn j = [](const Vec& v) {
        return Matrix{{2.0 * v[0], 2.0 * v[1]}, {-1.0, 1.0}};
    };
    Vec x{1.0, 0.5};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(x[1], 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(Newton, QuadraticConvergenceIsFast) {
    const ResidualFn f = [](const Vec& x) { return Vec{std::exp(x[0]) - 2.0}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{std::exp(x[0])}}; };
    Vec x{0.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], std::log(2.0), 1e-10);
    EXPECT_LE(r.iterations, 8);
}

TEST(Newton, DampingRescuesOvershoot) {
    // atan has a famously divergent undamped Newton from |x0| > ~1.39.
    const ResidualFn f = [](const Vec& x) { return Vec{std::atan(x[0])}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{1.0 / (1.0 + x[0] * x[0])}}; };
    Vec x{3.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 0.0, 1e-8);
}

TEST(Newton, ReportsSingularJacobian) {
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] * x[0] + 1.0}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{0.0}}; };
    Vec x{1.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.message, "singular Jacobian");
}

TEST(Newton, MaxIterationsReported) {
    // No real root: x^2 + 1 = 0.
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] * x[0] + 1.0}; };
    const JacobianFn j = [](const Vec& x) { return Matrix{{2.0 * x[0]}}; };
    Vec x{1.0};
    NewtonOptions opt;
    opt.maxIter = 15;
    const NewtonResult r = newtonSolve(f, j, x, opt);
    EXPECT_FALSE(r.converged);
}

TEST(Newton, MaxStepClampRespected) {
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] - 100.0}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{1.0}}; };
    Vec x{0.0};
    NewtonOptions opt;
    opt.maxStep = 10.0;
    opt.maxIter = 30;
    const NewtonResult r = newtonSolve(f, j, x, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 100.0, 1e-8);
    EXPECT_GE(r.iterations, 10);  // clamped to <= 10 per step
}

TEST(Newton, AlreadyConvergedReturnsImmediately) {
    const ResidualFn f = [](const Vec& x) { return Vec{x[0]}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{1.0}}; };
    Vec x{0.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 1);
}

TEST(Newton, DampingExhaustedFallbackIsCountedAndReported) {
    // A constant nonzero residual can never shrink: every iteration burns
    // the whole damping budget, accepts the most-damped step anyway, and
    // must say so distinctly in the message and the counters.
    const ResidualFn f = [](const Vec&) { return Vec{1.0}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{1.0}}; };
    Vec x{0.0};
    NewtonOptions opt;
    opt.maxIter = 3;
    opt.maxDampings = 2;
    const NewtonResult r = newtonSolve(f, j, x, opt);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.counters.dampingEvents, 3u);  // one per iteration
    EXPECT_NE(r.message.find("damping exhausted"), std::string::npos) << r.message;
}

TEST(Newton, CleanFailureMessageHasNoDampingSuffix) {
    const ResidualFn f = [](const Vec& x) { return Vec{x[0] * x[0] + 1.0}; };
    const JacobianFn j = [](const Vec&) { return Matrix{{0.0}}; };
    Vec x{1.0};
    const NewtonResult r = newtonSolve(f, j, x);
    EXPECT_EQ(r.counters.dampingEvents, 0u);
    EXPECT_EQ(r.message, "singular Jacobian");
}

TEST(Newton, WorkspaceOverloadMatchesAllocatingOverload) {
    const auto resid = [](const Vec& v) {
        return Vec{v[0] * v[0] + v[1] * v[1] - 1.0, v[1] - v[0]};
    };
    const auto jacob = [](const Vec& v) {
        return Matrix{{2.0 * v[0], 2.0 * v[1]}, {-1.0, 1.0}};
    };
    Vec xa{1.0, 0.5};
    const NewtonResult ra = newtonSolve(ResidualFn(resid), JacobianFn(jacob), xa);

    const ResidualInPlaceFn fi = [&resid](const Vec& v, Vec& out) { out = resid(v); };
    const JacobianInPlaceFn ji = [&jacob](const Vec& v, Matrix& out) { out = jacob(v); };
    NewtonWorkspace ws;
    Vec xw{1.0, 0.5};
    const NewtonResult rw = newtonSolve(fi, ji, xw, ws);

    EXPECT_TRUE(ra.converged && rw.converged);
    EXPECT_EQ(ra.iterations, rw.iterations);
    EXPECT_DOUBLE_EQ(xa[0], xw[0]);
    EXPECT_DOUBLE_EQ(xa[1], xw[1]);
}

TEST(Newton, ChordReusesFactorizationAcrossSolves) {
    // Linear system: the first solve factorizes once; a second solve through
    // the same workspace in chord mode reuses the LU and evaluates no
    // Jacobian at all.
    int jacCalls = 0;
    const ResidualInPlaceFn f = [](const Vec& v, Vec& out) {
        out.resize(2);
        out[0] = 2.0 * v[0] + v[1] - 3.0;
        out[1] = v[0] + 3.0 * v[1] - 5.0;
    };
    const JacobianInPlaceFn j = [&jacCalls](const Vec&, Matrix& out) {
        ++jacCalls;
        out = Matrix{{2.0, 1.0}, {1.0, 3.0}};
    };
    NewtonOptions opt;
    opt.jacobianReuse = true;
    NewtonWorkspace ws;
    Vec x{0.0, 0.0};
    const NewtonResult r1 = newtonSolve(f, j, x, ws, opt);
    ASSERT_TRUE(r1.converged);
    EXPECT_EQ(jacCalls, 1);
    EXPECT_TRUE(ws.hasFactorization());

    Vec y{10.0, -7.0};
    const NewtonResult r2 = newtonSolve(f, j, y, ws, opt);
    ASSERT_TRUE(r2.converged);
    EXPECT_EQ(jacCalls, 1);  // carried across solves
    EXPECT_EQ(r2.counters.luFactorizations, 0u);
    EXPECT_NEAR(y[0], 0.8, 1e-9);
    EXPECT_NEAR(y[1], 1.4, 1e-9);
}

TEST(Newton, ChordConvergesOnNonlinearProblem) {
    // x^2 = 4: the chord iteration with the x0-Jacobian contracts linearly;
    // the engine must refresh when contraction degrades and still land on
    // the root.
    const ResidualInPlaceFn f = [](const Vec& v, Vec& out) {
        out.resize(1);
        out[0] = v[0] * v[0] - 4.0;
    };
    const JacobianInPlaceFn j = [](const Vec& v, Matrix& out) {
        out.resize(1, 1);
        out(0, 0) = 2.0 * v[0];
    };
    NewtonOptions opt;
    opt.jacobianReuse = true;
    NewtonWorkspace ws;
    Vec x{3.0};
    const NewtonResult r = newtonSolve(f, j, x, ws, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 2.0, 1e-8);
    // Fewer factorizations than iterations is the whole point.
    EXPECT_LT(r.counters.luFactorizations, static_cast<std::size_t>(r.iterations));
}

TEST(Newton, InvalidateJacobianForcesRefresh) {
    int jacCalls = 0;
    const ResidualInPlaceFn f = [](const Vec& v, Vec& out) {
        out.resize(1);
        out[0] = v[0] - 1.0;
    };
    const JacobianInPlaceFn j = [&jacCalls](const Vec&, Matrix& out) {
        ++jacCalls;
        out.resize(1, 1);
        out(0, 0) = 1.0;
    };
    NewtonOptions opt;
    opt.jacobianReuse = true;
    NewtonWorkspace ws;
    Vec x{5.0};
    newtonSolve(f, j, x, ws, opt);
    EXPECT_EQ(jacCalls, 1);
    ws.invalidateJacobian();
    EXPECT_FALSE(ws.hasFactorization());
    Vec y{5.0};
    newtonSolve(f, j, y, ws, opt);
    EXPECT_EQ(jacCalls, 2);
}

TEST(FdJacobian, MatchesAnalyticOnSmoothSystem) {
    const ResidualFn f = [](const Vec& v) {
        return Vec{std::sin(v[0]) + v[1] * v[1], v[0] * v[1]};
    };
    const Vec x{0.3, -0.7};
    const Matrix j = fdJacobian(f, x);
    EXPECT_NEAR(j(0, 0), std::cos(0.3), 1e-7);
    EXPECT_NEAR(j(0, 1), -1.4, 1e-7);
    EXPECT_NEAR(j(1, 0), -0.7, 1e-7);
    EXPECT_NEAR(j(1, 1), 0.3, 1e-7);
}

TEST(FdJacobian, HandlesRectangularOutput) {
    const ResidualFn f = [](const Vec& v) { return Vec{v[0], 2.0 * v[0], 3.0 * v[0]}; };
    const Matrix j = fdJacobian(f, Vec{1.0});
    ASSERT_EQ(j.rows(), 3u);
    ASSERT_EQ(j.cols(), 1u);
    EXPECT_NEAR(j(2, 0), 3.0, 1e-8);
}

}  // namespace
}  // namespace phlogon::num
