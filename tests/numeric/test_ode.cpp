#include "numeric/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace phlogon::num {
namespace {

TEST(Rkf45, ExponentialDecay) {
    const OdeRhs f = [](double, const Vec& y) { return Vec{-y[0]}; };
    const OdeSolution s = rkf45(f, Vec{1.0}, 0.0, 5.0);
    ASSERT_TRUE(s.ok);
    EXPECT_NEAR(s.y.back()[0], std::exp(-5.0), 1e-6);
}

TEST(Rkf45, HarmonicOscillatorConservesAmplitude) {
    const OdeRhs f = [](double, const Vec& y) { return Vec{y[1], -y[0]}; };
    OdeOptions opt;
    opt.relTol = 1e-9;
    const OdeSolution s = rkf45(f, Vec{1.0, 0.0}, 0.0, 4.0 * std::numbers::pi, opt);
    ASSERT_TRUE(s.ok);
    // After two full periods: back to (1, 0).
    EXPECT_NEAR(s.y.back()[0], 1.0, 1e-6);
    EXPECT_NEAR(s.y.back()[1], 0.0, 1e-6);
}

TEST(Rkf45, AdaptsStepsToTolerance) {
    const OdeRhs f = [](double t, const Vec& y) { return Vec{std::cos(10.0 * t) * y[0]}; };
    OdeOptions loose, tight;
    loose.relTol = 1e-3;
    tight.relTol = 1e-10;
    const OdeSolution sl = rkf45(f, Vec{1.0}, 0.0, 2.0, loose);
    const OdeSolution st = rkf45(f, Vec{1.0}, 0.0, 2.0, tight);
    ASSERT_TRUE(sl.ok && st.ok);
    EXPECT_LT(sl.t.size(), st.t.size());
    const double exact = std::exp(std::sin(20.0) / 10.0);
    EXPECT_NEAR(st.y.back()[0], exact, 1e-8);
}

TEST(Rkf45, MaxStepRespected) {
    const OdeRhs f = [](double, const Vec&) { return Vec{1.0}; };
    OdeOptions opt;
    opt.maxStep = 0.01;
    const OdeSolution s = rkf45(f, Vec{0.0}, 0.0, 1.0, opt);
    ASSERT_TRUE(s.ok);
    for (std::size_t i = 1; i < s.t.size(); ++i) EXPECT_LE(s.t[i] - s.t[i - 1], 0.01 + 1e-12);
}

TEST(Rkf45, ZeroSpanOk) {
    const OdeRhs f = [](double, const Vec& y) { return Vec{-y[0]}; };
    const OdeSolution s = rkf45(f, Vec{2.0}, 1.0, 1.0);
    EXPECT_TRUE(s.ok);
    EXPECT_EQ(s.t.size(), 1u);
}

TEST(Rkf45, StiffRejectionsCounted) {
    // Moderately fast decay forces some step rejections at loose initial step.
    const OdeRhs f = [](double, const Vec& y) { return Vec{-200.0 * y[0]}; };
    OdeOptions opt;
    opt.initialStep = 0.1;
    const OdeSolution s = rkf45(f, Vec{1.0}, 0.0, 0.5, opt);
    ASSERT_TRUE(s.ok);
    EXPECT_GT(s.rejectedSteps, 0u);
    EXPECT_NEAR(s.y.back()[0], 0.0, 1e-6);
}

TEST(Rkf45Scalar, MatchesVectorVersion) {
    const OdeSolution1 s =
        rkf45Scalar([](double, double y) { return -2.0 * y; }, 3.0, 0.0, 1.0);
    ASSERT_TRUE(s.ok);
    EXPECT_NEAR(s.y.back(), 3.0 * std::exp(-2.0), 1e-6);
    EXPECT_EQ(s.t.size(), s.y.size());
}

TEST(Rk4, FixedStepConvergesFourthOrder) {
    const OdeRhs f = [](double, const Vec& y) { return Vec{-y[0]}; };
    const double exact = std::exp(-1.0);
    const OdeSolution s1 = rk4(f, Vec{1.0}, 0.0, 1.0, 10);
    const OdeSolution s2 = rk4(f, Vec{1.0}, 0.0, 1.0, 20);
    const double e1 = std::abs(s1.y.back()[0] - exact);
    const double e2 = std::abs(s2.y.back()[0] - exact);
    EXPECT_GT(e1 / e2, 12.0);  // ~16x for 4th order
}

TEST(Rk4, UniformGridProduced) {
    const OdeRhs f = [](double, const Vec&) { return Vec{0.0}; };
    const OdeSolution s = rk4(f, Vec{1.0}, 0.0, 1.0, 4);
    ASSERT_EQ(s.t.size(), 5u);
    EXPECT_DOUBLE_EQ(s.t[1], 0.25);
    EXPECT_DOUBLE_EQ(s.t[4], 1.0);
}

TEST(Rk4, TimeDependentRhs) {
    // y' = t  ->  y(1) = 0.5.
    const OdeRhs f = [](double t, const Vec&) { return Vec{t}; };
    const OdeSolution s = rk4(f, Vec{0.0}, 0.0, 1.0, 50);
    EXPECT_NEAR(s.y.back()[0], 0.5, 1e-12);
}

}  // namespace
}  // namespace phlogon::num
