#include "numeric/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace phlogon::num {
namespace {

TEST(ResolveThreadCount, ExplicitRequestWins) {
    EXPECT_EQ(resolveThreadCount(1), 1u);
    EXPECT_EQ(resolveThreadCount(7), 7u);
}

TEST(ResolveThreadCount, ZeroUsesEnvironment) {
    ::setenv("PHLOGON_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    EXPECT_EQ(resolveThreadCount(0), 3u);
    ::setenv("PHLOGON_THREADS", "not-a-number", 1);
    EXPECT_GE(defaultThreadCount(), 1u);  // falls back to hardware_concurrency
    ::unsetenv("PHLOGON_THREADS");
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ParseThreadsValue, UnsetOrEmptyIsSilentFallback) {
    EXPECT_EQ(parseThreadsValue(nullptr).threads, 0u);
    EXPECT_TRUE(parseThreadsValue(nullptr).error.empty());
    EXPECT_EQ(parseThreadsValue("").threads, 0u);
    EXPECT_TRUE(parseThreadsValue("").error.empty());
    EXPECT_TRUE(parseThreadsValue("   ").error.empty());
}

TEST(ParseThreadsValue, AcceptsPositiveIntegers) {
    EXPECT_EQ(parseThreadsValue("1").threads, 1u);
    EXPECT_EQ(parseThreadsValue("16").threads, 16u);
    EXPECT_EQ(parseThreadsValue(" 8 ").threads, 8u);  // surrounding whitespace ok
    EXPECT_TRUE(parseThreadsValue("16").error.empty());
}

TEST(ParseThreadsValue, RejectsGarbageWithError) {
    EXPECT_EQ(parseThreadsValue("banana").threads, 0u);
    EXPECT_FALSE(parseThreadsValue("banana").error.empty());
    EXPECT_EQ(parseThreadsValue("4cores").threads, 0u);
    EXPECT_FALSE(parseThreadsValue("4cores").error.empty());
    EXPECT_EQ(parseThreadsValue("3.5").threads, 0u);
    EXPECT_FALSE(parseThreadsValue("3.5").error.empty());
}

TEST(ParseThreadsValue, RejectsNegativeZeroAndOverflow) {
    EXPECT_EQ(parseThreadsValue("-2").threads, 0u);
    EXPECT_FALSE(parseThreadsValue("-2").error.empty());
    EXPECT_EQ(parseThreadsValue("0").threads, 0u);
    EXPECT_FALSE(parseThreadsValue("0").error.empty());
    EXPECT_EQ(parseThreadsValue("99999999999999999999").threads, 0u);
    EXPECT_FALSE(parseThreadsValue("99999999999999999999").error.empty());
}

TEST(ParseThreadsValue, MalformedEnvFallsBackToHardware) {
    ::setenv("PHLOGON_THREADS", "definitely-not-a-count", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    ::setenv("PHLOGON_THREADS", "-4", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    ::unsetenv("PHLOGON_THREADS");
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        const std::size_t n = 257;  // deliberately not a multiple of anything
        std::vector<std::atomic<int>> hits(n);
        parallelFor(
            n, [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
}

TEST(ParallelFor, SlotPerIndexResultsMatchSerial) {
    const std::size_t n = 100;
    std::vector<double> serial(n), parallel4(n);
    const auto body = [](std::size_t i) {
        double acc = 0.0;
        for (std::size_t k = 0; k <= i; ++k) acc += 1.0 / static_cast<double>(k + 1);
        return acc;
    };
    parallelFor(
        n, [&](std::size_t i) { serial[i] = body(i); }, 1);
    parallelFor(
        n, [&](std::size_t i) { parallel4[i] = body(i); }, 4);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], parallel4[i]);
}

TEST(ParallelFor, EmptyAndSingleton) {
    int calls = 0;
    parallelFor(
        0, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    parallelFor(
        1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesLowestIndexException) {
    // Indices 10 and 40 both throw; the serial-equivalent (lowest-index)
    // exception must surface regardless of thread count.
    for (unsigned threads : {1u, 4u}) {
        try {
            parallelFor(
                64,
                [](std::size_t i) {
                    if (i == 40) throw std::runtime_error("idx 40");
                    if (i == 10) throw std::runtime_error("idx 10");
                },
                threads);
            FAIL() << "expected an exception at " << threads << " threads";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "idx 10");
        }
    }
}

TEST(ParallelFor, PoolUsableAfterException) {
    EXPECT_THROW(parallelFor(
                     8, [](std::size_t) { throw std::logic_error("boom"); }, 4),
                 std::logic_error);
    std::vector<int> out(16, 0);
    parallelFor(
        16, [&](std::size_t i) { out[i] = static_cast<int>(i); }, 4);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 120);
}

TEST(ParallelFor, NestedCallsRunSeriallyAndComplete) {
    const std::size_t outer = 8, inner = 8;
    std::vector<std::vector<int>> hits(outer, std::vector<int>(inner, 0));
    parallelFor(
        outer,
        [&](std::size_t i) {
            EXPECT_TRUE(ThreadPool::insideWorker());
            // Inner call must neither deadlock nor hand work to other
            // workers (the inner loop writes plain ints — safe only if it
            // stays on this thread).
            parallelFor(
                inner, [&](std::size_t j) { hits[i][j] += 1; }, 4);
        },
        4);
    for (const auto& row : hits)
        for (int h : row) EXPECT_EQ(h, 1);
    EXPECT_FALSE(ThreadPool::insideWorker());
}

TEST(ParallelMap, OrderMatchesInput) {
    std::vector<int> items(50);
    std::iota(items.begin(), items.end(), 0);
    const auto sq = [](const int& v) { return v * v; };
    const auto serial = parallelMap(items, sq, 1);
    const auto par = parallelMap(items, sq, 4);
    ASSERT_EQ(serial.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(serial[i], items[i] * items[i]);
        EXPECT_EQ(par[i], serial[i]);
    }
}

TEST(ParallelMap, NonTrivialResultType) {
    const std::vector<int> items{3, 1, 2};
    const auto out = parallelMap(
        items, [](const int& v) { return std::string(static_cast<std::size_t>(v), 'x'); }, 4);
    EXPECT_EQ(out[0], "xxx");
    EXPECT_EQ(out[1], "x");
    EXPECT_EQ(out[2], "xx");
}

TEST(ThreadPool, DedicatedPoolRunsJobs) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    std::vector<int> out(32, 0);
    pool.run(32, [&](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 32);
    // Oversubscription: a request above the construction size is honoured.
    pool.run(
        32, [&](std::size_t i) { out[i] += 1; }, 6);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
    // Stresses job installation/completion handshakes on the persistent pool.
    std::atomic<long> total{0};
    for (int rep = 0; rep < 200; ++rep)
        parallelFor(
            5, [&](std::size_t i) { total.fetch_add(static_cast<long>(i)); }, 4);
    EXPECT_EQ(total.load(), 200 * (0 + 1 + 2 + 3 + 4));
}

TEST(PoolStats, CountsJobsTasksAndSerialRuns) {
    ThreadPool pool(4);
    pool.resetStats();
    std::vector<int> out(33, 0);
    pool.run(33, [&](std::size_t i) { out[i] = 1; });
    pool.run(
        7, [&](std::size_t i) { out[i] += 1; }, 1);  // exact serial path
    const PoolStats s = pool.stats();
    EXPECT_EQ(s.jobs, 1u);
    EXPECT_EQ(s.serialRuns, 1u);
    EXPECT_EQ(s.tasks, 33u);  // the serial loop never enters the pool
    EXPECT_EQ(s.maxQueueDepth, 33u);
    EXPECT_LE(s.workersSpawned, 3u);  // caller participates as the 4th
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 33 + 7);
}

TEST(PoolStats, ResetKeepsWorkersSpawned) {
    ThreadPool pool(2);
    pool.run(8, [](std::size_t) {});
    const std::uint64_t spawned = pool.stats().workersSpawned;
    EXPECT_GE(spawned, 1u);
    pool.resetStats();
    const PoolStats s = pool.stats();
    EXPECT_EQ(s.jobs, 0u);
    EXPECT_EQ(s.tasks, 0u);
    EXPECT_EQ(s.queueWaitNs, 0u);
    EXPECT_EQ(s.maxQueueDepth, 0u);
    EXPECT_EQ(s.workersSpawned, spawned);  // mirrors live OS threads
}

// Statistics collection is observation-only: slot-per-index results with
// stats being gathered are bitwise identical to the serial loop, and every
// task is accounted for exactly once.
TEST(PoolStats, CollectionIsDeterminismSafe) {
    ThreadPool pool(4);
    const std::size_t n = 128;
    const auto body = [](std::size_t i) {
        double acc = 0.0;
        for (std::size_t k = 0; k <= i; ++k) acc += 1.0 / static_cast<double>(k + 1);
        return acc;
    };
    std::vector<double> serial(n), parallel(n);
    pool.run(
        n, [&](std::size_t i) { serial[i] = body(i); }, 1);
    pool.resetStats();
    for (int rep = 0; rep < 3; ++rep)
        pool.run(
            n, [&](std::size_t i) { parallel[i] = body(i); }, 4);
    const PoolStats s = pool.stats();
    EXPECT_EQ(s.jobs, 3u);
    EXPECT_EQ(s.tasks, 3 * n);  // exactly once per index per job
    EXPECT_EQ(s.maxQueueDepth, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], parallel[i]) << i;
}

}  // namespace
}  // namespace phlogon::num
