#include "numeric/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace phlogon::num {
namespace {

TEST(SplitMix64, MatchesReferenceVectors) {
    // Reference outputs of the canonical splitmix64 (Steele/Lea/Flood) for
    // state 0 — the same vectors xoshiro's seeding is validated against.
    SplitMix64 rng(0);
    EXPECT_EQ(rng(), 0xe220a8397b1dcdafull);
    EXPECT_EQ(rng(), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(rng(), 0x06c45d188009454full);
}

TEST(SplitMix64, DeterministicPerSeedAndDecorrelated) {
    SplitMix64 a(42), b(42), c(43);
    for (int i = 0; i < 16; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        EXPECT_NE(va, c());  // nearby seeds give unrelated streams
    }
}

TEST(SplitMix64, NextUnitInHalfOpenInterval) {
    SplitMix64 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextUnit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(ZigguratNormal, MomentsMatchStandardNormal) {
    SplitMix64 rng(2024);
    const auto& zig = ZigguratNormal::instance();
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
    int beyond1 = 0, beyond2 = 0, beyond3 = 0;
    for (int i = 0; i < n; ++i) {
        const double x = zig(rng);
        sum += x;
        sum2 += x * x;
        sum3 += x * x * x;
        sum4 += x * x * x * x;
        const double a = std::abs(x);
        beyond1 += a > 1.0;
        beyond2 += a > 2.0;
        beyond3 += a > 3.0;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.02);
    EXPECT_NEAR(sum3 / n, 0.0, 0.05);       // skewness ~ 0
    EXPECT_NEAR(sum4 / n, 3.0, 0.15);       // kurtosis of N(0,1) is 3
    // Tail fractions: P(|X|>1) ~ 0.3173, P(|X|>2) ~ 0.0455, P(|X|>3) ~ 0.0027.
    EXPECT_NEAR(beyond1 / static_cast<double>(n), 0.3173, 0.01);
    EXPECT_NEAR(beyond2 / static_cast<double>(n), 0.0455, 0.005);
    EXPECT_NEAR(beyond3 / static_cast<double>(n), 0.0027, 0.0015);
}

TEST(ZigguratNormal, TailSamplerProducesLargeDeviates) {
    // With enough draws the |x| > 3.65 region (past the base layer edge,
    // reached only through the Marsaglia tail sampler) must be visited.
    SplitMix64 rng(9);
    const auto& zig = ZigguratNormal::instance();
    double maxAbs = 0.0;
    for (int i = 0; i < 2000000; ++i) maxAbs = std::max(maxAbs, std::abs(zig(rng)));
    EXPECT_GT(maxAbs, 3.6541528853610088);
    EXPECT_LT(maxAbs, 7.0);  // and nothing absurd
}

TEST(ZigguratNormal, DeterministicPerStream) {
    const auto& zig = ZigguratNormal::instance();
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(zig(a), zig(b));
}

TEST(ZigguratNormal, TryDrawReplaysOperatorStream) {
    // operator() is exactly `while (!tryDraw(rng(), rng, &v)) {}` — drive
    // the loop by hand and require value- and stream-identity.
    const auto& zig = ZigguratNormal::instance();
    SplitMix64 a(555), b(555);
    for (int i = 0; i < 5000; ++i) {
        const double ref = zig(a);
        double v = 0.0;
        while (!zig.tryDraw(b(), b, &v)) {
        }
        EXPECT_EQ(ref, v) << "draw " << i;
    }
    EXPECT_EQ(a(), b());  // same stream position afterwards
}

// A 64-bit word that forces tryDraw into the i == 0, x >= r tail branch:
// layer bits (u & 0xff) zero, sign bit clear, and the 53-bit uniform at its
// maximum so x = u01 * x_[0] (x_[0] ~ 3.906) lands beyond r = 3.654.
constexpr std::uint64_t kForceTailU = 0xfffffffffffff800ull;

TEST(ZigguratNormal, ForcedTailBranchStatistics) {
    const auto& zig = ZigguratNormal::instance();
    const double r = ZigguratNormal::tailEdge();
    ASSERT_DOUBLE_EQ(r, 3.6541528853610088);

    SplitMix64 rng(77);
    const int n = 20000;
    double sumExcess = 0.0, maxVal = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = 0.0;
        ASSERT_TRUE(zig.tryDraw(kForceTailU, rng, &v));
        // Every forced-tail draw is a positive deviate strictly beyond r.
        ASSERT_GT(v, r);
        sumExcess += v - r;
        maxVal = std::max(maxVal, v);
    }
    // Marsaglia's sampler draws the exact conditional tail X | X > r; its
    // mean excess is phi(r)/Q(r) - r ~ 0.249 for r = 3.654.  A 20k-sample
    // mean (std error ~ 0.002) sits well within the gate.
    EXPECT_NEAR(sumExcess / n, 0.249, 0.012);
    EXPECT_GT(maxVal, r + 1.0);  // deep tail visited
    EXPECT_LT(maxVal, r + 5.0);  // nothing absurd
}

TEST(ZigguratNormal, ForcedTailMatchesMarsagliaOracle) {
    // Pin the tail branch's exact arithmetic against an independent
    // transcription of Marsaglia's sampler running on a cloned stream: any
    // reordering of the log/divide/compare sequence would break bitwise
    // equality here.
    const auto& zig = ZigguratNormal::instance();
    const double r = ZigguratNormal::tailEdge();
    SplitMix64 rng(31337), oracle(31337);
    for (int i = 0; i < 2000; ++i) {
        double v = 0.0;
        ASSERT_TRUE(zig.tryDraw(kForceTailU, rng, &v));
        double xt, yt;
        do {
            xt = -std::log(1.0 - oracle.nextUnit()) / r;
            yt = -std::log(1.0 - oracle.nextUnit());
        } while (yt + yt < xt * xt);
        EXPECT_EQ(v, r + xt) << "draw " << i;
    }
    EXPECT_EQ(rng(), oracle());
}

TEST(ZigguratNormal, ForcedTailNegativeSign) {
    // Same word with the sign bit (bit 8) set lands in the negative tail.
    const auto& zig = ZigguratNormal::instance();
    SplitMix64 rng(11);
    double v = 0.0;
    ASSERT_TRUE(zig.tryDraw(kForceTailU | 0x100ull, rng, &v));
    EXPECT_LT(v, -ZigguratNormal::tailEdge());
}

TEST(ZigguratNormal, LayerEdgesAccessor) {
    const auto& zig = ZigguratNormal::instance();
    const double* x = zig.layerEdges();
    EXPECT_EQ(x[1], ZigguratNormal::tailEdge());
    EXPECT_EQ(x[ZigguratNormal::kLayers], 0.0);
    for (int i = 0; i < ZigguratNormal::kLayers; ++i) EXPECT_GT(x[i], x[i + 1]);
}

}  // namespace
}  // namespace phlogon::num
