#include "numeric/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace phlogon::num {
namespace {

TEST(Bisection, FindsRootInBracket) {
    const auto r = bisection([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, std::sqrt(2.0), 1e-9);
}

TEST(Bisection, RejectsNonBracket) {
    EXPECT_FALSE(bisection([](double x) { return x * x + 1.0; }, -1.0, 1.0).has_value());
}

TEST(Bisection, ExactEndpointRoots) {
    const auto a = bisection([](double x) { return x; }, 0.0, 1.0);
    ASSERT_TRUE(a.has_value());
    EXPECT_DOUBLE_EQ(*a, 0.0);
}

TEST(Brent, FindsRootFasterThanBisection) {
    int evalsBrent = 0;
    const auto r = brent(
        [&](double x) {
            ++evalsBrent;
            return std::cos(x) - x;
        },
        0.0, 1.0, 1e-14);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, 0.7390851332151607, 1e-10);
    EXPECT_LT(evalsBrent, 20);
}

TEST(Brent, HandlesSteepFunctions) {
    const auto r = brent([](double x) { return std::expm1(50.0 * (x - 0.3)); }, 0.0, 1.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, 0.3, 1e-9);
}

TEST(Brent, RejectsNonBracket) {
    EXPECT_FALSE(brent([](double x) { return x * x + 0.5; }, -1.0, 1.0).has_value());
}

TEST(FindAllRoots, SineHasKnownRoots) {
    const auto roots = findAllRoots([](double x) { return std::sin(x); }, 0.1,
                                    4.0 * std::numbers::pi - 0.1, 720);
    ASSERT_EQ(roots.size(), 3u);
    EXPECT_NEAR(roots[0], std::numbers::pi, 1e-9);
    EXPECT_NEAR(roots[1], 2.0 * std::numbers::pi, 1e-9);
    EXPECT_NEAR(roots[2], 3.0 * std::numbers::pi, 1e-9);
}

TEST(FindAllRoots, NoRootsReturnsEmpty) {
    EXPECT_TRUE(findAllRoots([](double) { return 1.0; }, 0.0, 1.0).empty());
}

TEST(FindAllRoots, CountsEquilibriaOfShiftedSinusoid) {
    // sin(2 pi 2 x) - c has 4 roots in [0,1) for |c| < 1.
    for (double c : {-0.5, 0.0, 0.5}) {
        const auto roots = findAllRoots(
            [c](double x) { return std::sin(2.0 * std::numbers::pi * 2.0 * x) - c; }, 0.0, 1.0);
        EXPECT_EQ(roots.size(), 4u) << "c=" << c;
    }
    // |c| > 1: none.
    EXPECT_TRUE(findAllRoots(
                    [](double x) { return std::sin(2.0 * std::numbers::pi * 2.0 * x) - 1.5; },
                    0.0, 1.0)
                    .empty());
}

TEST(FindAllRoots, MergesPeriodicDuplicateAtBoundary) {
    // sin(2 pi x) has roots at 0, 0.5 (and 1.0 == 0 periodically).
    const auto roots =
        findAllRoots([](double x) { return std::sin(2.0 * std::numbers::pi * x); }, 0.0, 1.0);
    EXPECT_EQ(roots.size(), 2u);
}

TEST(FindAllRoots, ClusteredRootsSeparated) {
    // (x-0.5)^2 - eps^2: two roots 2*eps apart.
    const double eps = 1e-3;
    const auto roots = findAllRoots(
        [eps](double x) { return (x - 0.5) * (x - 0.5) - eps * eps; }, 0.0, 1.0, 4096);
    ASSERT_EQ(roots.size(), 2u);
    EXPECT_NEAR(roots[0], 0.5 - eps, 1e-8);
    EXPECT_NEAR(roots[1], 0.5 + eps, 1e-8);
}

TEST(FindAllRootsPeriodic, FindsRootsOfSinusoid) {
    const auto roots = findAllRootsPeriodic(
        [](double x) { return std::sin(2.0 * std::numbers::pi * x); }, 0.0, 1.0);
    ASSERT_EQ(roots.size(), 2u);
    EXPECT_NEAR(roots[0], 0.0, 1e-9);
    EXPECT_NEAR(roots[1], 0.5, 1e-9);
}

TEST(FindAllRootsPeriodic, SeamRootReportedExactlyOnce) {
    // Root inside the seam bracket [1-h, 1): the wrapped interval must catch
    // it without also reporting a duplicate near 0.
    const double r0 = 0.9997;
    const auto roots = findAllRootsPeriodic(
        [r0](double x) { return std::sin(2.0 * std::numbers::pi * (x - r0)); }, 0.0, 1.0, 100);
    ASSERT_EQ(roots.size(), 2u);
    EXPECT_NEAR(roots[0], r0 - 0.5, 1e-9);
    EXPECT_NEAR(roots[1], r0, 1e-9);
    for (const double r : roots) {
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(FindAllRootsPeriodic, RootExactlyAtSeamNotDuplicated) {
    // sin(2 pi x) is zero at the seam itself; exactly one representative
    // within 1e-6 of phase 0 may appear.
    const auto roots = findAllRootsPeriodic(
        [](double x) { return std::sin(2.0 * std::numbers::pi * x); }, 0.0, 1.0, 1440);
    std::size_t nearSeam = 0;
    for (const double r : roots)
        if (r < 1e-6 || r > 1.0 - 1e-6) ++nearSeam;
    EXPECT_EQ(nearSeam, 1u);
    EXPECT_EQ(roots.size(), 2u);
}

TEST(FindAllRootsPeriodic, ConstantSignHasNoRoots) {
    EXPECT_TRUE(findAllRootsPeriodic(
                    [](double x) { return std::sin(2.0 * std::numbers::pi * x) + 1.5; }, 0.0, 1.0)
                    .empty());
}

TEST(FindAllRootsPeriodic, NonUnitPeriod) {
    const double twoPi = 2.0 * std::numbers::pi;
    const auto roots = findAllRootsPeriodic([](double x) { return std::sin(x); }, 0.0, twoPi, 720);
    ASSERT_EQ(roots.size(), 2u);
    EXPECT_NEAR(roots[0], 0.0, 1e-9);
    EXPECT_NEAR(roots[1], std::numbers::pi, 1e-9);
}

TEST(FdDerivative, MatchesAnalytic) {
    EXPECT_NEAR(fdDerivative([](double x) { return x * x * x; }, 2.0), 12.0, 1e-6);
    EXPECT_NEAR(fdDerivative([](double x) { return std::sin(x); }, 0.0), 1.0, 1e-8);
}

}  // namespace
}  // namespace phlogon::num
