// SIMD kernel tier parity: every tier must produce bitwise-identical
// results to the Scalar tier (the lane contract in numeric/simd/simd.hpp).
// Comparisons use EXPECT_EQ on doubles — exact equality, not tolerance —
// so the CI parity gate (<= 1 ulp) is met with margin 0.

#include "numeric/simd/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "numeric/batch_ode.hpp"
#include "numeric/interp.hpp"
#include "numeric/rkf45_tableau.hpp"
#include "numeric/rng.hpp"

using namespace phlogon;
using num::simd::Kernels;
using num::simd::Tier;

namespace {

// Deterministic but irregular test doubles in [lo, hi).
std::vector<double> fill(std::size_t n, double lo, double hi, std::uint64_t seed) {
    num::SplitMix64 rng(seed);
    std::vector<double> v(n);
    for (double& x : v) x = lo + (hi - lo) * rng.nextUnit();
    return v;
}

std::vector<Tier> tiersToTest() {
    std::vector<Tier> out = {Tier::Scalar, Tier::Portable};
    if (num::simd::detectedTier() == Tier::Avx2) out.push_back(Tier::Avx2);
    return out;
}

// Lane counts straddling the 4-wide groups: empty, sub-group, exact
// multiples, and ragged tails.
const std::size_t kLaneCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64, 257};

}  // namespace

TEST(SimdDispatch, DetectedTierIsStable) {
    const Tier a = num::simd::detectedTier();
    const Tier b = num::simd::detectedTier();
    EXPECT_EQ(a, b);
    EXPECT_GE(static_cast<int>(a), static_cast<int>(Tier::Portable));
}

TEST(SimdDispatch, KernelsClampToDetectedTier) {
    const Kernels& k = num::simd::kernels(Tier::Avx2);
    EXPECT_LE(static_cast<int>(k.tier), static_cast<int>(num::simd::detectedTier()));
    EXPECT_EQ(num::simd::kernels(Tier::Scalar).tier, Tier::Scalar);
}

TEST(SimdDispatch, ResolveTierHonorsOptIn) {
    // The test binary runs without PHLOGON_SIMD set (CI sets it only in the
    // dedicated parity jobs); in Auto mode the flag decides.
    if (num::simd::envMode() != num::simd::EnvMode::Auto) GTEST_SKIP();
    EXPECT_EQ(num::simd::resolveTier(false), Tier::Scalar);
    EXPECT_EQ(num::simd::resolveTier(true), num::simd::detectedTier());
}

TEST(SimdDispatch, TierNames) {
    EXPECT_STREQ(num::simd::tierName(Tier::Scalar), "scalar");
    EXPECT_STREQ(num::simd::tierName(Tier::Portable), "portable");
    EXPECT_STREQ(num::simd::tierName(Tier::Avx2), "avx2");
}

TEST(SimdParity, SplineAffineAllTiers) {
    // A real spline (so the coefficients are representative), probed with
    // phases spanning many wraps plus the seam-adjacent corners.
    for (std::size_t nSeg : {3ul, 8ul, 64ul, 1024ul}) {
        num::Vec samples(nSeg);
        for (std::size_t i = 0; i < nSeg; ++i)
            samples[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / static_cast<double>(nSeg)) +
                         0.25 * std::cos(6.0 * M_PI * static_cast<double>(i) / static_cast<double>(nSeg));
        const num::PeriodicCubicSpline spline(samples);
        const num::PackedPeriodicSpline packed(spline);

        for (std::size_t n : kLaneCounts) {
            std::vector<double> t = fill(n, -3.0, 3.0, 0x5eed0 + n);
            // Plant seam-adjacent and exact-knot values in the batch.
            for (std::size_t i = 0; i < n; ++i) {
                if (i % 7 == 0) t[i] = std::nextafter(static_cast<double>(i), -1.0);
                if (i % 11 == 0) t[i] = static_cast<double>(i / 11);  // integers: wrap to 0
            }
            std::vector<double> ref(n, -1.0);
            packed.evalManyAffine(t.data(), ref.data(), n, 1.7, -0.3, Tier::Scalar);
            for (Tier tier : tiersToTest()) {
                std::vector<double> out(n, 99.0);
                packed.evalManyAffine(t.data(), out.data(), n, 1.7, -0.3, tier);
                for (std::size_t i = 0; i < n; ++i)
                    EXPECT_EQ(ref[i], out[i])
                        << "tier=" << num::simd::tierName(tier) << " nSeg=" << nSeg
                        << " lane=" << i << " t=" << t[i];
                // Plain evalMany on every tier agrees with operator() too.
                std::vector<double> plain(n);
                packed.evalMany(t.data(), plain.data(), n, tier);
                for (std::size_t i = 0; i < n; ++i)
                    EXPECT_EQ(packed(t[i]), plain[i])
                        << "tier=" << num::simd::tierName(tier) << " t=" << t[i];
            }
        }
    }
}

TEST(SimdParity, RkStageAllTiers) {
    using namespace num::cashkarp;
    static constexpr double kB6[] = {B61, B62, B63, B64, B65};
    for (std::size_t lanes : kLaneCounts) {
        const std::vector<double> y = fill(lanes, -2.0, 2.0, 11);
        const std::vector<double> h = fill(lanes, 1e-6, 1e-2, 12);
        const std::vector<double> t = fill(lanes, 0.0, 5.0, 13);
        const std::vector<double> k1 = fill(lanes, -4.0, 4.0, 14);
        const std::vector<double> k2 = fill(lanes, -4.0, 4.0, 15);
        const std::vector<double> k3 = fill(lanes, -4.0, 4.0, 16);
        const std::vector<double> k4 = fill(lanes, -4.0, 4.0, 17);
        const std::vector<double> k5 = fill(lanes, -4.0, 4.0, 18);
        const double* ks[5] = {k1.data(), k2.data(), k3.data(), k4.data(), k5.data()};
        // Mixed active mask (and lanes > 8 exercises full vector groups with
        // the mask all-set and all-clear).
        std::vector<unsigned char> active(lanes, 1);
        for (std::size_t l = 0; l < lanes; ++l)
            if (l % 5 == 3 || (l >= 8 && l < 12)) active[l] = 0;

        for (const unsigned char* mask : {static_cast<const unsigned char*>(nullptr),
                                          static_cast<const unsigned char*>(active.data())}) {
            std::vector<double> ytRef(lanes, 7.0), tsRef(lanes, 7.0);
            num::simd::kernels(Tier::Scalar)
                .rkStage(y.data(), h.data(), t.data(), ks, kB6, 5, A6, ytRef.data(),
                         tsRef.data(), mask, lanes);
            for (Tier tier : tiersToTest()) {
                std::vector<double> yt(lanes, 7.0), ts(lanes, 7.0);
                num::simd::kernels(tier).rkStage(y.data(), h.data(), t.data(), ks, kB6, 5,
                                                 A6, yt.data(), ts.data(), mask, lanes);
                for (std::size_t l = 0; l < lanes; ++l) {
                    EXPECT_EQ(ytRef[l], yt[l]) << "tier=" << num::simd::tierName(tier)
                                               << " lanes=" << lanes << " l=" << l;
                    EXPECT_EQ(tsRef[l], ts[l]) << "tier=" << num::simd::tierName(tier)
                                               << " lanes=" << lanes << " l=" << l;
                }
            }
        }
    }
}

TEST(SimdParity, Rkf45EmbeddedAllTiers) {
    for (std::size_t lanes : kLaneCounts) {
        const std::vector<double> y = fill(lanes, -2.0, 2.0, 21);
        const std::vector<double> h = fill(lanes, 1e-6, 1e-2, 22);
        const std::vector<double> k1 = fill(lanes, -4.0, 4.0, 23);
        const std::vector<double> k3 = fill(lanes, -4.0, 4.0, 24);
        const std::vector<double> k4 = fill(lanes, -4.0, 4.0, 25);
        const std::vector<double> k5 = fill(lanes, -4.0, 4.0, 26);
        const std::vector<double> k6 = fill(lanes, -4.0, 4.0, 27);
        std::vector<unsigned char> active(lanes, 1);
        for (std::size_t l = 0; l < lanes; ++l)
            if (l % 3 == 1) active[l] = 0;

        for (const unsigned char* mask : {static_cast<const unsigned char*>(nullptr),
                                          static_cast<const unsigned char*>(active.data())}) {
            std::vector<double> y5Ref(lanes, 7.0), errRef(lanes, 7.0);
            num::simd::kernels(Tier::Scalar)
                .rkf45Embedded(y.data(), h.data(), k1.data(), k3.data(), k4.data(),
                               k5.data(), k6.data(), 1e-9, 1e-7, y5Ref.data(),
                               errRef.data(), mask, lanes);
            for (Tier tier : tiersToTest()) {
                std::vector<double> y5(lanes, 7.0), err(lanes, 7.0);
                num::simd::kernels(tier).rkf45Embedded(
                    y.data(), h.data(), k1.data(), k3.data(), k4.data(), k5.data(),
                    k6.data(), 1e-9, 1e-7, y5.data(), err.data(), mask, lanes);
                for (std::size_t l = 0; l < lanes; ++l) {
                    EXPECT_EQ(y5Ref[l], y5[l]) << "tier=" << num::simd::tierName(tier)
                                               << " lanes=" << lanes << " l=" << l;
                    EXPECT_EQ(errRef[l], err[l]) << "tier=" << num::simd::tierName(tier)
                                                 << " lanes=" << lanes << " l=" << l;
                }
            }
        }
    }
}

TEST(SimdParity, AxpyAndRk4CombineAllTiers) {
    for (std::size_t lanes : kLaneCounts) {
        const std::vector<double> y = fill(lanes, -2.0, 2.0, 31);
        const std::vector<double> k1 = fill(lanes, -4.0, 4.0, 32);
        const std::vector<double> k2 = fill(lanes, -4.0, 4.0, 33);
        const std::vector<double> k3 = fill(lanes, -4.0, 4.0, 34);
        const std::vector<double> k4 = fill(lanes, -4.0, 4.0, 35);
        const double h = 3.7e-4;

        std::vector<double> ytRef(lanes);
        num::simd::kernels(Tier::Scalar).axpyLanes(y.data(), k1.data(), 0.5 * h, ytRef.data(), lanes);
        std::vector<double> yRef = y;
        num::simd::kernels(Tier::Scalar)
            .rk4Combine(yRef.data(), k1.data(), k2.data(), k3.data(), k4.data(), h, lanes);

        for (Tier tier : tiersToTest()) {
            std::vector<double> yt(lanes);
            num::simd::kernels(tier).axpyLanes(y.data(), k1.data(), 0.5 * h, yt.data(), lanes);
            std::vector<double> yv = y;
            num::simd::kernels(tier).rk4Combine(yv.data(), k1.data(), k2.data(), k3.data(),
                                                k4.data(), h, lanes);
            for (std::size_t l = 0; l < lanes; ++l) {
                EXPECT_EQ(ytRef[l], yt[l]) << num::simd::tierName(tier) << " l=" << l;
                EXPECT_EQ(yRef[l], yv[l]) << num::simd::tierName(tier) << " l=" << l;
            }
        }
    }
}

TEST(SimdParity, NormalFillMatchesScalarStreams) {
    const auto& zig = num::ZigguratNormal::instance();
    // Enough draws that every lane hits wedge rejections and (statistically)
    // some base-strip edge cases; stream equality after the fill proves the
    // fast path consumed exactly the same variates.
    const std::size_t rounds = 2000;
    for (std::size_t lanes : {1ul, 3ul, 4ul, 5ul, 8ul, 13ul}) {
        for (Tier tier : tiersToTest()) {
            std::vector<num::SplitMix64> a, b;
            for (std::size_t l = 0; l < lanes; ++l) {
                a.emplace_back(1000 + l);
                b.emplace_back(1000 + l);
            }
            std::vector<double> outA(lanes), outB(lanes);
            for (std::size_t r = 0; r < rounds; ++r) {
                num::simd::kernels(Tier::Scalar).normalFill(zig, a.data(), outA.data(), lanes);
                num::simd::kernels(tier).normalFill(zig, b.data(), outB.data(), lanes);
                for (std::size_t l = 0; l < lanes; ++l)
                    EXPECT_EQ(outA[l], outB[l]) << num::simd::tierName(tier) << " round=" << r
                                                << " lane=" << l;
            }
            // Post-fill stream positions must agree too.
            for (std::size_t l = 0; l < lanes; ++l) EXPECT_EQ(a[l](), b[l]());
        }
    }
}

TEST(SimdParity, McUpdateAllTiers) {
    for (std::size_t lanes : kLaneCounts) {
        const std::vector<double> phi0 = fill(lanes, -0.5, 0.5, 41);
        const std::vector<double> drift = fill(lanes, -3.0, 3.0, 42);
        const std::vector<double> z = fill(lanes, -4.0, 4.0, 43);
        std::vector<double> ref = phi0;
        num::simd::kernels(Tier::Scalar)
            .mcUpdate(ref.data(), drift.data(), 2.5e-4, 1.3e-3, z.data(), lanes);
        for (Tier tier : tiersToTest()) {
            std::vector<double> phi = phi0;
            num::simd::kernels(tier).mcUpdate(phi.data(), drift.data(), 2.5e-4, 1.3e-3,
                                              z.data(), lanes);
            for (std::size_t l = 0; l < lanes; ++l)
                EXPECT_EQ(ref[l], phi[l]) << num::simd::tierName(tier) << " l=" << l;
        }
    }
}

namespace {

// Stiff-ish nonlinear scalar RHS giving the step controller real
// accept/reject work, batched over lanes.
num::BatchRhs1 pendulumRhs() {
    return [](const double* t, const double* y, double* dydt, const unsigned char* active,
              std::size_t lanes) {
        for (std::size_t l = 0; l < lanes; ++l) {
            if (active && !active[l]) continue;
            dydt[l] = -2.5 * std::sin(y[l]) + 0.3 * std::cos(3.0 * t[l]);
        }
    };
}

}  // namespace

TEST(SimdBatchOde, Rkf45SimdOnEqualsOff) {
    if (num::simd::envMode() != num::simd::EnvMode::Auto) GTEST_SKIP();
    for (std::size_t lanes : {1ul, 5ul, 32ul, 63ul}) {
        num::Vec y0(lanes);
        for (std::size_t l = 0; l < lanes; ++l)
            y0[l] = -1.5 + 3.0 * static_cast<double>(l) / static_cast<double>(lanes);
        num::OdeOptions opt;
        opt.absTol = 1e-10;
        opt.relTol = 1e-8;
        num::BatchOde off(lanes, num::BatchOptions{false});
        num::BatchOde on(lanes, num::BatchOptions{true});
        const num::BatchOdeSolution a = off.rkf45(pendulumRhs(), y0, 0.0, 2.0, opt);
        const num::BatchOdeSolution b = on.rkf45(pendulumRhs(), y0, 0.0, 2.0, opt);
        ASSERT_EQ(a.lanes.size(), b.lanes.size());
        EXPECT_EQ(a.ok, b.ok);
        for (std::size_t l = 0; l < lanes; ++l) {
            ASSERT_EQ(a.lanes[l].t.size(), b.lanes[l].t.size()) << "lane " << l;
            for (std::size_t i = 0; i < a.lanes[l].t.size(); ++i) {
                EXPECT_EQ(a.lanes[l].t[i], b.lanes[l].t[i]) << "lane " << l << " i=" << i;
                EXPECT_EQ(a.lanes[l].y[i], b.lanes[l].y[i]) << "lane " << l << " i=" << i;
            }
        }
    }
}

TEST(SimdBatchOde, Rk4LockstepSimdOnEqualsOff) {
    if (num::simd::envMode() != num::simd::EnvMode::Auto) GTEST_SKIP();
    const num::BatchRhsCoupled rhs = [](double t, const double* y, double* dydt,
                                        std::size_t lanes) {
        // Coupled: ring diffusion plus a forcing term.
        for (std::size_t l = 0; l < lanes; ++l) {
            const double left = y[(l + lanes - 1) % lanes];
            const double right = y[(l + 1) % lanes];
            dydt[l] = 0.5 * (left + right - 2.0 * y[l]) + 0.1 * std::sin(t + static_cast<double>(l));
        }
    };
    for (std::size_t lanes : {1ul, 6ul, 16ul, 37ul}) {
        num::Vec y0(lanes);
        for (std::size_t l = 0; l < lanes; ++l) y0[l] = std::cos(static_cast<double>(l));
        num::BatchOde off(lanes, num::BatchOptions{false});
        num::BatchOde on(lanes, num::BatchOptions{true});
        const num::OdeSolution a = off.rk4Lockstep(rhs, y0, 0.0, 1.0, 200, 7);
        const num::OdeSolution b = on.rk4Lockstep(rhs, y0, 0.0, 1.0, 200, 7);
        ASSERT_EQ(a.t.size(), b.t.size());
        for (std::size_t i = 0; i < a.t.size(); ++i) {
            EXPECT_EQ(a.t[i], b.t[i]);
            for (std::size_t l = 0; l < lanes; ++l) EXPECT_EQ(a.y[i][l], b.y[i][l]);
        }
    }
}
