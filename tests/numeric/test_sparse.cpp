#include "numeric/sparse.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "numeric/lu.hpp"
#include "numeric/newton.hpp"
#include "numeric/sparse_lu.hpp"

namespace phlogon::num {
namespace {

// ---------------------------------------------------------------------------
// SparseMatrix: pattern lifecycle
// ---------------------------------------------------------------------------

TEST(SparseMatrix, BuildsFreezesAndLooksUp) {
    SparseMatrix a(3, 3);
    EXPECT_FALSE(a.patternFrozen());
    a.add(0, 0, 2.0);
    a.add(1, 1, 3.0);
    a.add(0, 2, -1.0);
    a.add(0, 0, 0.5);  // duplicate: summed on freeze
    a.endAssembly();
    EXPECT_TRUE(a.patternFrozen());
    EXPECT_EQ(a.nnz(), 3u);
    EXPECT_DOUBLE_EQ(a.at(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(a.at(0, 2), -1.0);
    EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);  // outside the pattern
}

TEST(SparseMatrix, FrozenAssemblyAccumulatesInPlace) {
    SparseMatrix a(2, 2);
    a.add(0, 0, 1.0);
    a.add(1, 0, 4.0);
    a.endAssembly();
    const auto stamp = a.patternStamp();

    a.beginAssembly();
    a.add(0, 0, 7.0);
    a.add(0, 0, 1.0);
    a.endAssembly();
    EXPECT_DOUBLE_EQ(a.at(0, 0), 8.0);
    EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);  // zeroed by beginAssembly
    EXPECT_EQ(a.patternStamp(), stamp) << "in-pattern assembly must not bump the stamp";
}

TEST(SparseMatrix, OverflowMergeGrowsPatternAndBumpsStamp) {
    SparseMatrix a(2, 2);
    a.add(0, 0, 1.0);
    a.endAssembly();
    const auto stamp = a.patternStamp();

    a.beginAssembly();
    a.add(0, 0, 1.0);
    a.add(1, 1, 5.0);  // outside the frozen pattern -> overflow
    a.endAssembly();
    EXPECT_EQ(a.nnz(), 2u);
    EXPECT_DOUBLE_EQ(a.at(1, 1), 5.0);
    EXPECT_GT(a.patternStamp(), stamp);
}

TEST(SparseMatrix, ZeroAddClaimsPatternSlot) {
    // Structurally-present-but-zero stamps (switched-off device, gmin at 0)
    // must keep the pattern stable so the symbolic factorization is reusable.
    SparseMatrix a(2, 2);
    a.add(0, 0, 1.0);
    a.add(1, 1, 0.0);
    a.endAssembly();
    EXPECT_EQ(a.nnz(), 2u);
    EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(SparseMatrix, MulVecAndDenseRoundTripMatch) {
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 8;
    Matrix d(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            if ((r + 2 * c) % 3 == 0) d(r, c) = dist(rng);
    const SparseMatrix a = SparseMatrix::fromDense(d);
    const Matrix back = a.toDense();
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) EXPECT_DOUBLE_EQ(back(r, c), d(r, c));

    Vec x(n), ys, yd;
    for (double& v : x) v = dist(rng);
    a.mulVec(x, ys);
    yd = d * x;
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-14);
}

TEST(SparseMatrix, ResetDropsPattern) {
    SparseMatrix a(2, 2);
    a.add(0, 0, 1.0);
    a.endAssembly();
    a.reset(3, 3);
    EXPECT_FALSE(a.patternFrozen());
    EXPECT_EQ(a.rows(), 3u);
    EXPECT_EQ(a.nnz(), 0u);
}

// ---------------------------------------------------------------------------
// Minimum-degree ordering
// ---------------------------------------------------------------------------

/// Arrow matrix: dense first row/column + diagonal.  Natural-order LU fills
/// completely; eliminating the hub last keeps fill linear.
SparseMatrix arrowMatrix(std::size_t n) {
    SparseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a.add(i, i, 4.0 + static_cast<double>(i % 3));
        if (i > 0) {
            a.add(0, i, 1.0);
            a.add(i, 0, 1.0);
        }
    }
    a.endAssembly();
    return a;
}

TEST(MinDegree, IsAPermutationAndDeterministic) {
    const SparseMatrix a = arrowMatrix(17);
    const auto ord = minDegreeOrder(a);
    ASSERT_EQ(ord.size(), 17u);
    std::vector<bool> seen(17, false);
    for (const std::size_t v : ord) {
        ASSERT_LT(v, 17u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
    EXPECT_EQ(minDegreeOrder(a), ord);
}

TEST(MinDegree, EliminatesArrowHubNearLast) {
    // The hub keeps the highest degree until only leaves of equal degree
    // remain; the smallest-index tie break can then slot it one before the
    // final leaf, so "last two" is the invariant (either way, zero fill).
    const auto ord = minDegreeOrder(arrowMatrix(30));
    const std::size_t hubPos =
        static_cast<std::size_t>(std::find(ord.begin(), ord.end(), 0u) - ord.begin());
    EXPECT_GE(hubPos, ord.size() - 2) << "the dense hub must be eliminated last or next-to-last";
}

// ---------------------------------------------------------------------------
// SparseLu
// ---------------------------------------------------------------------------

TEST(SparseLu, MatchesDenseLuOnRandomSystems) {
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 9);
        Matrix d(n, n);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                if (r == c || (r * 5 + c * 3 + static_cast<std::size_t>(trial)) % 4 == 0)
                    d(r, c) = dist(rng);
            d(r, r) += 3.0;
        }
        Vec b(n);
        for (double& v : b) v = dist(rng);

        const SparseMatrix a = SparseMatrix::fromDense(d, -1.0);  // keep explicit zeros too
        SparseLu lu;
        ASSERT_TRUE(lu.factor(a));
        const Vec xs = lu.solve(b);
        const auto df = LuFactor::factor(d);
        ASSERT_TRUE(df.has_value());
        const Vec xd = df->solve(b);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-10);

        // And the residual itself is small.
        const Vec r = d * xs - b;
        EXPECT_LT(normInf(r), 1e-10);
    }
}

TEST(SparseLu, PivotsThroughZeroDiagonal) {
    SparseMatrix a(2, 2);
    a.add(0, 0, 0.0);
    a.add(0, 1, 1.0);
    a.add(1, 0, 1.0);
    a.add(1, 1, 0.0);
    a.endAssembly();
    SparseLu lu;
    ASSERT_TRUE(lu.factor(a));
    const Vec x = lu.solve(Vec{2, 3});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, RejectsSingularEmptyNonSquareUnfrozen) {
    SparseLu lu;
    SparseMatrix sing(2, 2);
    sing.add(0, 0, 1.0);
    sing.add(0, 1, 2.0);
    sing.add(1, 0, 2.0);
    sing.add(1, 1, 4.0);
    sing.endAssembly();
    EXPECT_FALSE(lu.factor(sing));
    EXPECT_FALSE(lu.valid());

    EXPECT_FALSE(lu.factor(SparseMatrix()));
    SparseMatrix rect(2, 3);
    rect.endAssembly();
    EXPECT_FALSE(lu.factor(rect));

    SparseMatrix building(2, 2);
    building.add(0, 0, 1.0);  // no endAssembly: pattern not frozen
    EXPECT_FALSE(lu.factor(building));

    // A structurally empty column is singular, not a crash.
    SparseMatrix hole(2, 2);
    hole.add(0, 0, 1.0);
    hole.endAssembly();
    EXPECT_FALSE(lu.factor(hole));
}

TEST(SparseLu, RefactorReusesSymbolicAndMatchesFullFactor) {
    std::mt19937 rng(9);
    std::uniform_real_distribution<double> dist(0.5, 2.0);
    const std::size_t n = 40;
    // Tridiagonal system; refresh values 5 times through the frozen pattern.
    SparseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a.add(i, i, 4.0);
        if (i > 0) {
            a.add(i, i - 1, -1.0);
            a.add(i - 1, i, -1.0);
        }
    }
    a.endAssembly();

    SparseLu lu;
    ASSERT_TRUE(lu.refactor(a));
    EXPECT_EQ(lu.fullFactorCount(), 1u);
    EXPECT_EQ(lu.refactorCount(), 0u);

    Vec b(n, 1.0);
    for (int pass = 0; pass < 5; ++pass) {
        a.beginAssembly();
        for (std::size_t i = 0; i < n; ++i) {
            a.add(i, i, 3.0 + dist(rng));
            if (i > 0) {
                a.add(i, i - 1, -dist(rng));
                a.add(i - 1, i, -dist(rng));
            }
        }
        a.endAssembly();
        ASSERT_TRUE(lu.refactor(a));

        SparseLu fresh;
        ASSERT_TRUE(fresh.factor(a));
        const Vec xr = lu.solve(b);
        const Vec xf = fresh.solve(b);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xr[i], xf[i], 1e-12);
    }
    EXPECT_EQ(lu.fullFactorCount(), 1u);
    EXPECT_EQ(lu.refactorCount(), 5u);
}

TEST(SparseLu, RefactorFallsBackOnPatternChange) {
    SparseMatrix a(2, 2);
    a.add(0, 0, 2.0);
    a.add(1, 1, 3.0);
    a.endAssembly();
    SparseLu lu;
    ASSERT_TRUE(lu.refactor(a));
    EXPECT_EQ(lu.fullFactorCount(), 1u);

    a.beginAssembly();
    a.add(0, 0, 2.0);
    a.add(1, 1, 3.0);
    a.add(0, 1, 1.0);  // new slot: pattern stamp bumps
    a.endAssembly();
    ASSERT_TRUE(lu.refactor(a));
    EXPECT_EQ(lu.fullFactorCount(), 2u) << "stale pattern must trigger a full factorization";
    const Vec x = lu.solve(Vec{5, 3});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SparseLu, RefactorFallsBackOnDegradedPivot) {
    // First factorization happily keeps the diagonal pivots; then the (0,0)
    // entry collapses so the recorded pivot fails the threshold test and a
    // fresh (row-swapping) factorization must take over transparently.
    SparseMatrix a(2, 2);
    a.add(0, 0, 4.0);
    a.add(0, 1, 1.0);
    a.add(1, 0, 1.0);
    a.add(1, 1, 3.0);
    a.endAssembly();
    SparseLu lu;
    ASSERT_TRUE(lu.refactor(a));
    EXPECT_EQ(lu.fullFactorCount(), 1u);

    a.beginAssembly();
    a.add(0, 0, 1e-13);
    a.add(0, 1, 1.0);
    a.add(1, 0, 1.0);
    a.add(1, 1, 1e-13);
    a.endAssembly();
    ASSERT_TRUE(lu.refactor(a));
    EXPECT_EQ(lu.fullFactorCount(), 2u) << "degraded pivot must trigger repivoting";
    const Vec x = lu.solve(Vec{1.0, 2.0});
    // x ~ [2, 1] for the near-antidiagonal system.
    EXPECT_NEAR(x[0], 2.0, 1e-9);
    EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(SparseLu, FillReducingOrderKeepsArrowFillLinear) {
    const std::size_t n = 200;
    const SparseMatrix a = arrowMatrix(n);
    SparseLu lu;
    ASSERT_TRUE(lu.factor(a));
    // Natural order would fill in ~n^2/2 entries; min-degree keeps the hub
    // last so L+U stays at the structural nnz (~3n).
    EXPECT_LE(lu.factorNnz(), 4 * n);
    const Vec x = lu.solve(Vec(n, 1.0));
    const Matrix d = a.toDense();
    const Vec r = d * x - Vec(n, 1.0);
    EXPECT_LT(normInf(r), 1e-10);
}

TEST(SparseLu, RcondEstimateOrdersWellVsIllConditioned) {
    SparseMatrix eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i) eye.add(i, i, 1.0);
    eye.endAssembly();
    SparseLu good;
    ASSERT_TRUE(good.factor(eye));
    EXPECT_GT(good.rcondEstimate(), 0.5);

    SparseMatrix bad(2, 2);
    bad.add(0, 0, 1.0);
    bad.add(1, 1, 1e-10);
    bad.endAssembly();
    SparseLu poor;
    ASSERT_TRUE(poor.factor(bad));
    EXPECT_LT(poor.rcondEstimate(), 1e-9);
}

TEST(SparseLu, SolveLinearSparseConvenience) {
    SparseMatrix a(2, 2);
    a.add(0, 0, 1.0);
    a.add(1, 1, 2.0);
    a.endAssembly();
    const auto x = solveLinearSparse(a, Vec{1, 4});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[1], 2.0, 1e-14);

    SparseMatrix s(2, 2);
    s.add(0, 0, 1.0);
    s.add(0, 1, 1.0);
    s.add(1, 0, 1.0);
    s.add(1, 1, 1.0);
    s.endAssembly();
    EXPECT_FALSE(solveLinearSparse(s, Vec{1, 1}).has_value());
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(SparseLuDeathTest, SolveIntoRejectsAliasedOutput) {
    SparseMatrix a(2, 2);
    a.add(0, 0, 1.0);
    a.add(1, 1, 1.0);
    a.endAssembly();
    SparseLu lu;
    ASSERT_TRUE(lu.factor(a));
    Vec b{1.0, 2.0};
    EXPECT_DEATH(lu.solveInto(b, b), "");
}
#endif

// ---------------------------------------------------------------------------
// newtonSolveSparse
// ---------------------------------------------------------------------------

TEST(NewtonSparse, MatchesDenseNewtonOnNonlinearSystem) {
    // F(x) = [x0^2 + x1 - 3, x0 + x1^3 - 5]; solution near (1.297, 1.318).
    const ResidualInPlaceFn f = [](const Vec& x, Vec& out) {
        out.resize(2);
        out[0] = x[0] * x[0] + x[1] - 3.0;
        out[1] = x[0] + x[1] * x[1] * x[1] - 5.0;
    };
    const JacobianInPlaceFn jd = [](const Vec& x, Matrix& j) {
        j.resize(2, 2);
        j(0, 0) = 2.0 * x[0];
        j(0, 1) = 1.0;
        j(1, 0) = 1.0;
        j(1, 1) = 3.0 * x[1] * x[1];
    };
    const SparseJacobianInPlaceFn js = [](const Vec& x, SparseMatrix& j) {
        if (j.rows() != 2) j.reset(2, 2);
        j.beginAssembly();
        j.add(0, 0, 2.0 * x[0]);
        j.add(0, 1, 1.0);
        j.add(1, 0, 1.0);
        j.add(1, 1, 3.0 * x[1] * x[1]);
        j.endAssembly();
    };

    Vec xd{1.0, 1.0}, xs{1.0, 1.0};
    NewtonWorkspace wd, ws;
    const NewtonResult rd = newtonSolve(f, jd, xd, wd);
    const NewtonResult rs = newtonSolveSparse(f, js, xs, ws);
    ASSERT_TRUE(rd.converged);
    ASSERT_TRUE(rs.converged);
    EXPECT_NEAR(xs[0], xd[0], 1e-9);
    EXPECT_NEAR(xs[1], xd[1], 1e-9);

    // Sparse-engine counters are populated; first factorization is full,
    // later ones reuse the frozen pattern numerically.
    EXPECT_EQ(rs.counters.sparseFactorizations, 1u);
    EXPECT_GE(rs.counters.sparseRefactors, 1u);
    EXPECT_EQ(rs.counters.sparseFactorizations + rs.counters.sparseRefactors,
              rs.counters.luFactorizations);
    EXPECT_EQ(rs.counters.jacobianNnz, 4u);
    EXPECT_GE(rs.counters.factorNnz, 4u);
    EXPECT_EQ(rd.counters.sparseFactorizations, 0u);
    EXPECT_EQ(rd.counters.jacobianNnz, 0u);
}

TEST(NewtonSparse, ChordReuseAcrossSolvesSharingWorkspace) {
    // Mildly nonlinear scalar system solved repeatedly through one
    // workspace with jacobianReuse: later solves should start from the
    // cached factorization (chord) and skip Jacobian work entirely.
    double target = 2.0;
    const ResidualInPlaceFn f = [&target](const Vec& x, Vec& out) {
        out.resize(1);
        out[0] = x[0] + 0.01 * x[0] * x[0] * x[0] - target;
    };
    const SparseJacobianInPlaceFn js = [](const Vec& x, SparseMatrix& j) {
        if (j.rows() != 1) j.reset(1, 1);
        j.beginAssembly();
        j.add(0, 0, 1.0 + 0.03 * x[0] * x[0]);
        j.endAssembly();
    };
    NewtonOptions opt;
    opt.jacobianReuse = true;
    NewtonWorkspace ws;
    Vec x{0.0};
    SolverCounters total;
    for (int k = 0; k < 4; ++k) {
        target = 2.0 + 0.01 * k;
        const NewtonResult r = newtonSolveSparse(f, js, x, ws, opt);
        ASSERT_TRUE(r.converged);
        total += r.counters;
    }
    EXPECT_TRUE(ws.hasFactorization());
    EXPECT_LT(total.jacEvals, total.newtonIters)
        << "chord mode must bypass some Jacobian refreshes";
    EXPECT_EQ(total.sparseFactorizations, 1u) << "one symbolic analysis for the whole sequence";
}

}  // namespace
}  // namespace phlogon::num
