// Structured logger: record shape, level gating, ring-overflow accounting
// and — the load-bearing part — per-event rate limiting.  A burst past the
// budget collapses into one synthetic {"event":...,"suppressed":k} record,
// driven here by an injected clock so window rolls are deterministic.

#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace phlogon::obs {
namespace {

namespace fs = std::filesystem;
namespace json = io::json;

#ifndef PHLOGON_NO_OBS

class LogFile : public ::testing::Test {
protected:
    void SetUp() override {
        path_ = fs::temp_directory_path() / "phlogon_log_test.jsonl";
        fs::remove(path_);
    }
    void TearDown() override {
        Logger::instance().setClockForTest(nullptr);
        Logger::instance().disable();
        Logger::instance().flush();
        fs::remove(path_);
    }

    void configure(std::uint64_t rateLimit = 64,
                   LogLevel threshold = LogLevel::Debug) {
        Logger::Options opt;
        opt.path = path_.string();
        opt.threshold = threshold;
        opt.rateLimit = rateLimit;
        opt.rateWindowNs = 1'000'000'000;
        Logger::instance().configure(opt);
    }

    /// Parse every line of the sink as JSON.
    std::vector<json::Value> lines() {
        Logger::instance().flush();
        std::ifstream in(path_);
        std::vector<json::Value> out;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            const json::ParseResult r = json::parse(line);
            EXPECT_TRUE(r.ok) << "unparseable log line: " << line;
            if (r.ok) out.push_back(r.value);
        }
        return out;
    }

    static int countEvent(const std::vector<json::Value>& recs, const std::string& ev) {
        int n = 0;
        for (const json::Value& r : recs)
            if (r.fieldString("event", "") == ev) ++n;
        return n;
    }

    fs::path path_;
};

TEST_F(LogFile, RecordsAreOneJsonObjectPerLineWithTypedFields) {
    configure();
    PHLOGON_LOG_INFO("test.shape", {"job", std::uint64_t(17)}, {"ms", 412.75},
                     {"type", "hold-error-mc"}, {"cached", true});
    PHLOGON_LOG_ERROR("test.failed", {"error", std::string("bad \"quote\"\nline")});
    const auto recs = lines();
    ASSERT_EQ(recs.size(), 2u);

    EXPECT_EQ(recs[0].fieldString("lvl", ""), "info");
    EXPECT_EQ(recs[0].fieldString("event", ""), "test.shape");
    EXPECT_GT(recs[0].fieldNumber("ts", 0.0), 1e9);  // unix seconds, not zero
    EXPECT_DOUBLE_EQ(recs[0].fieldNumber("job", -1), 17.0);
    EXPECT_DOUBLE_EQ(recs[0].fieldNumber("ms", -1), 412.75);
    EXPECT_EQ(recs[0].fieldString("type", ""), "hold-error-mc");
    EXPECT_TRUE(recs[0].fieldBool("cached", false));

    // Strings with quotes/newlines survive the quoting round-trip.
    EXPECT_EQ(recs[1].fieldString("lvl", ""), "error");
    EXPECT_EQ(recs[1].fieldString("error", ""), "bad \"quote\"\nline");
}

TEST_F(LogFile, ThresholdGatesLowerLevels) {
    configure(64, LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    PHLOGON_LOG_DEBUG("test.gated");
    PHLOGON_LOG_INFO("test.gated");
    PHLOGON_LOG_WARN("test.kept");
    PHLOGON_LOG_ERROR("test.kept");
    const auto recs = lines();
    EXPECT_EQ(countEvent(recs, "test.gated"), 0);
    EXPECT_EQ(countEvent(recs, "test.kept"), 2);
}

TEST_F(LogFile, BurstCollapsesIntoSuppressedRecord) {
    configure(/*rateLimit=*/5);
    std::int64_t now = 0;
    Logger::instance().setClockForTest([&now] { return now; });

    // 30 identical events inside one window: 5 written, 25 suppressed.
    const std::uint64_t before = Logger::instance().suppressedRecords();
    for (int i = 0; i < 30; ++i)
        PHLOGON_LOG_WARN("test.burst", {"i", i});
    // An unrelated event is not affected by the hot one's budget.
    PHLOGON_LOG_WARN("test.other");

    // Roll the window: the pending suppression summary is emitted.
    now += 2'000'000'000;
    PHLOGON_LOG_WARN("test.burst", {"i", 30});

    const auto recs = lines();
    EXPECT_EQ(countEvent(recs, "test.other"), 1);
    // 5 in the first window + 1 after the roll + the suppression summary.
    EXPECT_EQ(countEvent(recs, "test.burst"), 7);
    EXPECT_EQ(Logger::instance().suppressedRecords() - before, 25u);

    bool sawSummary = false;
    for (const json::Value& r : recs) {
        if (r.fieldString("event", "") == "test.burst" &&
            r.fieldNumber("suppressed", 0.0) > 0.0) {
            sawSummary = true;
            EXPECT_DOUBLE_EQ(r.fieldNumber("suppressed", 0.0), 25.0);
            EXPECT_EQ(r.fieldString("lvl", ""), "warn");
        }
    }
    EXPECT_TRUE(sawSummary);
}

TEST_F(LogFile, FlushEmitsPendingSuppressionWithoutWindowRoll) {
    configure(/*rateLimit=*/2);
    std::int64_t now = 0;
    Logger::instance().setClockForTest([&now] { return now; });
    for (int i = 0; i < 7; ++i)
        PHLOGON_LOG_INFO("test.flush", {"i", i});
    const auto recs = lines();  // flush() inside
    EXPECT_EQ(countEvent(recs, "test.flush"), 3);  // 2 written + 1 summary
    double suppressed = 0.0;
    for (const json::Value& r : recs) suppressed += r.fieldNumber("suppressed", 0.0);
    EXPECT_DOUBLE_EQ(suppressed, 5.0);
}

TEST_F(LogFile, DistinctEventsHaveIndependentBudgets) {
    configure(/*rateLimit=*/3);
    std::int64_t now = 0;
    Logger::instance().setClockForTest([&now] { return now; });
    for (int i = 0; i < 10; ++i) {
        PHLOGON_LOG_INFO("test.a");
        PHLOGON_LOG_INFO("test.b");
    }
    const auto recs = lines();
    EXPECT_EQ(countEvent(recs, "test.a"), 4);  // 3 + summary
    EXPECT_EQ(countEvent(recs, "test.b"), 4);
}

#endif  // PHLOGON_NO_OBS

}  // namespace
}  // namespace phlogon::obs
