#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "numeric/counters.hpp"
#include "numeric/parallel.hpp"

namespace phlogon::obs {
namespace {

// ---- metric primitives (work in every build mode) -------------------------

TEST(MetricPrimitives, CounterAddsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricPrimitives, GaugeTracksHighWater) {
    Gauge g;
    g.set(5);
    g.set(12);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.max(), 12);
    g.add(20);
    EXPECT_EQ(g.value(), 23);
    EXPECT_EQ(g.max(), 23);
    g.reset();
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.max(), 0);
}

TEST(MetricPrimitives, HistogramCountsAndBounds) {
    Histogram h;
    h.observe(1e-6);
    h.observe(2e-6);
    h.observe(1e-3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.totalSeconds(), 1e-3 + 3e-6, 1e-9);
    EXPECT_LE(h.minSeconds(), 1.1e-6);
    EXPECT_GE(h.maxSeconds(), 0.9e-3);
    // Quantiles come from log2-bin midpoints: order must hold, values land
    // within a bin factor (2x) of the exact answer.
    EXPECT_LE(h.quantileSeconds(0.5), h.quantileSeconds(0.95));
    EXPECT_GE(h.quantileSeconds(0.95), 0.5e-3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

#ifndef PHLOGON_NO_OBS

class MetricsOn : public ::testing::Test {
protected:
    void SetUp() override {
        setMetricsEnabled(true);
        MetricsRegistry::instance().reset();
    }
    void TearDown() override {
        MetricsRegistry::instance().reset();
        setMetricsEnabled(false);
    }
};

std::uint64_t counterValue(const std::string& name) {
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    for (const auto& c : snap.counters)
        if (c.name == name) return c.value;
    return 0;
}

TEST_F(MetricsOn, RegistryReturnsStableReferences) {
    Counter& a = MetricsRegistry::instance().counter("test.stable");
    Counter& b = MetricsRegistry::instance().counter("test.stable");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(counterValue("test.stable"), 7u);
}

TEST_F(MetricsOn, SnapshotIsSortedByName) {
    MetricsRegistry::instance().counter("test.zz").add();
    MetricsRegistry::instance().counter("test.aa").add();
    MetricsRegistry::instance().gauge("test.g").set(1);
    MetricsRegistry::instance().histogram("test.h").observe(1e-6);
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
    EXPECT_FALSE(snap.gauges.empty());
    EXPECT_FALSE(snap.histograms.empty());
}

TEST_F(MetricsOn, MacroCountsExactlyWhenEnabled) {
    for (int i = 0; i < 100; ++i) PHLOGON_ADD_METRIC("test.macro", 2);
    PHLOGON_COUNT_METRIC("test.macro");
    EXPECT_EQ(counterValue("test.macro"), 201u);
}

TEST_F(MetricsOn, MacroIsInertWhenDisabled) {
    setMetricsEnabled(false);
    PHLOGON_COUNT_METRIC("test.inert");
    setMetricsEnabled(true);
    EXPECT_EQ(counterValue("test.inert"), 0u);
}

// The TSAN job runs this: every worker hammers the same counters, gauges and
// histograms through the registry while other workers race the same names.
TEST_F(MetricsOn, RegistryHammerFromParallelWorkers) {
    const std::size_t n = 512;
    num::parallelFor(
        n,
        [](std::size_t i) {
            PHLOGON_COUNT_METRIC("test.hammer");
            MetricsRegistry::instance().counter("test.hammer.lookup").add();
            MetricsRegistry::instance()
                .counter("test.hammer." + std::to_string(i % 7))
                .add();
            MetricsRegistry::instance().gauge("test.hammer.gauge").set(
                static_cast<std::int64_t>(i));
            MetricsRegistry::instance().histogram("test.hammer.hist").observe(
                1e-6 * static_cast<double>(i + 1));
            if (i % 3 == 0) (void)MetricsRegistry::instance().snapshot();
        },
        4);
    EXPECT_EQ(counterValue("test.hammer"), n);
    EXPECT_EQ(counterValue("test.hammer.lookup"), n);
    std::uint64_t modSum = 0;
    for (int k = 0; k < 7; ++k)
        modSum += counterValue("test.hammer." + std::to_string(k));
    EXPECT_EQ(modSum, n);
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    for (const auto& h : snap.histograms) {
        if (h.name == "test.hammer.hist") EXPECT_EQ(h.count, n);
    }
}

// Enabling metrics must not perturb deterministic parallel results: the
// slot-per-index contract holds bit-for-bit with collection on.
TEST_F(MetricsOn, CollectionDoesNotPerturbParallelResults) {
    const std::size_t n = 200;
    const auto body = [](std::size_t i) {
        double acc = 0.0;
        for (std::size_t k = 0; k <= i; ++k) acc += 1.0 / static_cast<double>(k + 1);
        return acc;
    };
    std::vector<double> off(n), on(n);
    setMetricsEnabled(false);
    num::parallelFor(
        n, [&](std::size_t i) { off[i] = body(i); }, 4);
    setMetricsEnabled(true);
    num::parallelFor(
        n,
        [&](std::size_t i) {
            PHLOGON_COUNT_METRIC("test.perturb");
            on[i] = body(i);
        },
        4);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(off[i], on[i]) << i;
    EXPECT_EQ(counterValue("test.perturb"), n);
    // parallelFor mirrored its own stats while metrics were on.
    EXPECT_GE(counterValue("pool.tasks"), n);
}

TEST_F(MetricsOn, RecordSolverCountersFeedsSolverMetrics) {
    num::SolverCounters c;
    c.newtonIters = 11;
    c.rhsEvals = 22;
    c.jacEvals = 33;
    c.luFactorizations = 44;
    c.steps = 55;
    c.rejectedSteps = 6;
    c.dampingEvents = 7;
    c.wallSeconds = 1e-3;
    recordSolverCounters("testrun", c);
    EXPECT_EQ(counterValue("newton.iters"), 11u);
    EXPECT_EQ(counterValue("newton.rhsEvals"), 22u);
    EXPECT_EQ(counterValue("newton.jacEvals"), 33u);
    EXPECT_EQ(counterValue("lu.factorizations"), 44u);
    EXPECT_EQ(counterValue("steps.accepted"), 55u);
    EXPECT_EQ(counterValue("steps.rejected"), 6u);
    EXPECT_EQ(counterValue("newton.dampingEvents"), 7u);
    EXPECT_EQ(counterValue("analysis.testrun.runs"), 1u);
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    bool sawWall = false;
    for (const auto& h : snap.histograms)
        if (h.name == "analysis.testrun.wall") {
            sawWall = true;
            EXPECT_EQ(h.count, 1u);
        }
    EXPECT_TRUE(sawWall);
}

#endif  // PHLOGON_NO_OBS

}  // namespace
}  // namespace phlogon::obs
