#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "numeric/parallel.hpp"
#include "obs/trace_read.hpp"

namespace phlogon::obs {
namespace {

namespace fs = std::filesystem;

// ---- parser unit tests (no tracer involved) -------------------------------

TEST(TraceRead, ParsesHandWrittenChromeTrace) {
    const std::string json = R"({
      "displayTimeUnit": "ms",
      "traceEvents": [
        {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"main"}},
        {"name":"pss.shoot","cat":"pss","ph":"X","ts":10.0,"dur":100.0,"pid":1,"tid":0},
        {"name":"pss.warmup","cat":"pss","ph":"X","ts":20.0,"dur":30.0,"pid":1,"tid":0},
        {"name":"cache.hit","cat":"cache","ph":"i","s":"t","ts":55.5,"pid":1,"tid":0}
      ],
      "otherData": {"droppedEvents": 3}
    })";
    const ParsedTrace t = parseChromeTrace(json);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(t.events.size(), 3u);  // metadata filtered into `threads`
    EXPECT_EQ(t.threads.at(0), "main");
    EXPECT_EQ(t.droppedEvents, 3u);

    const auto spans = t.spansForThread(0);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "pss.shoot");  // parent sorts before child
    EXPECT_EQ(spans[1].name, "pss.warmup");
    EXPECT_EQ(spans[0].cat, "pss");
    EXPECT_TRUE(t.spansProperlyNested());
}

TEST(TraceRead, AcceptsBareEventArray) {
    const std::string json =
        R"([{"name":"a.b","ph":"X","ts":0.0,"dur":1.0,"pid":1,"tid":4}])";
    const ParsedTrace t = parseChromeTrace(json);
    ASSERT_TRUE(t.ok) << t.error;
    ASSERT_EQ(t.events.size(), 1u);
    EXPECT_EQ(t.events[0].tid, 4);
    EXPECT_EQ(t.spanThreadIds(), std::vector<std::int64_t>{4});
}

TEST(TraceRead, RejectsMalformedJson) {
    EXPECT_FALSE(parseChromeTrace("").ok);
    EXPECT_FALSE(parseChromeTrace("{\"traceEvents\": [").ok);
    EXPECT_FALSE(parseChromeTrace("{\"noEvents\": 1}").ok);
    EXPECT_FALSE(parseChromeTrace("[{\"name\": }]").ok);
}

TEST(TraceRead, DetectsImproperNesting) {
    // Two spans overlap without containment: [0,10) and [5,15).
    const std::string json = R"([
      {"name":"a.x","ph":"X","ts":0.0,"dur":10.0,"pid":1,"tid":0},
      {"name":"a.y","ph":"X","ts":5.0,"dur":10.0,"pid":1,"tid":0}
    ])";
    const ParsedTrace t = parseChromeTrace(json);
    ASSERT_TRUE(t.ok) << t.error;
    std::string why;
    EXPECT_FALSE(t.spansProperlyNested(&why));
    EXPECT_FALSE(why.empty());
}

#ifndef PHLOGON_NO_OBS

// ---- golden end-to-end: record -> write -> parse --------------------------

class TraceGolden : public ::testing::Test {
protected:
    void SetUp() override {
        path_ = fs::temp_directory_path() / "phlogon_trace_test.json";
        fs::remove(path_);
        Tracer::instance().start(path_.string());
    }
    void TearDown() override {
        Tracer::instance().stop();
        fs::remove(path_);
    }
    fs::path path_;
};

int countByName(const ParsedTrace& t, const std::string& name) {
    int n = 0;
    for (const ParsedEvent& e : t.events)
        if (e.name == name) ++n;
    return n;
}

TEST_F(TraceGolden, NestedSpansRoundTrip) {
    {
        OBS_SPAN("test.outer");
        {
            OBS_SPAN("test.inner");
            OBS_INSTANT("test.marker");
        }
        { OBS_SPAN("test.inner"); }
    }
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());

    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(t.droppedEvents, 0u);
    EXPECT_EQ(countByName(t, "test.outer"), 1);
    EXPECT_EQ(countByName(t, "test.inner"), 2);
    EXPECT_EQ(countByName(t, "test.marker"), 1);

    std::string why;
    EXPECT_TRUE(t.spansProperlyNested(&why)) << why;

    // All spans recorded from the main thread share one tid, labeled "main",
    // and the children lie inside the parent.
    const auto tids = t.spanThreadIds();
    ASSERT_EQ(tids.size(), 1u);
    EXPECT_EQ(t.threads.at(tids[0]), "main");
    const auto spans = t.spansForThread(tids[0]);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "test.outer");
    for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i].tsUs, spans[0].tsUs);
        EXPECT_LE(spans[i].tsUs + spans[i].durUs, spans[0].tsUs + spans[0].durUs + 1e-3);
    }

    // Category is the prefix before the first dot.
    for (const ParsedEvent& e : t.events) EXPECT_EQ(e.cat, "test");
}

TEST_F(TraceGolden, SpansFromParallelWorkersCarryConsistentTids) {
    num::parallelFor(
        64, [](std::size_t) { OBS_SPAN("test.task"); }, 4);
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());

    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(countByName(t, "test.task"), 64);
    std::string why;
    EXPECT_TRUE(t.spansProperlyNested(&why)) << why;

    // Every tid carrying spans is internally consistent: each task span on a
    // worker tid nests inside that thread's pool.drain span.  (How many
    // workers actually claimed tasks depends on scheduling; the caller's tid
    // participates too.)
    for (const std::int64_t tid : t.spanThreadIds()) {
        const auto spans = t.spansForThread(tid);
        const bool hasDrain =
            std::any_of(spans.begin(), spans.end(),
                        [](const ParsedEvent& e) { return e.name == "pool.drain"; });
        const bool hasTask =
            std::any_of(spans.begin(), spans.end(),
                        [](const ParsedEvent& e) { return e.name == "test.task"; });
        EXPECT_TRUE(hasDrain || !hasTask)
            << "tid " << tid << " has task spans outside any pool.drain";
    }

    // Worker threads that recorded events are named in the metadata.
    for (const auto& [tid, name] : t.threads)
        EXPECT_TRUE(name == "main" || name.rfind("pool-worker-", 0) == 0) << name;
}

TEST_F(TraceGolden, StartClearsPreviousEvents) {
    { OBS_SPAN("test.before"); }
    EXPECT_GE(Tracer::instance().eventCount(), 1u);
    Tracer::instance().start(path_.string());
    EXPECT_EQ(Tracer::instance().eventCount(), 0u);
    { OBS_SPAN("test.after"); }
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());
    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(countByName(t, "test.before"), 0);
    EXPECT_EQ(countByName(t, "test.after"), 1);
}

TEST(TraceDisabled, SpansAreNotRecordedWhenOff) {
    Tracer::instance().stop();
    const std::size_t before = Tracer::instance().eventCount();
    { OBS_SPAN("test.ignored"); }
    OBS_INSTANT("test.ignored_instant");
    EXPECT_EQ(Tracer::instance().eventCount(), before);
}

// ---- trace context, flows, merge ------------------------------------------

TEST_F(TraceGolden, ContextStampsSpansAndInstantsWithTraceIdAndJob) {
    const std::uint32_t ref = Tracer::instance().internTraceId("ctx-run-1");
    ASSERT_NE(ref, 0u);
    // Interning is stable: same string, same reference.
    EXPECT_EQ(Tracer::instance().internTraceId("ctx-run-1"), ref);
    {
        TraceContextScope scope(ref, 42);
        OBS_SPAN("test.ctx");
        OBS_INSTANT("test.ctx_marker");
    }
    { OBS_SPAN("test.noctx"); }  // scope restored: unstamped
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());

    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    for (const ParsedEvent& e : t.events) {
        if (e.name == "test.ctx" || e.name == "test.ctx_marker") {
            EXPECT_EQ(e.traceId, "ctx-run-1") << e.name;
            EXPECT_EQ(e.jobId, 42u) << e.name;
        }
        if (e.name == "test.noctx") {
            EXPECT_TRUE(e.traceId.empty());
            EXPECT_EQ(e.jobId, 0u);
        }
    }
    const auto stamped = t.spansForTraceId("ctx-run-1");
    ASSERT_EQ(stamped.size(), 1u);
    EXPECT_EQ(stamped[0].name, "test.ctx");
}

TEST_F(TraceGolden, ContextScopesNestAndRestore) {
    const std::uint32_t outer = Tracer::instance().internTraceId("nest-outer");
    const std::uint32_t inner = Tracer::instance().internTraceId("nest-inner");
    ASSERT_NE(outer, inner);
    {
        TraceContextScope a(outer, 1);
        {
            TraceContextScope b(inner, 2);
            OBS_SPAN("test.nested_inner");
        }
        // b destroyed: outer context restored.
        OBS_SPAN("test.nested_outer");
    }
    EXPECT_EQ(currentTraceContext().traceRef, 0u);
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());
    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(t.spansForTraceId("nest-inner").size(), 1u);
    EXPECT_EQ(t.spansForTraceId("nest-outer").size(), 1u);
}

TEST_F(TraceGolden, FlowEventsRoundTripWithMatchingIds) {
    const std::uint32_t ref = Tracer::instance().internTraceId("flow-run");
    const std::uint64_t flowId = 0xdeadbeefcafeull;
    {
        TraceContextScope scope(ref, 7);
        Tracer::instance().recordFlow("test.flow", flowId, true);
        {
            OBS_SPAN("test.flow_consumer");
            Tracer::instance().recordFlow("test.flow", flowId, false);
        }
    }
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());
    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;

    const auto flows = t.flowsForTraceId("flow-run");
    ASSERT_EQ(flows.size(), 2u);
    EXPECT_EQ(flows[0].ph, "s");
    EXPECT_EQ(flows[1].ph, "f");
    EXPECT_EQ(flows[0].flowId, flowId);
    EXPECT_EQ(flows[1].flowId, flowId);
    // The finish binds to its enclosing slice (Chrome's bp:"e" semantics).
    EXPECT_EQ(flows[1].bindingPoint, "e");
}

TEST_F(TraceGolden, MergePreservesArgsFlowsAndRemapsTids) {
    // First trace: one stamped span + a flow start.
    const std::uint32_t ref = Tracer::instance().internTraceId("merge-run");
    {
        TraceContextScope scope(ref, 3);
        OBS_SPAN("test.first_half");
        Tracer::instance().recordFlow("test.handoff", 99, true);
    }
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());
    const fs::path pathB = fs::temp_directory_path() / "phlogon_trace_test_b.json";
    fs::remove(pathB);

    // Second trace (a "restarted daemon"): same traceId string re-interned in
    // a fresh collection, plus the matching flow finish.
    Tracer::instance().start(pathB.string());
    const std::uint32_t ref2 = Tracer::instance().internTraceId("merge-run");
    {
        TraceContextScope scope(ref2, 8);
        OBS_SPAN("test.second_half");
        Tracer::instance().recordFlow("test.handoff", 99, false);
    }
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());

    std::string error;
    const std::string merged = mergeChromeTraces({path_, pathB}, &error);
    ASSERT_FALSE(merged.empty()) << error;
    const ParsedTrace t = parseChromeTrace(merged);
    ASSERT_TRUE(t.ok) << t.error;

    // Both halves join the one trace id; their tids are disjoint.  (Each
    // file's timestamps are rebased at write time, so match by name, not
    // by ts order.)
    const auto spans = t.spansForTraceId("merge-run");
    ASSERT_EQ(spans.size(), 2u);
    const ParsedEvent* first = nullptr;
    const ParsedEvent* second = nullptr;
    for (const ParsedEvent& e : spans) {
        if (e.name == "test.first_half") first = &e;
        if (e.name == "test.second_half") second = &e;
    }
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(first->jobId, 3u);
    EXPECT_EQ(second->jobId, 8u);
    EXPECT_NE(first->tid, second->tid);

    const auto flows = t.flowsForTraceId("merge-run");
    ASSERT_EQ(flows.size(), 2u);
    EXPECT_EQ(flows[0].flowId, 99u);
    EXPECT_EQ(flows[1].flowId, 99u);

    // Thread names survive with a per-input suffix.
    bool sawSuffixed = false;
    for (const auto& [tid, name] : t.threads)
        if (name.find('[') != std::string::npos) sawSuffixed = true;
    EXPECT_TRUE(sawSuffixed);

    std::string why;
    const std::string err = mergeChromeTraces({fs::path("/no/such/trace.json")}, &why);
    EXPECT_TRUE(err.empty());
    EXPECT_FALSE(why.empty());
    fs::remove(pathB);
}

#endif  // PHLOGON_NO_OBS

}  // namespace
}  // namespace phlogon::obs
