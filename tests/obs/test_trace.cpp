#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "numeric/parallel.hpp"
#include "obs/trace_read.hpp"

namespace phlogon::obs {
namespace {

namespace fs = std::filesystem;

// ---- parser unit tests (no tracer involved) -------------------------------

TEST(TraceRead, ParsesHandWrittenChromeTrace) {
    const std::string json = R"({
      "displayTimeUnit": "ms",
      "traceEvents": [
        {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"main"}},
        {"name":"pss.shoot","cat":"pss","ph":"X","ts":10.0,"dur":100.0,"pid":1,"tid":0},
        {"name":"pss.warmup","cat":"pss","ph":"X","ts":20.0,"dur":30.0,"pid":1,"tid":0},
        {"name":"cache.hit","cat":"cache","ph":"i","s":"t","ts":55.5,"pid":1,"tid":0}
      ],
      "otherData": {"droppedEvents": 3}
    })";
    const ParsedTrace t = parseChromeTrace(json);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(t.events.size(), 3u);  // metadata filtered into `threads`
    EXPECT_EQ(t.threads.at(0), "main");
    EXPECT_EQ(t.droppedEvents, 3u);

    const auto spans = t.spansForThread(0);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "pss.shoot");  // parent sorts before child
    EXPECT_EQ(spans[1].name, "pss.warmup");
    EXPECT_EQ(spans[0].cat, "pss");
    EXPECT_TRUE(t.spansProperlyNested());
}

TEST(TraceRead, AcceptsBareEventArray) {
    const std::string json =
        R"([{"name":"a.b","ph":"X","ts":0.0,"dur":1.0,"pid":1,"tid":4}])";
    const ParsedTrace t = parseChromeTrace(json);
    ASSERT_TRUE(t.ok) << t.error;
    ASSERT_EQ(t.events.size(), 1u);
    EXPECT_EQ(t.events[0].tid, 4);
    EXPECT_EQ(t.spanThreadIds(), std::vector<std::int64_t>{4});
}

TEST(TraceRead, RejectsMalformedJson) {
    EXPECT_FALSE(parseChromeTrace("").ok);
    EXPECT_FALSE(parseChromeTrace("{\"traceEvents\": [").ok);
    EXPECT_FALSE(parseChromeTrace("{\"noEvents\": 1}").ok);
    EXPECT_FALSE(parseChromeTrace("[{\"name\": }]").ok);
}

TEST(TraceRead, DetectsImproperNesting) {
    // Two spans overlap without containment: [0,10) and [5,15).
    const std::string json = R"([
      {"name":"a.x","ph":"X","ts":0.0,"dur":10.0,"pid":1,"tid":0},
      {"name":"a.y","ph":"X","ts":5.0,"dur":10.0,"pid":1,"tid":0}
    ])";
    const ParsedTrace t = parseChromeTrace(json);
    ASSERT_TRUE(t.ok) << t.error;
    std::string why;
    EXPECT_FALSE(t.spansProperlyNested(&why));
    EXPECT_FALSE(why.empty());
}

#ifndef PHLOGON_NO_OBS

// ---- golden end-to-end: record -> write -> parse --------------------------

class TraceGolden : public ::testing::Test {
protected:
    void SetUp() override {
        path_ = fs::temp_directory_path() / "phlogon_trace_test.json";
        fs::remove(path_);
        Tracer::instance().start(path_.string());
    }
    void TearDown() override {
        Tracer::instance().stop();
        fs::remove(path_);
    }
    fs::path path_;
};

int countByName(const ParsedTrace& t, const std::string& name) {
    int n = 0;
    for (const ParsedEvent& e : t.events)
        if (e.name == name) ++n;
    return n;
}

TEST_F(TraceGolden, NestedSpansRoundTrip) {
    {
        OBS_SPAN("test.outer");
        {
            OBS_SPAN("test.inner");
            OBS_INSTANT("test.marker");
        }
        { OBS_SPAN("test.inner"); }
    }
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());

    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(t.droppedEvents, 0u);
    EXPECT_EQ(countByName(t, "test.outer"), 1);
    EXPECT_EQ(countByName(t, "test.inner"), 2);
    EXPECT_EQ(countByName(t, "test.marker"), 1);

    std::string why;
    EXPECT_TRUE(t.spansProperlyNested(&why)) << why;

    // All spans recorded from the main thread share one tid, labeled "main",
    // and the children lie inside the parent.
    const auto tids = t.spanThreadIds();
    ASSERT_EQ(tids.size(), 1u);
    EXPECT_EQ(t.threads.at(tids[0]), "main");
    const auto spans = t.spansForThread(tids[0]);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "test.outer");
    for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i].tsUs, spans[0].tsUs);
        EXPECT_LE(spans[i].tsUs + spans[i].durUs, spans[0].tsUs + spans[0].durUs + 1e-3);
    }

    // Category is the prefix before the first dot.
    for (const ParsedEvent& e : t.events) EXPECT_EQ(e.cat, "test");
}

TEST_F(TraceGolden, SpansFromParallelWorkersCarryConsistentTids) {
    num::parallelFor(
        64, [](std::size_t) { OBS_SPAN("test.task"); }, 4);
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());

    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(countByName(t, "test.task"), 64);
    std::string why;
    EXPECT_TRUE(t.spansProperlyNested(&why)) << why;

    // Every tid carrying spans is internally consistent: each task span on a
    // worker tid nests inside that thread's pool.drain span.  (How many
    // workers actually claimed tasks depends on scheduling; the caller's tid
    // participates too.)
    for (const std::int64_t tid : t.spanThreadIds()) {
        const auto spans = t.spansForThread(tid);
        const bool hasDrain =
            std::any_of(spans.begin(), spans.end(),
                        [](const ParsedEvent& e) { return e.name == "pool.drain"; });
        const bool hasTask =
            std::any_of(spans.begin(), spans.end(),
                        [](const ParsedEvent& e) { return e.name == "test.task"; });
        EXPECT_TRUE(hasDrain || !hasTask)
            << "tid " << tid << " has task spans outside any pool.drain";
    }

    // Worker threads that recorded events are named in the metadata.
    for (const auto& [tid, name] : t.threads)
        EXPECT_TRUE(name == "main" || name.rfind("pool-worker-", 0) == 0) << name;
}

TEST_F(TraceGolden, StartClearsPreviousEvents) {
    { OBS_SPAN("test.before"); }
    EXPECT_GE(Tracer::instance().eventCount(), 1u);
    Tracer::instance().start(path_.string());
    EXPECT_EQ(Tracer::instance().eventCount(), 0u);
    { OBS_SPAN("test.after"); }
    Tracer::instance().stop();
    ASSERT_TRUE(Tracer::instance().write());
    const ParsedTrace t = readChromeTraceFile(path_);
    ASSERT_TRUE(t.ok) << t.error;
    EXPECT_EQ(countByName(t, "test.before"), 0);
    EXPECT_EQ(countByName(t, "test.after"), 1);
}

TEST(TraceDisabled, SpansAreNotRecordedWhenOff) {
    Tracer::instance().stop();
    const std::size_t before = Tracer::instance().eventCount();
    { OBS_SPAN("test.ignored"); }
    OBS_INSTANT("test.ignored_instant");
    EXPECT_EQ(Tracer::instance().eventCount(), before);
}

#endif  // PHLOGON_NO_OBS

}  // namespace
}  // namespace phlogon::obs
