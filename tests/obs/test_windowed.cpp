// WindowedHistogram: trailing-window quantiles over a ring of fixed-interval
// slots.  The injected-clock overloads (observeAt/statsAt) make rotation
// fully deterministic here; quantile accuracy is checked against an exact
// sorted sample (log2-ns bins → any quantile is within one bin, a factor of
// sqrt(2), of the true value).

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace phlogon::obs {
namespace {

constexpr std::int64_t kSec = 1'000'000'000;

TEST(WindowedHistogram, EmptyStatsAreZero) {
    WindowedHistogram h;
    const auto s = h.statsAt(0);
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p50Seconds, 0.0);
    EXPECT_EQ(s.p95Seconds, 0.0);
    EXPECT_EQ(s.maxSeconds, 0.0);
    EXPECT_EQ(s.ratePerSec, 0.0);
}

TEST(WindowedHistogram, CountsAndRateInsideWindow) {
    WindowedHistogram h(/*bucketNs=*/4 * kSec, /*buckets=*/16);  // 64 s window
    for (int i = 0; i < 32; ++i)
        h.observeAt(0.010, static_cast<std::int64_t>(i) * kSec);  // one per second
    const auto s = h.statsAt(31 * kSec);
    EXPECT_EQ(s.count, 32u);
    EXPECT_DOUBLE_EQ(s.windowSeconds, 64.0);
    EXPECT_NEAR(s.ratePerSec, 32.0 / 64.0, 1e-12);
    EXPECT_NEAR(s.totalSeconds, 0.320, 0.320);  // bin-resolution total
}

TEST(WindowedHistogram, OldObservationsRotateOut) {
    WindowedHistogram h(4 * kSec, 16);
    // 10 slow observations at t=0, then 10 fast ones 100 s later: the
    // window has fully rotated, so only the fast batch remains.
    for (int i = 0; i < 10; ++i) h.observeAt(2.0, 0);
    for (int i = 0; i < 10; ++i) h.observeAt(0.001, 100 * kSec);
    const auto s = h.statsAt(100 * kSec);
    EXPECT_EQ(s.count, 10u);
    EXPECT_LT(s.p95Seconds, 0.01);  // the 2 s observations are gone
    EXPECT_LT(s.maxSeconds, 0.01);
}

TEST(WindowedHistogram, PartialRotationKeepsRecentSlots) {
    WindowedHistogram h(4 * kSec, 16);  // 64 s window
    h.observeAt(1.0, 0);                // slot for bucket 0
    h.observeAt(0.002, 50 * kSec);      // 50 s later, still in window
    // At t=60 s both survive (window covers (60-64, 60]).
    EXPECT_EQ(h.statsAt(60 * kSec).count, 2u);
    // At t=70 s the t=0 observation's bucket has left the window.
    const auto s = h.statsAt(70 * kSec);
    EXPECT_EQ(s.count, 1u);
    EXPECT_LT(s.maxSeconds, 0.01);
}

TEST(WindowedHistogram, LateObservationOlderThanWindowIsDropped) {
    WindowedHistogram h(4 * kSec, 16);
    h.observeAt(0.001, 200 * kSec);  // establishes "now"
    h.observeAt(5.0, 0);             // far in the past: dropped, not misfiled
    const auto s = h.statsAt(200 * kSec);
    EXPECT_EQ(s.count, 1u);
    EXPECT_LT(s.maxSeconds, 0.01);
}

TEST(WindowedHistogram, QuantilesAgreeWithExactSortWithinOneBin) {
    WindowedHistogram h(4 * kSec, 16);
    // A spread of latencies covering several decades, all in one window.
    std::vector<double> sample;
    double v = 50e-6;
    for (int i = 0; i < 400; ++i) {
        sample.push_back(v);
        h.observeAt(v, static_cast<std::int64_t>(i % 60) * kSec / 2);
        v *= 1.018;  // 50 us .. ~60 ms geometric ramp
    }
    std::sort(sample.begin(), sample.end());
    const auto s = h.statsAt(30 * kSec);
    ASSERT_EQ(s.count, sample.size());

    const auto exact = [&](double q) {
        return sample[static_cast<std::size_t>(q * (sample.size() - 1))];
    };
    // log2 bins: the histogram quantile is within a factor of sqrt(2) of
    // the exact one (geometric bin midpoint vs true value).
    const double tol = std::sqrt(2.0) + 1e-9;
    for (const auto& [q, got] : {std::pair<double, double>{0.50, s.p50Seconds},
                                 {0.95, s.p95Seconds},
                                 {0.99, s.p99Seconds}}) {
        const double want = exact(q);
        EXPECT_LT(got / want, tol) << "q=" << q;
        EXPECT_GT(got / want, 1.0 / tol) << "q=" << q;
    }
    EXPECT_LE(s.p50Seconds, s.p95Seconds);
    EXPECT_LE(s.p95Seconds, s.p99Seconds);
    EXPECT_LE(s.p99Seconds, s.maxSeconds * (1.0 + 1e-12));
}

TEST(WindowedHistogram, QuantileClampsToObservedMax) {
    WindowedHistogram h(4 * kSec, 16);
    for (int i = 0; i < 100; ++i) h.observeAt(0.010, 0);
    const auto s = h.statsAt(0);
    // All mass in one bin: every quantile equals the (clamped) max, never
    // the bin's upper geometric midpoint above it.
    EXPECT_DOUBLE_EQ(s.p50Seconds, s.maxSeconds);
    EXPECT_DOUBLE_EQ(s.p99Seconds, s.maxSeconds);
    EXPECT_NEAR(s.maxSeconds, 0.010, 0.010 * 0.5);
}

TEST(WindowedHistogram, ResetClearsEverything) {
    WindowedHistogram h(4 * kSec, 16);
    for (int i = 0; i < 10; ++i) h.observeAt(0.5, 0);
    EXPECT_EQ(h.statsAt(0).count, 10u);
    h.reset();
    EXPECT_EQ(h.statsAt(0).count, 0u);
    h.observeAt(0.25, 8 * kSec);  // usable again after reset
    EXPECT_EQ(h.statsAt(8 * kSec).count, 1u);
}

TEST(WindowedHistogram, WallClockOverloadObserves) {
    WindowedHistogram h;
    h.observe(0.001);
    h.observe(0.002);
    const auto s = h.stats();
    EXPECT_EQ(s.count, 2u);
    EXPECT_GT(s.maxSeconds, 0.0);
}

}  // namespace
}  // namespace phlogon::obs
