#include "phlogon/encoding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"

namespace phlogon::logic {
namespace {

TEST(BitSchedule, SlotsAndClamping) {
    const auto s = bitSchedule({1, 0, 1}, 2.0, 10.0);
    EXPECT_EQ(s(9.0), 1);   // before start: first bit
    EXPECT_EQ(s(10.5), 1);  // slot 0
    EXPECT_EQ(s(12.5), 0);  // slot 1
    EXPECT_EQ(s(14.5), 1);  // slot 2
    EXPECT_EQ(s(99.0), 1);  // after end: last bit
}

TEST(BitSchedule, RejectsEmpty) {
    EXPECT_THROW(bitSchedule({}, 1.0), std::invalid_argument);
}

TEST(SyncWaveform, SecondHarmonicAmplitude) {
    const auto& d = testutil::sharedDesign();
    const ckt::Waveform w = syncWaveform(d);
    EXPECT_NEAR(w(0.0), d.syncAmp, 1e-12);
    // Period is 1/(2 f1).
    EXPECT_NEAR(w(1.0 / (2.0 * d.f1)), d.syncAmp, 1e-9);
    EXPECT_NEAR(w(1.0 / (4.0 * d.f1)), -d.syncAmp, 1e-9);
}

TEST(DataCurrentWaveform, PhaseFlipsBetweenBits) {
    const auto& d = testutil::sharedDesign();
    const double bitT = 10.0 / d.f1;
    const ckt::Waveform w = dataCurrentWaveform(d, 1e-3, {1, 0}, bitT);
    // Within a bit the tone is periodic at f1; between bits it flips by half
    // a cycle (the two write phases are 0.5 apart).
    const double t1 = 0.5 * bitT;
    const double t2 = 1.5 * bitT;
    const double cyclesApart = (t2 - t1) * d.f1;
    ASSERT_NEAR(cyclesApart - std::round(cyclesApart), 0.0, 1e-9);
    EXPECT_NEAR(w(t1), -w(t2), 1e-6);
}

TEST(DataSignal, AlignsWithReferenceSignal) {
    const auto& d = testutil::sharedDesign();
    const auto sig = dataSignal(d.reference, {1}, 1.0);
    const auto ref1 = d.reference.refSignal(1);
    for (double t = 0.0; t < 1.0 / d.f1; t += 0.07 / d.f1) EXPECT_NEAR(sig(t), ref1(t), 1e-12);
}

TEST(DataVoltageWaveform, SwingsZeroToVdd) {
    const auto& d = testutil::sharedDesign();
    const ckt::Waveform w = dataVoltageWaveform(d.reference, {1}, 1.0);
    double lo = 1e9, hi = -1e9;
    for (double t = 0.0; t < 1.0 / d.f1; t += 0.01 / d.f1) {
        lo = std::min(lo, w(t));
        hi = std::max(hi, w(t));
    }
    EXPECT_NEAR(lo, 0.0, 1e-3);
    EXPECT_NEAR(hi, d.reference.vdd, 1e-3);
}

TEST(DataInjectionSchedule, OneSegmentPerBit) {
    const auto& d = testutil::sharedDesign();
    const auto sched = dataInjectionSchedule(d, 100e-6, {1, 0, 1}, 2.0, 5.0);
    ASSERT_EQ(sched.size(), 3u);
    EXPECT_DOUBLE_EQ(sched[0].tStart, 5.0);
    EXPECT_DOUBLE_EQ(sched[2].tStart, 9.0);
    for (const auto& seg : sched) EXPECT_EQ(seg.injections.size(), 2u);  // SYNC + D
}

TEST(DataInjectionSchedule, RejectsEmpty) {
    const auto& d = testutil::sharedDesign();
    EXPECT_THROW(dataInjectionSchedule(d, 1e-6, {}, 1.0), std::invalid_argument);
}

TEST(DecodeRoundTrip, RandomBitStreamsSurviveEncodeDecode) {
    // Property: encode a random bit stream as a GAE injection schedule,
    // simulate, decode -> identical bits.
    const auto& d = testutil::sharedDesign();
    const double bitT = 40.0 / d.f1;
    const std::vector<Bits> streams{
        {1, 0, 1}, {0, 1, 1, 0}, {1, 1, 1}, {0, 0, 1, 0, 1},
    };
    for (const Bits& bits : streams) {
        const auto sched = dataInjectionSchedule(d, 150e-6, bits, bitT);
        const auto traj = core::gaeTransient(d.model, d.f1, sched,
                                             d.reference.phaseForBit(bits.front()) + 0.02, 0.0,
                                             static_cast<double>(bits.size()) * bitT);
        ASSERT_TRUE(traj.ok);
        const Bits decoded = decodePhaseTrajectory(d.reference, traj, bitT, bits.size());
        EXPECT_EQ(decoded, bits);
    }
}

}  // namespace
}  // namespace phlogon::logic
