#include "phlogon/flipflop.hpp"

#include <gtest/gtest.h>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"
#include "phlogon/encoding.hpp"
#include "phlogon/serial_adder.hpp"

namespace phlogon::logic {
namespace {

struct DffRun {
    core::PhaseSystem sys;
    PhaseDff ff;
    core::PhaseSystem::Result res;
    double bitT = 0.0;
};

/// Drive a DFF with a D stream (one bit per slot) and the standard
/// 0-then-1-per-slot clock; returns the finished run.
DffRun runDff(const SyncLatchDesign& d, const Bits& dBits) {
    DffRun run;
    const auto& ref = d.reference;
    run.bitT = 50.0 / d.f1;
    Bits clkBits;
    for (std::size_t i = 0; i < dBits.size(); ++i) {
        clkBits.push_back(0);
        clkBits.push_back(1);
    }
    Bits clkBarBits;
    for (int b : clkBits) clkBarBits.push_back(notBit(b));
    const auto dSig = run.sys.addExternal(dataSignal(ref, dBits, run.bitT));
    const auto clk = run.sys.addExternal(dataSignal(ref, clkBits, run.bitT / 2.0));
    const auto clkBar = run.sys.addExternal(dataSignal(ref, clkBarBits, run.bitT / 2.0));
    run.ff = addPhaseDff(run.sys, d, dSig, clk, clkBar);
    run.res = run.sys.simulate(d.f1, 0.0, dBits.size() * run.bitT,
                               num::Vec{ref.phase0 + 0.02, ref.phase0 + 0.02}, 64, 8);
    return run;
}

TEST(PhaseDff, MasterSamplesInSecondHalfSlot) {
    const auto& d = testutil::sharedFsmDesign();
    const Bits dBits{1, 0, 1};
    const DffRun run = runDff(d, dBits);
    ASSERT_TRUE(run.res.ok);
    for (std::size_t k = 0; k < dBits.size(); ++k) {
        const auto ph = dphiAt(run.res, (static_cast<double>(k) + 0.95) * run.bitT);
        EXPECT_EQ(d.reference.decode(ph[0]), dBits[k]) << "slot " << k;
    }
}

TEST(PhaseDff, SlaveDelaysByOneSlot) {
    const auto& d = testutil::sharedFsmDesign();
    const Bits dBits{1, 0, 0, 1};
    const DffRun run = runDff(d, dBits);
    ASSERT_TRUE(run.res.ok);
    // Q2 during the first half of slot k+1 equals D(k).
    for (std::size_t k = 0; k + 1 < dBits.size(); ++k) {
        const auto ph = dphiAt(run.res, (static_cast<double>(k) + 1.45) * run.bitT);
        EXPECT_EQ(d.reference.decode(ph[1]), dBits[k]) << "slot " << k;
    }
}

TEST(PhaseDff, GoldenModelAgreesAcrossRandomStream) {
    const auto& d = testutil::sharedFsmDesign();
    const Bits dBits{0, 1, 1, 0, 1};
    const DffRun run = runDff(d, dBits);
    ASSERT_TRUE(run.res.ok);
    GoldenDff golden(0);
    for (std::size_t k = 0; k < dBits.size(); ++k) {
        golden.update(dBits[k], 0);  // first half: clk=0
        golden.update(dBits[k], 1);  // second half: clk=1
        const auto ph = dphiAt(run.res, (static_cast<double>(k) + 0.98) * run.bitT);
        EXPECT_EQ(d.reference.decode(ph[0]), golden.q1()) << "slot " << k;
    }
}

TEST(PhaseDff, LatchPhasesStayDecodable) {
    // Phase error must never approach the decode boundary (0.25 cycles).
    const auto& d = testutil::sharedFsmDesign();
    const DffRun run = runDff(d, {1, 0, 1, 1});
    ASSERT_TRUE(run.res.ok);
    for (std::size_t k = 1; k < run.res.t.size(); ++k) {
        // Skip transition windows: sample late halves only.
        const double slotPos = std::fmod(run.res.t[k] / (run.bitT / 2.0), 1.0);
        if (slotPos < 0.8) continue;
        for (std::size_t latch = 0; latch < 2; ++latch) {
            const double dphi = run.res.dphi[latch][k];
            const double err = std::min(core::phaseDistance(dphi, d.reference.phase0),
                                        core::phaseDistance(dphi, d.reference.phase1));
            EXPECT_LT(err, 0.15) << "t=" << run.res.t[k] << " latch=" << latch;
        }
    }
}

}  // namespace
}  // namespace phlogon::logic
