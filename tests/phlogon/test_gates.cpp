#include "phlogon/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dcop.hpp"
#include "circuit/dae.hpp"
#include "common/osc_fixture.hpp"

namespace phlogon::logic {
namespace {

TEST(MajorityBit, UnweightedThreeInput) {
    EXPECT_EQ(majorityBit({0, 0, 0}), 0);
    EXPECT_EQ(majorityBit({1, 0, 0}), 0);
    EXPECT_EQ(majorityBit({1, 1, 0}), 1);
    EXPECT_EQ(majorityBit({1, 1, 1}), 1);
}

TEST(MajorityBit, FiveInputXorIdentity) {
    // sum = MAJ(a, b, c, ~cout, ~cout) == a ^ b ^ c for all 8 combinations.
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b)
            for (int c = 0; c < 2; ++c) {
                const int cout = majorityBit({a, b, c});
                const int sum = majorityBit({a, b, c, notBit(cout), notBit(cout)});
                EXPECT_EQ(sum, a ^ b ^ c) << a << b << c;
            }
}

TEST(MajorityBit, WeightsBias) {
    EXPECT_EQ(majorityBit({1, 0, 0}, {5.0, 1.0, 1.0}), 1);
    EXPECT_EQ(majorityBit({0, 1, 1}, {5.0, 1.0, 1.0}), 0);
}

TEST(MajorityBit, Validation) {
    EXPECT_THROW(majorityBit({}), std::invalid_argument);
    EXPECT_THROW(majorityBit({1, 0}, {1.0}), std::invalid_argument);
}

TEST(NotBit, Inverts) {
    EXPECT_EQ(notBit(0), 1);
    EXPECT_EQ(notBit(1), 0);
}

TEST(ClippedFundamental, LinearBelowClip) {
    EXPECT_NEAR(clippedFundamental(0.01, 1.0), 0.01, 1e-4);
}

TEST(ClippedFundamental, SaturatesNearFourOverPi) {
    // Hard clipping a large sine: fundamental -> (4/pi) * clip.
    EXPECT_NEAR(clippedFundamental(100.0, 0.5), 0.5 * 4.0 / std::numbers::pi, 1e-3);
}

TEST(ClippedFundamental, MonotoneInInputAmplitude) {
    double prev = 0.0;
    for (double a = 0.1; a < 5.0; a += 0.3) {
        const double cur = clippedFundamental(a, 0.5);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

TEST(ClippedFundamental, NoClipPassthrough) {
    EXPECT_DOUBLE_EQ(clippedFundamental(2.5, 0.0), 2.5);
}

TEST(PhaseGates, MajorityOfPhasorsPicksMajorityPhase) {
    // Three unit phasors at phase1/phase1/phase0 -> output in phase with the
    // majority (phase1).
    const auto& ref = testutil::sharedDesign().reference;
    core::PhaseSystem sys;
    const auto a = sys.addExternal(ref.refSignal(1));
    const auto b = sys.addExternal(ref.refSignal(1));
    const auto c = sys.addExternal(ref.refSignal(0));
    const auto m = addMajorityGate(sys, {{a, 1.0}, {b, 1.0}, {c, 1.0}}, 1.0);
    const auto r1 = sys.addExternal(ref.refSignal(1));
    // Correlate over one cycle.
    double corr = 0.0;
    for (int i = 0; i < 64; ++i) {
        const double t = i / 64.0 / ref.f1;
        corr += sys.signalValue(m, t, ref.f1, {}) * sys.signalValue(r1, t, ref.f1, {});
    }
    EXPECT_GT(corr, 0.0);
}

TEST(PhaseGates, NotGateInvertsPhase) {
    const auto& ref = testutil::sharedDesign().reference;
    core::PhaseSystem sys;
    const auto a = sys.addExternal(ref.refSignal(1));
    const auto n = addNotGate(sys, a);
    for (double t = 0.0; t < 1.0 / ref.f1; t += 0.11 / ref.f1)
        EXPECT_NEAR(sys.signalValue(n, t, ref.f1, {}), -sys.signalValue(a, t, ref.f1, {}),
                    1e-12);
}

TEST(CircuitGates, MajorityGateCircuitTruthTable) {
    // DC check at the peak instant of the phase-encoding: inputs at 0 / Vdd
    // represent instantaneous bit levels; the two-stage summer must output
    // the majority level.
    const double vdd = 3.0;
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b)
            for (int c = 0; c < 2; ++c) {
                ckt::Netlist nl;
                ckt::addSupply(nl, "vmid", vdd / 2.0);
                nl.addVoltageSource("va", "a", "0", ckt::Waveform::dc(a ? vdd : 0.0));
                nl.addVoltageSource("vb", "b", "0", ckt::Waveform::dc(b ? vdd : 0.0));
                nl.addVoltageSource("vc", "c", "0", ckt::Waveform::dc(c ? vdd : 0.0));
                buildMajorityGateCircuit(nl, "maj", {{"a", 1.0}, {"b", 1.0}, {"c", 1.0}},
                                         "out", "vmid");
                ckt::Dae dae(nl);
                an::DcopOptions opt;
                opt.newton.maxIter = 300;
                const an::DcopResult r = an::dcOperatingPoint(dae, opt);
                ASSERT_TRUE(r.ok) << r.message;
                const double vout = r.x[static_cast<std::size_t>(nl.findNode("out"))];
                if (majorityBit({a, b, c}))
                    EXPECT_GT(vout, vdd / 2.0) << a << b << c;
                else
                    EXPECT_LT(vout, vdd / 2.0) << a << b << c;
            }
}

TEST(CircuitGates, NotGateCircuitInverts) {
    ckt::Netlist nl;
    ckt::addSupply(nl, "vmid", 1.5);
    nl.addVoltageSource("vin", "in", "0", ckt::Waveform::dc(2.5));  // +1.0 above bias
    buildNotGateCircuit(nl, "inv", "in", "out", "vmid");
    ckt::Dae dae(nl);
    const an::DcopResult r = an::dcOperatingPoint(dae);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.x[static_cast<std::size_t>(nl.findNode("out"))], 0.5, 0.01);
}

}  // namespace
}  // namespace phlogon::logic
