#include "phlogon/golden.hpp"

#include <gtest/gtest.h>

#include <random>

namespace phlogon::logic {
namespace {

TEST(GoldenDLatch, TransparentWhenEnabled) {
    GoldenDLatch l(0);
    EXPECT_EQ(l.update(1, 1), 1);
    EXPECT_EQ(l.update(0, 1), 0);
}

TEST(GoldenDLatch, HoldsWhenDisabled) {
    GoldenDLatch l(1);
    EXPECT_EQ(l.update(0, 0), 1);
    EXPECT_EQ(l.q(), 1);
}

TEST(GoldenDff, UpdatesOnFallingEdgeSemantics) {
    GoldenDff ff(0);
    // clk=1: master captures, slave holds.
    ff.update(1, 1);
    EXPECT_EQ(ff.q1(), 1);
    EXPECT_EQ(ff.q2(), 0);
    // clk=0: slave copies master.
    ff.update(0, 0);
    EXPECT_EQ(ff.q2(), 1);
    // Master opaque at clk=0: D changes ignored.
    ff.update(0, 0);
    EXPECT_EQ(ff.q1(), 1);
}

TEST(GoldenFullAdder, TruthTable) {
    // (a, b, c) -> (sum, cout)
    const int expected[8][2] = {{0, 0}, {1, 0}, {1, 0}, {0, 1},
                                {1, 0}, {0, 1}, {0, 1}, {1, 1}};
    for (int i = 0; i < 8; ++i) {
        const int a = (i >> 2) & 1, b = (i >> 1) & 1, c = i & 1;
        const auto [s, co] = goldenFullAdder(a, b, c);
        EXPECT_EQ(s, expected[i][0]) << a << b << c;
        EXPECT_EQ(co, expected[i][1]) << a << b << c;
    }
}

TEST(GoldenSerialAdd, KnownSums) {
    // 3 + 3 = 6: LSB-first 11 + 11 = 011 (3 bits).
    Bits couts;
    const Bits s = goldenSerialAdd({1, 1, 0}, {1, 1, 0}, 0, &couts);
    EXPECT_EQ(s, (Bits{0, 1, 1}));
    EXPECT_EQ(couts, (Bits{1, 1, 0}));
}

TEST(GoldenSerialAdd, InitialCarryHonored) {
    const Bits s = goldenSerialAdd({0, 0}, {0, 0}, 1);
    EXPECT_EQ(s, (Bits{1, 0}));
}

TEST(GoldenSerialAdd, LengthMismatchThrows) {
    EXPECT_THROW(goldenSerialAdd({1}, {1, 0}), std::invalid_argument);
}

TEST(GoldenSerialAdd, MatchesIntegerAdditionProperty) {
    std::mt19937 rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const int width = 1 + static_cast<int>(rng() % 10);
        const unsigned a = rng() & ((1u << width) - 1);
        const unsigned b = rng() & ((1u << width) - 1);
        Bits ab, bb;
        for (int k = 0; k < width; ++k) {
            ab.push_back((a >> k) & 1);
            bb.push_back((b >> k) & 1);
        }
        const Bits s = goldenSerialAdd(ab, bb);
        unsigned sum = 0;
        for (int k = 0; k < width; ++k) sum |= static_cast<unsigned>(s[k]) << k;
        EXPECT_EQ(sum, (a + b) & ((1u << width) - 1)) << "a=" << a << " b=" << b;
    }
}

}  // namespace
}  // namespace phlogon::logic
