#include "phlogon/latch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae_sweep.hpp"
#include "phlogon/encoding.hpp"
#include "phlogon/serial_adder.hpp"

namespace phlogon::logic {
namespace {

TEST(RingOscCharacterization, PipelineProducesValidModel) {
    const auto& osc = testutil::sharedOsc();
    EXPECT_TRUE(osc.pss().ok);
    EXPECT_TRUE(osc.ppv().ok);
    EXPECT_TRUE(osc.model().valid());
    EXPECT_EQ(osc.model().unknownNames()[osc.outputUnknown()], "osc.n1");
}

TEST(BuildSyncLatchCircuit, AddsSyncSource) {
    ckt::Netlist nl;
    const auto nodes = buildSyncLatchCircuit(nl, "lat", ckt::RingOscSpec{}, 100e-6, 9.6e3);
    EXPECT_EQ(nodes.out(), "lat.n1");
    EXPECT_NE(nl.findDevice("lat.sync"), nullptr);
}

TEST(BuildDLatchEnCircuit, TopologyComplete) {
    ckt::Netlist nl;
    const auto latch = buildDLatchEnCircuit(nl, "dl", ckt::RingOscSpec{}, 100e-6, 9.6e3,
                                            ckt::Waveform::dc(0.0), [](double) { return true; });
    EXPECT_NE(nl.findDevice("dl.sync"), nullptr);
    EXPECT_NE(nl.findDevice("dl.id"), nullptr);
    EXPECT_NE(nl.findDevice("dl.en"), nullptr);
    EXPECT_NE(nl.findDevice("dl.id.rout"), nullptr);
    EXPECT_EQ(latch.dSourceNode, "dl.dsrc");
}

class PhaseDLatchCase : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PhaseDLatchCase, TruthTable) {
    // (initial Q, D, CLK) -> expected Q after one write window.
    const auto [q0, dBit, clkBit] = GetParam();
    const auto& d = testutil::sharedFsmDesign();
    const auto& ref = d.reference;
    core::PhaseSystem sys;
    const auto dSig = sys.addExternal(dataSignal(ref, {dBit}, 1.0));
    const auto clkSig = sys.addExternal(dataSignal(ref, {clkBit}, 1.0));
    const auto clkBarSig = sys.addExternal(dataSignal(ref, {notBit(clkBit)}, 1.0));
    addPhaseDLatch(sys, d, dSig, clkSig, clkBarSig);
    const auto r =
        sys.simulate(d.f1, 0.0, 50.0 / d.f1, num::Vec{ref.phaseForBit(q0) + 0.02});
    ASSERT_TRUE(r.ok);
    const int expected = clkBit ? dBit : q0;
    EXPECT_EQ(ref.decode(r.dphi[0].back()), expected)
        << "q0=" << q0 << " D=" << dBit << " CLK=" << clkBit;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, PhaseDLatchCase,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1)));

TEST(PhaseDLatch, HoldPhaseDeviationSmall) {
    // While holding against an adversarial D, the lock phase must stay close
    // to its reference (the residue shifts it but must not defeat decode).
    const auto& d = testutil::sharedFsmDesign();
    const auto& ref = d.reference;
    core::PhaseSystem sys;
    const auto dSig = sys.addExternal(dataSignal(ref, {1}, 1.0));
    const auto clkSig = sys.addExternal(dataSignal(ref, {0}, 1.0));
    const auto clkBarSig = sys.addExternal(dataSignal(ref, {1}, 1.0));
    addPhaseDLatch(sys, d, dSig, clkSig, clkBarSig);
    const auto r = sys.simulate(d.f1, 0.0, 60.0 / d.f1, num::Vec{ref.phase0 + 0.01});
    ASSERT_TRUE(r.ok);
    EXPECT_LT(core::phaseDistance(r.dphi[0].back(), ref.phase0), 0.08);
}

TEST(SrGateInjection, EqualSameBitInputsWriteTheBit) {
    // Fig. 13/14: S and R encoding the same value flip the latch to it.
    const auto& d = testutil::sharedDesign();
    for (int bit : {0, 1}) {
        const core::Injection maj =
            srGateInjection(d, 300e-6, 0.5, 1.0, bit, 1.0, bit, 1.0, 1.0, 1.0);
        const core::Gae gae(d.model, d.f1, {d.sync(), maj}, 512);
        const auto stable = gae.stableEquilibria();
        ASSERT_GE(stable.size(), 1u);
        // The surviving stable phase must be near the written bit.
        double best = 1.0;
        for (const auto& e : stable)
            best = std::min(best, core::phaseDistance(e.dphi, d.reference.phaseForBit(bit)));
        EXPECT_LT(best, 0.05) << "bit " << bit;
        // And the opposite state must be gone (monostable write).
        bool oppositeSurvives = false;
        for (const auto& e : stable)
            if (core::phaseDistance(e.dphi, d.reference.phaseForBit(notBit(bit))) < 0.1)
                oppositeSurvives = true;
        EXPECT_FALSE(oppositeSurvives);
    }
}

TEST(SrGateInjection, OppositeEqualInputsCancelAndHold) {
    const auto& d = testutil::sharedDesign();
    const core::Injection maj =
        srGateInjection(d, 300e-6, 0.5, 1.0, 1, 1.0, 0, 0.01, 0.01, 1.0);
    const core::Gae gae(d.model, d.f1, {d.sync(), maj}, 512);
    // Both SHIL states survive: the latch holds whatever it stored.
    const auto stable = gae.stableEquilibria();
    ASSERT_EQ(stable.size(), 2u);
    EXPECT_LT(core::phaseDistance(stable[0].dphi, d.reference.phase1), 0.06);
    EXPECT_LT(core::phaseDistance(stable[1].dphi, d.reference.phase0), 0.06);
}

TEST(SrGateInjection, SmallWeightsTolerateMismatch) {
    // The paper's Fig. 14 design insight: with w_S = w_R = 0.01 a large S/R
    // magnitude mismatch must NOT flip the latch...
    const auto& d = testutil::sharedDesign();
    const core::Injection weak =
        srGateInjection(d, 300e-6, 0.5, 1.0, 1, 0.4, 0, 0.01, 0.01, 1.0);
    const core::Gae gWeak(d.model, d.f1, {d.sync(), weak}, 512);
    EXPECT_EQ(gWeak.stableEquilibria().size(), 2u);  // still bistable: holds

    // ...while with unit weights the same mismatch destroys one state.
    const core::Injection strong =
        srGateInjection(d, 300e-6, 0.5, 1.0, 1, 0.4, 0, 1.0, 1.0, 1.0);
    const core::Gae gStrong(d.model, d.f1, {d.sync(), strong}, 512);
    EXPECT_LT(gStrong.stableEquilibria().size(), 2u);
}

TEST(HoldErrorSweep, ErrorRateDropsWithSyncAmplitude) {
    // Fig.-style noise-immunity curve: each bistable point runs the batched
    // Monte-Carlo engine; stronger SYNC must lose (weakly) fewer bits.
    const auto& d = testutil::sharedDesign();
    const core::Vec amps{60e-6, 300e-6};
    core::StochasticGaeOptions opt;
    opt.batch = 16;
    const double c = 2e-7;
    const auto curve =
        holdErrorVsSyncAmplitude(d, amps, c, 60.0 / d.model.f0(), 120, opt);
    ASSERT_EQ(curve.size(), 2u);
    for (std::size_t i = 0; i < curve.size(); ++i) {
        EXPECT_DOUBLE_EQ(curve[i].syncAmp, amps[i]);
        ASSERT_TRUE(curve[i].bistable);
        EXPECT_EQ(curve[i].result.trials, 120u);
    }
    EXPECT_GT(curve[0].result.errorRate(), curve[1].result.errorRate());
    EXPECT_GT(curve[0].result.errorRate(), 0.02);
}

TEST(HoldErrorSweep, NonBistablePointsReportZeroTrials) {
    // An amplitude of zero cannot store a bit: the sweep must flag the point
    // instead of running (or crashing in) the Monte-Carlo.
    const auto& d = testutil::sharedDesign();
    const auto curve = holdErrorVsSyncAmplitude(d, core::Vec{0.0, 100e-6}, 1e-9,
                                                30.0 / d.model.f0(), 10);
    ASSERT_EQ(curve.size(), 2u);
    EXPECT_FALSE(curve[0].bistable);
    EXPECT_EQ(curve[0].result.trials, 0u);
    EXPECT_TRUE(curve[1].bistable);
    EXPECT_EQ(curve[1].result.trials, 10u);
}

}  // namespace
}  // namespace phlogon::logic
