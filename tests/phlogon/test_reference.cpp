#include "phlogon/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/osc_fixture.hpp"
#include "core/gae.hpp"
#include "core/gae_sweep.hpp"

namespace phlogon::logic {
namespace {

TEST(PhaseReference, DecodeNearestLockPhase) {
    PhaseReference ref;
    ref.phase1 = 0.1;
    ref.phase0 = 0.6;
    EXPECT_EQ(ref.decode(0.12), 1);
    EXPECT_EQ(ref.decode(0.58), 0);
    EXPECT_EQ(ref.decode(0.95), 1);  // wraps toward 0.1
    EXPECT_EQ(ref.decode(1.62), 0);
}

TEST(PhaseReference, DecodeMarginSymmetricMidpointIsZero) {
    PhaseReference ref;
    ref.phase1 = 0.0;
    ref.phase0 = 0.5;
    EXPECT_NEAR(ref.decodeMargin(0.25), 0.0, 1e-12);
    EXPECT_NEAR(ref.decodeMargin(0.0), 0.5, 1e-12);
}

TEST(PhaseReference, RefWaveformPeaksAtLockAlignment) {
    const PhaseReference& ref = testutil::sharedDesign().reference;
    // REF(bit) peaks when f1 t = dphiPeak - phase_bit.
    for (int bit : {0, 1}) {
        const double tPeak = (ref.dphiPeak - ref.phaseForBit(bit)) / ref.f1;
        EXPECT_NEAR(ref.refValue(tPeak, bit), ref.vdd, 1e-9);
        EXPECT_NEAR(ref.refValue(tPeak + 0.5 / ref.f1, bit), 0.0, 1e-9);
    }
}

TEST(PhaseReference, RefSignalUnitAmplitudeVersion) {
    const PhaseReference& ref = testutil::sharedDesign().reference;
    const auto s1 = ref.refSignal(1);
    const double tPeak = (ref.dphiPeak - ref.phase1) / ref.f1;
    EXPECT_NEAR(s1(tPeak), 1.0, 1e-9);
}

TEST(PhaseReference, OppositeBitsAntipodal) {
    const PhaseReference& ref = testutil::sharedDesign().reference;
    const auto s0 = ref.refSignal(0);
    const auto s1 = ref.refSignal(1);
    for (double t = 0.0; t < 2.0 / ref.f1; t += 0.05 / ref.f1)
        EXPECT_NEAR(s0(t), -s1(t), 1e-9);
}

TEST(DesignSyncLatch, ProducesBistableReference) {
    const SyncLatchDesign& d = testutil::sharedDesign();
    EXPECT_NEAR(core::phaseDistance(d.reference.phase1, d.reference.phase0), 0.5, 1e-3);
    EXPECT_EQ(d.f1, testutil::kF1);
    EXPECT_EQ(d.syncAmp, 100e-6);
}

TEST(DesignSyncLatch, DataInjectionLocksAtItsTarget) {
    // The calibrated D tone, acting alone at zero detuning, must lock the
    // oscillator exactly at the reference phase it encodes.
    const SyncLatchDesign& d = testutil::sharedDesign();
    for (int bit : {0, 1}) {
        const core::Gae gae(d.model, d.model.f0(), {d.dataInjection(50e-6, bit)});
        const auto stable = gae.stableEquilibria();
        ASSERT_EQ(stable.size(), 1u);
        EXPECT_LT(core::phaseDistance(stable[0].dphi, d.reference.phaseForBit(bit)), 2e-3)
            << "bit " << bit;
    }
}

TEST(DesignSyncLatch, CombinedSyncAndDataKeepTarget) {
    const SyncLatchDesign& d = testutil::sharedDesign();
    const core::Gae gae(d.model, d.model.f0(), {d.sync(), d.dataInjection(150e-6, 1)});
    const auto stable = gae.stableEquilibria();
    ASSERT_GE(stable.size(), 1u);
    double best = 1.0;
    for (const auto& e : stable)
        best = std::min(best, core::phaseDistance(e.dphi, d.reference.phase1));
    EXPECT_LT(best, 5e-3);
}

TEST(DesignSyncLatch, ThrowsWhenShilImpossible) {
    // A symmetric inverter ring has no PPV 2nd harmonic: SHIL cannot happen.
    ckt::Netlist nl;
    ckt::RingOscSpec spec;
    spec.pmos = spec.nmos;
    ckt::buildRingOscillator(nl, "osc", spec);
    ckt::Dae dae(nl);
    an::PssOptions popt;
    popt.freqHint = 14e3;
    const an::PssResult pss = an::shootingPss(dae, popt);
    ASSERT_TRUE(pss.ok);
    const an::PpvResult ppv = an::extractPpvTimeDomain(dae, pss);
    ASSERT_TRUE(ppv.ok);
    const auto model = core::PpvModel::build(
        pss, ppv, static_cast<std::size_t>(nl.findNode("osc.n1")), nl.unknownNames());
    // With |V2| ~ 0 the locking range is essentially zero: any real detuning
    // leaves no stable SHIL phases.
    EXPECT_THROW(designSyncLatch(model, model.outputUnknown(), pss.f0 * 1.001, 100e-6),
                 std::runtime_error);
}

TEST(DesignSyncLatch, InputPhaseForRoundTrip) {
    const SyncLatchDesign& d = testutil::sharedDesign();
    // chi(target) = offset - target (mod 1).
    for (double target : {0.0, 0.2, 0.7}) {
        const double chi = d.inputPhaseFor(target);
        EXPECT_NEAR(num::wrap01(chi + target), num::wrap01(d.inputPhaseOffset), 1e-12);
    }
}

TEST(DesignSyncLatch, SignalCouplingShiftBitIndependent) {
    // Writing through the shift must target both bits correctly: verified
    // via GAE on REF-shaped injections shifted by the coupling delay.
    const SyncLatchDesign& d = testutil::sharedDesign();
    const double shift = d.signalCouplingShift();
    for (int bit : {0, 1}) {
        // REF-aligned tone for `bit`, delayed by `shift`: chi = chi_sig + shift.
        const double chiSig = d.reference.dphiPeak - d.reference.phaseForBit(bit);
        const core::Injection inj =
            core::Injection::tone(d.injUnknown, 50e-6, 1, num::wrap01(chiSig + shift));
        const core::Gae gae(d.model, d.model.f0(), {inj});
        const auto stable = gae.stableEquilibria();
        ASSERT_EQ(stable.size(), 1u);
        EXPECT_LT(core::phaseDistance(stable[0].dphi, d.reference.phaseForBit(bit)), 2e-3)
            << "bit " << bit;
    }
}

}  // namespace
}  // namespace phlogon::logic
