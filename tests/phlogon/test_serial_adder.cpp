#include "phlogon/serial_adder.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/osc_fixture.hpp"
#include "phlogon/encoding.hpp"

namespace phlogon::logic {
namespace {

struct AdderRun {
    core::PhaseSystem sys;
    PhaseSerialAdder adder;
    core::PhaseSystem::Result res;
};

AdderRun runAdder(const SyncLatchDesign& d, const Bits& a, const Bits& b) {
    AdderRun run;
    run.adder = buildPhaseSerialAdder(run.sys, d, a, b);
    const auto& ref = d.reference;
    run.res = run.sys.simulate(d.f1, 0.0, a.size() * run.adder.bitPeriod,
                               num::Vec{ref.phase0 + 0.02, ref.phase0 + 0.02}, 64, 8);
    return run;
}

TEST(PhaseSerialAdder, BuildValidatesStreams) {
    core::PhaseSystem sys;
    EXPECT_THROW(buildPhaseSerialAdder(sys, testutil::sharedFsmDesign(), {1, 0}, {1}),
                 std::invalid_argument);
    core::PhaseSystem sys2;
    EXPECT_THROW(buildPhaseSerialAdder(sys2, testutil::sharedFsmDesign(), {}, {}),
                 std::invalid_argument);
}

TEST(PhaseSerialAdder, StructureHasTwoLatches) {
    core::PhaseSystem sys;
    buildPhaseSerialAdder(sys, testutil::sharedFsmDesign(), {0, 1}, {0, 1});
    EXPECT_EQ(sys.latchCount(), 2u);
}

TEST(PhaseSerialAdder, PaperCaseAEqualsBEquals101) {
    // The paper's Fig. 16 adds a = b = 101 sequentially (plus a leading
    // reset slot clearing the carry).
    const auto& d = testutil::sharedFsmDesign();
    const Bits a{0, 1, 0, 1}, b{0, 1, 0, 1};
    AdderRun run = runAdder(d, a, b);
    ASSERT_TRUE(run.res.ok);
    const auto [sums, couts] = decodeSerialAdderRun(run.sys, run.adder, run.res, d.reference);
    Bits gc;
    const Bits gs = goldenSerialAdd(a, b, 0, &gc);
    EXPECT_EQ(sums, gs);
    EXPECT_EQ(couts, gc);
}

class SerialAdderStreams : public ::testing::TestWithParam<std::pair<Bits, Bits>> {};

TEST_P(SerialAdderStreams, MatchesGoldenModel) {
    const auto& d = testutil::sharedFsmDesign();
    const auto& [a, b] = GetParam();
    AdderRun run = runAdder(d, a, b);
    ASSERT_TRUE(run.res.ok);
    const auto [sums, couts] = decodeSerialAdderRun(run.sys, run.adder, run.res, d.reference);
    Bits gc;
    const Bits gs = goldenSerialAdd(a, b, 0, &gc);
    EXPECT_EQ(sums, gs);
    EXPECT_EQ(couts, gc);
}

INSTANTIATE_TEST_SUITE_P(
    CarryPatterns, SerialAdderStreams,
    ::testing::Values(std::make_pair(Bits{0, 1, 1, 0}, Bits{0, 1, 0, 1}),
                      std::make_pair(Bits{0, 1, 1, 1, 1}, Bits{0, 1, 0, 0, 0}),  // carry chain
                      std::make_pair(Bits{0, 0, 0, 0}, Bits{0, 0, 0, 0}),
                      std::make_pair(Bits{0, 1, 0, 0, 1}, Bits{0, 0, 1, 0, 1}),
                      std::make_pair(Bits{0, 1, 1}, Bits{0, 1, 1})));

TEST(PhaseSerialAdder, RandomStreamsProperty) {
    // Property sweep: random 5-bit additions (leading reset slot).
    const auto& d = testutil::sharedFsmDesign();
    std::mt19937 rng(3);
    for (int trial = 0; trial < 3; ++trial) {
        Bits a{0}, b{0};
        for (int k = 0; k < 4; ++k) {
            a.push_back(static_cast<int>(rng() & 1));
            b.push_back(static_cast<int>(rng() & 1));
        }
        AdderRun run = runAdder(d, a, b);
        ASSERT_TRUE(run.res.ok);
        const auto [sums, couts] =
            decodeSerialAdderRun(run.sys, run.adder, run.res, d.reference);
        Bits gc;
        const Bits gs = goldenSerialAdd(a, b, 0, &gc);
        EXPECT_EQ(sums, gs) << "trial " << trial;
        EXPECT_EQ(couts, gc) << "trial " << trial;
    }
}

TEST(DphiAt, InterpolatesAndClamps) {
    core::PhaseSystem::Result res;
    res.ok = true;
    res.t = {0.0, 1.0};
    res.dphi = {{0.0, 1.0}, {2.0, 4.0}};
    const num::Vec mid = dphiAt(res, 0.5);
    EXPECT_NEAR(mid[0], 0.5, 1e-12);
    EXPECT_NEAR(mid[1], 3.0, 1e-12);
    EXPECT_NEAR(dphiAt(res, -5.0)[1], 2.0, 1e-12);
    EXPECT_NEAR(dphiAt(res, 5.0)[1], 4.0, 1e-12);
}

TEST(DecodeSignalBit, DecodesPureReferences) {
    const auto& d = testutil::sharedFsmDesign();
    core::PhaseSystem sys;
    const auto s1 = sys.addExternal(d.reference.refSignal(1));
    const auto s0 = sys.addExternal(d.reference.refSignal(0));
    EXPECT_EQ(decodeSignalBit(sys, s1, d.reference, 1e-3, {}), 1);
    EXPECT_EQ(decodeSignalBit(sys, s0, d.reference, 1e-3, {}), 0);
}

}  // namespace
}  // namespace phlogon::logic
