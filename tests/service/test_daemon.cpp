// Daemon: request dispatch, control surface, observability envelope, and
// the malformed-request hardening satellite — truncated frames, oversized
// prefixes and invalid JSON must produce structured errors (or a clean
// disconnect) while the daemon keeps serving, with no crash or leak (the
// whole suite runs under the ASan/UBSan CI job).

#include "service/daemon.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"

using namespace phlogon;
namespace json = io::json;
namespace fs = std::filesystem;

namespace {

fs::path freshDir(const std::string& name) {
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string sockPath(const std::string& tag) {
    return "/tmp/phlogon_test_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

json::Value dispatchJson(svc::Daemon& d, const std::string& payload) {
    const json::ParseResult r = json::parse(d.dispatch(payload));
    EXPECT_TRUE(r.ok) << r.error;
    return r.value;
}

/// Daemon on a Unix socket with cache + checkpoints in temp dirs.
struct DaemonFixture {
    fs::path cacheDir;
    fs::path ckptDir;
    svc::DaemonOptions opt;
    svc::Daemon daemon;

    explicit DaemonFixture(const std::string& tag, bool withSocket = true)
        : cacheDir(freshDir("phlogon_daemon_" + tag + "_cache")),
          ckptDir(freshDir("phlogon_daemon_" + tag + "_ckpt")),
          opt(makeOptions(tag, withSocket, cacheDir, ckptDir)),
          daemon(opt) {
        EXPECT_TRUE(daemon.start()) << daemon.lastError();
    }
    ~DaemonFixture() {
        daemon.stop(svc::JobQueue::Shutdown::Drain);
        fs::remove_all(cacheDir);
        fs::remove_all(ckptDir);
        if (!opt.socketPath.empty()) fs::remove(opt.socketPath);
    }

    static svc::DaemonOptions makeOptions(const std::string& tag, bool withSocket,
                                          const fs::path& cache, const fs::path& ckpt) {
        svc::DaemonOptions o;
        if (withSocket) o.socketPath = sockPath(tag);
        o.queue.workers = 2;
        o.cacheDir = cache;
        o.checkpointDir = ckpt;
        return o;
    }
};

}  // namespace

TEST(Daemon, PingAndStatus) {
    DaemonFixture f("ping", /*withSocket=*/false);
    const json::Value pong = dispatchJson(f.daemon, R"({"type": "ping", "id": 9})");
    EXPECT_TRUE(pong.fieldBool("ok", false));
    EXPECT_DOUBLE_EQ(pong.field("id")->numberOr(0), 9.0);

    const json::Value status = dispatchJson(f.daemon, R"({"type": "status", "id": 1})");
    ASSERT_TRUE(status.fieldBool("ok", false));
    const json::Value* s = status.field("status");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->field("queue")->fieldNumber("workers", 0), 2.0);
    EXPECT_TRUE(s->field("cache")->fieldBool("enabled", false));
    EXPECT_EQ(s->field("types")->size(), 4u);
}

TEST(Daemon, UnknownTypeAndBadParamsAreStructuredErrors) {
    DaemonFixture f("err", /*withSocket=*/false);
    const json::Value unknown = dispatchJson(f.daemon, R"({"type": "no-such-op", "id": 1})");
    EXPECT_FALSE(unknown.fieldBool("ok", true));
    EXPECT_EQ(unknown.field("error")->fieldString("code", ""), "unknown-type");

    const json::Value bad = dispatchJson(
        f.daemon, R"({"type": "characterize-latch", "id": 2, "params": {"stages": 4}})");
    EXPECT_FALSE(bad.fieldBool("ok", true));
    EXPECT_EQ(bad.field("error")->fieldString("code", ""), "bad-params");
    // The message names the offending parameter.
    EXPECT_NE(bad.field("error")->fieldString("message", "").find("stages"), std::string::npos);
}

TEST(Daemon, AnalysisJobOverSocketWithObsEnvelope) {
    DaemonFixture f("job");
    const int fd = svc::connectUnix(f.opt.socketPath);
    ASSERT_GE(fd, 0);
    const std::string reply =
        svc::roundTrip(fd, R"({"type": "characterize-latch", "id": 11})");
    const json::ParseResult r = json::parse(reply);
    ASSERT_TRUE(r.ok) << reply;
    ASSERT_TRUE(r.value.fieldBool("ok", false)) << reply;
    const json::Value* job = r.value.field("job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->fieldString("state", ""), "done");
    EXPECT_GT(job->field("result")->fieldNumber("f0", 0), 9000.0);
    // Observability envelope: cumulative queue/cache metrics ride on every
    // response.
    const json::Value* obs = r.value.field("obs");
    ASSERT_NE(obs, nullptr);
    EXPECT_GE(obs->fieldNumber("cacheMisses", -1), 1.0);

    // Repeat on the same connection: served from the artifact cache.
    const json::ParseResult r2 =
        json::parse(svc::roundTrip(fd, R"({"type": "characterize-latch", "id": 12})"));
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(r2.value.field("job")->field("result")->field("cache")->fieldString("outcome", ""),
              "hit");
    ::close(fd);
}

TEST(Daemon, NoWaitReturnsQueuedJobQueryableLater) {
    DaemonFixture f("nowait", /*withSocket=*/false);
    const json::Value sub = dispatchJson(
        f.daemon, R"({"type": "characterize-latch", "id": 1, "wait": false})");
    ASSERT_TRUE(sub.fieldBool("ok", false));
    const double jobId = sub.fieldNumber("job", 0);
    ASSERT_GT(jobId, 0);
    // wait via the queue, then fetch the terminal snapshot by id.
    f.daemon.queue().wait(static_cast<std::uint64_t>(jobId));
    const json::Value st = dispatchJson(
        f.daemon, "{\"type\": \"job-status\", \"id\": 2, \"params\": {\"job\": " +
                      std::to_string(static_cast<std::uint64_t>(jobId)) + "}}");
    ASSERT_TRUE(st.fieldBool("ok", false));
    EXPECT_EQ(st.field("job")->fieldString("state", ""), "done");
}

TEST(Daemon, ListJobsAndCancelUnknown) {
    DaemonFixture f("list", /*withSocket=*/false);
    dispatchJson(f.daemon, R"({"type": "characterize-latch", "id": 1})");
    const json::Value list = dispatchJson(f.daemon, R"({"type": "list-jobs", "id": 2})");
    ASSERT_TRUE(list.fieldBool("ok", false));
    EXPECT_GE(list.field("jobs")->size(), 1u);

    const json::Value cancel = dispatchJson(
        f.daemon, R"({"type": "cancel", "id": 3, "params": {"job": 424242}})");
    EXPECT_FALSE(cancel.fieldBool("ok", true));
}

// ---- malformed-request hardening ------------------------------------------

TEST(Daemon, MalformedJsonGetsErrorAndConnectionSurvives) {
    DaemonFixture f("badjson");
    const int fd = svc::connectUnix(f.opt.socketPath);
    ASSERT_GE(fd, 0);
    // Invalid JSON inside a well-formed frame: framing is intact, so the
    // error is structured and the connection stays usable.
    const json::ParseResult bad = json::parse(svc::roundTrip(fd, "{invalid json"));
    ASSERT_TRUE(bad.ok);
    EXPECT_FALSE(bad.value.fieldBool("ok", true));
    EXPECT_EQ(bad.value.field("error")->fieldString("code", ""), "bad-json");

    // Hostile deep nesting: the parser's depth bound turns it into the
    // same structured error instead of a stack overflow.
    const json::ParseResult deep = json::parse(svc::roundTrip(fd, std::string(4096, '[')));
    ASSERT_TRUE(deep.ok);
    EXPECT_EQ(deep.value.field("error")->fieldString("code", ""), "bad-json");

    // The same connection still serves valid requests.
    const json::ParseResult pong = json::parse(svc::roundTrip(fd, R"({"type": "ping"})"));
    ASSERT_TRUE(pong.ok);
    EXPECT_TRUE(pong.value.fieldBool("ok", false));
    ::close(fd);
}

TEST(Daemon, OversizedPrefixGetsErrorThenDisconnect) {
    DaemonFixture f("toolarge");
    const int fd = svc::connectUnix(f.opt.socketPath);
    ASSERT_GE(fd, 0);
    const std::uint8_t prefix[4] = {0xff, 0xff, 0xff, 0x7f};  // ~2 GiB claim
    ASSERT_EQ(::write(fd, prefix, 4), 4);
    // Best-effort structured error, then the daemon drops the connection
    // (an untrusted prefix cannot be resynchronized).
    const svc::FrameRead r = svc::readFrame(fd);
    ASSERT_TRUE(r.ok());
    const json::ParseResult err = json::parse(r.payload);
    ASSERT_TRUE(err.ok);
    EXPECT_EQ(err.value.field("error")->fieldString("code", ""), "frame-too-large");
    EXPECT_EQ(svc::readFrame(fd).status, svc::FrameStatus::Eof);
    ::close(fd);

    // The daemon keeps serving new connections afterwards.
    const int fd2 = svc::connectUnix(f.opt.socketPath);
    ASSERT_GE(fd2, 0);
    const json::ParseResult pong = json::parse(svc::roundTrip(fd2, R"({"type": "ping"})"));
    ASSERT_TRUE(pong.ok);
    EXPECT_TRUE(pong.value.fieldBool("ok", false));
    ::close(fd2);
    EXPECT_GE(f.daemon.stats().badFrames, 1u);
}

TEST(Daemon, TruncatedFrameGetsErrorThenDisconnect) {
    DaemonFixture f("trunc");
    const int fd = svc::connectUnix(f.opt.socketPath);
    ASSERT_GE(fd, 0);
    const std::uint8_t prefix[4] = {100, 0, 0, 0};  // announce 100 bytes
    ASSERT_EQ(::write(fd, prefix, 4), 4);
    ASSERT_EQ(::write(fd, "short", 5), 5);
    ::shutdown(fd, SHUT_WR);  // half-close: stream ends mid-payload
    const svc::FrameRead r = svc::readFrame(fd);
    ASSERT_TRUE(r.ok());
    const json::ParseResult err = json::parse(r.payload);
    ASSERT_TRUE(err.ok);
    EXPECT_EQ(err.value.field("error")->fieldString("code", ""), "truncated-frame");
    ::close(fd);
    EXPECT_GE(f.daemon.stats().badFrames, 1u);
}

TEST(Daemon, AbruptDisconnectLeavesDaemonServing) {
    DaemonFixture f("abrupt");
    for (int i = 0; i < 5; ++i) {
        const int fd = svc::connectUnix(f.opt.socketPath);
        ASSERT_GE(fd, 0);
        ::close(fd);  // connect-and-slam
    }
    const int fd = svc::connectUnix(f.opt.socketPath);
    ASSERT_GE(fd, 0);
    const json::ParseResult pong = json::parse(svc::roundTrip(fd, R"({"type": "ping"})"));
    ASSERT_TRUE(pong.ok);
    EXPECT_TRUE(pong.value.fieldBool("ok", false));
    ::close(fd);
}

TEST(Daemon, QueueFullRejectionCarriesRetryAfter) {
    const fs::path cacheDir = freshDir("phlogon_daemon_full_cache");
    svc::DaemonOptions opt;
    opt.queue.workers = 1;
    opt.queue.maxDepth = 1;
    opt.queue.retryAfterMs = 77;
    opt.cacheDir = cacheDir;
    svc::Daemon daemon(opt);
    // No listener: dispatch() drives the same submit path.
    ASSERT_TRUE(daemon.start()) << daemon.lastError();
    // Occupy the lone worker with a long checkpoint-pollable job, ...
    const json::ParseResult first = json::parse(daemon.dispatch(
        R"({"type": "hold-error-mc", "id": 1, "wait": false,
            "params": {"trials": 100000, "chunk": 10, "holdCycles": 200}})"));
    ASSERT_TRUE(first.ok);
    ASSERT_TRUE(first.value.fieldBool("ok", false));
    while (daemon.queue().stats().running == 0) std::this_thread::yield();
    // ... fill the single queue slot, ...
    const json::ParseResult filler = json::parse(daemon.dispatch(
        R"({"type": "characterize-latch", "id": 2, "wait": false})"));
    ASSERT_TRUE(filler.ok);
    ASSERT_TRUE(filler.value.fieldBool("ok", false));
    // ... and the next submission is shed with the retry hint.
    const json::ParseResult rejected = json::parse(daemon.dispatch(
        R"({"type": "characterize-latch", "id": 3, "wait": false})"));
    ASSERT_TRUE(rejected.ok);
    ASSERT_FALSE(rejected.value.fieldBool("ok", true));
    EXPECT_EQ(rejected.value.field("error")->fieldString("code", ""), "queue-full");
    EXPECT_DOUBLE_EQ(rejected.value.fieldNumber("retryAfterMs", 0), 77.0);
    daemon.stop(svc::JobQueue::Shutdown::Checkpoint);
    fs::remove_all(cacheDir);
}

TEST(Daemon, ShutdownRequestStopsRun) {
    DaemonFixture f("shutdown", /*withSocket=*/false);
    const json::Value ack =
        dispatchJson(f.daemon, R"({"type": "shutdown", "id": 1, "params": {"mode": "drain"}})");
    EXPECT_TRUE(ack.fieldBool("ok", false));
    // run() observes the requested stop and returns promptly.
    EXPECT_EQ(f.daemon.run(), 0);
    EXPECT_FALSE(f.daemon.running());
}

// ---- envelope opt-in, windowed latency, metrics request --------------------

#ifndef PHLOGON_NO_OBS

TEST(Daemon, FullRunReportIsOptInPerRequest) {
    DaemonFixture f("envelope", /*withSocket=*/false);
    obs::setMetricsEnabled(true);

    // Default envelope: cheap counters only, never the full RunReport —
    // building + JSON-parsing the report on every response was a measurable
    // tax on the saturation bench (the regression this test pins down).
    const json::Value basic =
        dispatchJson(f.daemon, R"({"type": "characterize-latch", "id": 1})");
    ASSERT_TRUE(basic.fieldBool("ok", false));
    const json::Value* obsEnv = basic.field("obs");
    ASSERT_NE(obsEnv, nullptr);
    EXPECT_GE(obsEnv->fieldNumber("cacheMisses", -1), 0.0);
    EXPECT_EQ(obsEnv->field("report"), nullptr);

    // "envelope": "full" opts in; the report rides under obs.report.
    const json::Value full = dispatchJson(
        f.daemon, R"({"type": "characterize-latch", "id": 2, "envelope": "full"})");
    ASSERT_TRUE(full.fieldBool("ok", false));
    const json::Value* fullEnv = full.field("obs");
    ASSERT_NE(fullEnv, nullptr);
    const json::Value* report = fullEnv->field("report");
    ASSERT_NE(report, nullptr);
    EXPECT_NE(report->field("counters"), nullptr);

    obs::setMetricsEnabled(false);

    // With metrics off, even an opted-in request gets the cheap envelope.
    const json::Value off = dispatchJson(
        f.daemon, R"({"type": "ping", "id": 3, "envelope": "full"})");
    ASSERT_TRUE(off.fieldBool("ok", false));
    EXPECT_EQ(off.field("obs")->field("report"), nullptr);
}

TEST(Daemon, StatusWindowedLatencyMovesWithInjectedSlowJob) {
    DaemonFixture f("window", /*withSocket=*/false);

    // A quick MC job seeds the per-type window.
    const json::Value quick = dispatchJson(
        f.daemon,
        R"({"type": "hold-error-mc", "id": 1,
            "params": {"trials": 10, "chunk": 10, "holdCycles": 100}})");
    ASSERT_TRUE(quick.fieldBool("ok", false));
    const json::Value st1 = dispatchJson(f.daemon, R"({"type": "status", "id": 2})");
    const json::Value* w1 = st1.field("status")->field("window")->field("hold-error-mc");
    ASSERT_NE(w1, nullptr);
    EXPECT_GE(w1->fieldNumber("n", 0), 1.0);
    const double p95Before = w1->fieldNumber("p95Ms", 0.0);
    EXPECT_GT(p95Before, 0.0);

    // Inject a much slower job of the same type; the windowed p95 must move
    // (lifetime-only aggregates would barely budge).
    const json::Value slow = dispatchJson(
        f.daemon,
        R"({"type": "hold-error-mc", "id": 3,
            "params": {"trials": 120, "chunk": 40, "holdCycles": 400}})");
    ASSERT_TRUE(slow.fieldBool("ok", false));
    const json::Value st2 = dispatchJson(f.daemon, R"({"type": "status", "id": 4})");
    const json::Value* w2 = st2.field("status")->field("window")->field("hold-error-mc");
    ASSERT_NE(w2, nullptr);
    EXPECT_GE(w2->fieldNumber("n", 0), 2.0);
    EXPECT_GT(w2->fieldNumber("p95Ms", 0.0), p95Before * 1.5);
    EXPECT_GE(w2->fieldNumber("p99Ms", 0.0), w2->fieldNumber("p95Ms", 0.0));
    EXPECT_GE(w2->fieldNumber("queueWaitP95Ms", -1.0), 0.0);

    // The whole-request window and the recent-jobs ring moved with it.
    const json::Value* lat = st2.field("status")->field("latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_GE(lat->fieldNumber("count", 0), 2.0);
    EXPECT_GT(lat->fieldNumber("p95Ms", 0.0), 0.0);
    const json::Value* recent = st2.field("status")->field("recent");
    ASSERT_NE(recent, nullptr);
    EXPECT_GE(recent->size(), 2u);
}

TEST(Daemon, MetricsRequestReturnsJsonAndPrometheus) {
    DaemonFixture f("metrics", /*withSocket=*/false);
    obs::setMetricsEnabled(true);
    dispatchJson(f.daemon, R"({"type": "characterize-latch", "id": 1})");

    const json::Value m = dispatchJson(f.daemon, R"({"type": "metrics", "id": 2})");
    ASSERT_TRUE(m.fieldBool("ok", false));
    ASSERT_NE(m.field("metrics"), nullptr);
    EXPECT_NE(m.field("metrics")->field("counters"), nullptr);
    EXPECT_NE(m.field("metrics")->field("histograms"), nullptr);
    ASSERT_NE(m.field("status"), nullptr);

    const std::string prom = m.fieldString("prometheus", "");
    ASSERT_FALSE(prom.empty());
    EXPECT_NE(prom.find("phlogon_service_requests_total"), std::string::npos);
    EXPECT_NE(prom.find("phlogon_service_queue_depth"), std::string::npos);
    EXPECT_NE(prom.find("phlogon_service_request_seconds{quantile=\"0.95\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("phlogon_service_job_seconds{type=\"characterize-latch\""),
              std::string::npos);
    obs::setMetricsEnabled(false);
}

TEST(Daemon, TraceIdRidesOnSnapshotsAndRecentRing) {
    DaemonFixture f("traceid", /*withSocket=*/false);
    const json::Value done = dispatchJson(
        f.daemon,
        R"({"type": "characterize-latch", "id": 1, "traceId": "ride-42"})");
    ASSERT_TRUE(done.fieldBool("ok", false));
    EXPECT_EQ(done.field("job")->fieldString("traceId", ""), "ride-42");

    const json::Value st = dispatchJson(f.daemon, R"({"type": "status", "id": 2})");
    const json::Value* recent = st.field("status")->field("recent");
    ASSERT_NE(recent, nullptr);
    ASSERT_GE(recent->size(), 1u);
    bool saw = false;
    for (const json::Value& j : *recent->arr)
        if (j.fieldString("traceId", "") == "ride-42") saw = true;
    EXPECT_TRUE(saw);
}

#endif  // PHLOGON_NO_OBS
