// JobQueue: admission control, priority ordering, cooperative
// cancellation, drain-vs-checkpoint shutdown.

#include "service/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace phlogon;
namespace json = io::json;

namespace {

json::Value numResult(double v) {
    json::Value r = json::Value::object();
    r.set("v", json::Value::number(v));
    return r;
}

/// A gate the test opens to release job bodies blocked on it.
struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    void release() {
        std::lock_guard<std::mutex> lk(mu);
        open = true;
        cv.notify_all();
    }
    void wait() {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return open; });
    }
};

}  // namespace

TEST(JobQueue, RunsJobToCompletion) {
    svc::JobQueue q;
    const svc::SubmitResult s =
        q.submit("t", 0, [](svc::JobContext&) { return numResult(42.0); });
    ASSERT_TRUE(s.accepted);
    const auto snap = q.wait(s.id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, svc::JobState::Done);
    EXPECT_DOUBLE_EQ(snap->result.fieldNumber("v", 0), 42.0);
    EXPECT_GE(snap->runMs, 0.0);
    q.shutdown(svc::JobQueue::Shutdown::Drain);
}

TEST(JobQueue, ExceptionFailsJobWithMessage) {
    svc::JobQueue q;
    const auto s = q.submit("t", 0, [](svc::JobContext&) -> json::Value {
        throw std::runtime_error("boom");
    });
    const auto snap = q.wait(s.id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, svc::JobState::Failed);
    EXPECT_EQ(snap->error, "boom");
    EXPECT_EQ(q.stats().failed, 1u);
    q.shutdown(svc::JobQueue::Shutdown::Drain);
}

TEST(JobQueue, PriorityOrdersBacklogFifoWithinClass) {
    svc::JobQueue::Options opt;
    opt.workers = 1;
    svc::JobQueue q(opt);
    Gate gate;
    std::mutex mu;
    std::vector<int> order;
    // Plug the single worker so the backlog builds up.
    const auto plug = q.submit("plug", 0, [&](svc::JobContext&) {
        gate.wait();
        return numResult(0);
    });
    const auto enqueue = [&](int tag, int prio) {
        return q
            .submit("t", prio,
                    [&, tag](svc::JobContext&) {
                        std::lock_guard<std::mutex> lk(mu);
                        order.push_back(tag);
                        return numResult(tag);
                    })
            .id;
    };
    // Submission order: low, high, low, high — execution must be
    // priority-major, FIFO within a class.
    const auto a = enqueue(1, 0);
    const auto b = enqueue(2, 5);
    const auto c = enqueue(3, 0);
    const auto d = enqueue(4, 5);
    gate.release();
    for (const auto id : {a, b, c, d}) q.wait(id);
    q.wait(plug.id);
    EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
    q.shutdown(svc::JobQueue::Shutdown::Drain);
}

TEST(JobQueue, BoundedDepthRejectsWithRetryAfter) {
    svc::JobQueue::Options opt;
    opt.workers = 1;
    opt.maxDepth = 2;
    opt.retryAfterMs = 123;
    svc::JobQueue q(opt);
    Gate gate;
    const auto plug = q.submit("plug", 0, [&](svc::JobContext&) {
        gate.wait();
        return numResult(0);
    });
    ASSERT_TRUE(plug.accepted);
    // Wait until the plug actually occupies the worker, so depth counts
    // only queued jobs.
    while (q.stats().running == 0) std::this_thread::yield();
    EXPECT_TRUE(q.submit("t", 0, [](svc::JobContext&) { return numResult(1); }).accepted);
    EXPECT_TRUE(q.submit("t", 0, [](svc::JobContext&) { return numResult(2); }).accepted);
    const svc::SubmitResult rejected =
        q.submit("t", 0, [](svc::JobContext&) { return numResult(3); });
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.retryAfterMs, 123);
    EXPECT_EQ(q.stats().rejected, 1u);
    gate.release();
    q.shutdown(svc::JobQueue::Shutdown::Drain);
    EXPECT_EQ(q.stats().completed, 3u);
}

TEST(JobQueue, CancelQueuedJobNeverRuns) {
    svc::JobQueue::Options opt;
    opt.workers = 1;
    svc::JobQueue q(opt);
    Gate gate;
    std::atomic<bool> ran{false};
    const auto plug = q.submit("plug", 0, [&](svc::JobContext&) {
        gate.wait();
        return numResult(0);
    });
    while (q.stats().running == 0) std::this_thread::yield();
    const auto victim = q.submit("t", 0, [&](svc::JobContext&) {
        ran = true;
        return numResult(1);
    });
    EXPECT_TRUE(q.cancel(victim.id));
    gate.release();
    q.wait(plug.id);
    const auto snap = q.wait(victim.id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, svc::JobState::Cancelled);
    EXPECT_FALSE(ran);
    EXPECT_FALSE(q.cancel(victim.id));  // already terminal
    EXPECT_FALSE(q.cancel(99999));      // unknown id
    q.shutdown(svc::JobQueue::Shutdown::Drain);
}

TEST(JobQueue, CancelRunningJobStopsCooperatively) {
    svc::JobQueue q;
    std::atomic<bool> started{false};
    const auto s = q.submit("t", 0, [&](svc::JobContext& ctx) {
        started = true;
        while (!ctx.shouldStop()) std::this_thread::yield();
        ctx.markStoppedEarly();
        return numResult(-1);  // the "partial checkpointed result"
    });
    while (!started) std::this_thread::yield();
    EXPECT_TRUE(q.cancel(s.id));
    const auto snap = q.wait(s.id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, svc::JobState::Cancelled);
    // The partial result the body returned is preserved.
    EXPECT_DOUBLE_EQ(snap->result.fieldNumber("v", 0), -1.0);
    q.shutdown(svc::JobQueue::Shutdown::Drain);
}

TEST(JobQueue, DrainShutdownRunsBacklog) {
    svc::JobQueue::Options opt;
    opt.workers = 1;
    svc::JobQueue q(opt);
    Gate gate;
    q.submit("plug", 0, [&](svc::JobContext&) {
        gate.wait();
        return numResult(0);
    });
    std::atomic<int> ran{0};
    for (int i = 0; i < 5; ++i)
        q.submit("t", 0, [&](svc::JobContext&) {
            ++ran;
            return numResult(1);
        });
    gate.release();
    q.shutdown(svc::JobQueue::Shutdown::Drain);
    EXPECT_EQ(ran, 5);
    EXPECT_EQ(q.stats().completed, 6u);
    // Post-shutdown submissions are rejected, not blocked.
    EXPECT_FALSE(q.submit("t", 0, [](svc::JobContext&) { return numResult(9); }).accepted);
}

TEST(JobQueue, CheckpointShutdownCancelsBacklogAndStopsRunning) {
    svc::JobQueue::Options opt;
    opt.workers = 1;
    svc::JobQueue q(opt);
    std::atomic<bool> started{false};
    std::atomic<bool> sawStop{false};
    const auto running = q.submit("long", 0, [&](svc::JobContext& ctx) {
        started = true;
        while (!ctx.shouldStop()) std::this_thread::yield();
        sawStop = true;
        ctx.markStoppedEarly();
        return numResult(1);
    });
    while (!started) std::this_thread::yield();
    std::atomic<bool> backlogRan{false};
    const auto queued = q.submit("queued", 0, [&](svc::JobContext&) {
        backlogRan = true;
        return numResult(2);
    });
    q.shutdown(svc::JobQueue::Shutdown::Checkpoint);
    EXPECT_TRUE(sawStop);
    EXPECT_FALSE(backlogRan);
    EXPECT_EQ(q.find(running.id)->state, svc::JobState::Cancelled);
    EXPECT_EQ(q.find(queued.id)->state, svc::JobState::Cancelled);
}

TEST(JobQueue, ProgressVisibleInSnapshots) {
    svc::JobQueue q;
    Gate gate;
    std::atomic<bool> progressed{false};
    const auto s = q.submit("t", 0, [&](svc::JobContext& ctx) {
        ctx.setProgress(3, 10);
        progressed = true;
        gate.wait();
        return numResult(1);
    });
    while (!progressed) std::this_thread::yield();
    const auto snap = q.find(s.id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->progressDone, 3u);
    EXPECT_EQ(snap->progressTotal, 10u);
    EXPECT_EQ(snap->state, svc::JobState::Running);
    gate.release();
    q.wait(s.id);
    EXPECT_EQ(q.list().size(), 1u);
    q.shutdown(svc::JobQueue::Shutdown::Drain);
}
