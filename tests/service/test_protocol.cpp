// Wire protocol: framing over real fds (socketpair), malformed-input
// classification, request envelope validation.

#include "service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>

using namespace phlogon;
namespace json = io::json;

namespace {

struct Pair {
    int a = -1, b = -1;
    Pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, &a), 0); }
    ~Pair() {
        if (a >= 0) ::close(a);
        if (b >= 0) ::close(b);
    }
};

void writeRaw(int fd, const void* data, std::size_t n) {
    ASSERT_EQ(::write(fd, data, n), static_cast<ssize_t>(n));
}

}  // namespace

TEST(Protocol, FrameRoundTrip) {
    Pair p;
    const std::string payload = "{\"type\": \"ping\"}";
    ASSERT_TRUE(svc::writeFrame(p.a, payload));
    const svc::FrameRead r = svc::readFrame(p.b);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.payload, payload);
}

TEST(Protocol, EmptyPayloadFrame) {
    Pair p;
    ASSERT_TRUE(svc::writeFrame(p.a, ""));
    const svc::FrameRead r = svc::readFrame(p.b);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.payload.empty());
}

TEST(Protocol, CleanCloseIsEof) {
    Pair p;
    ::close(p.a);
    p.a = -1;
    EXPECT_EQ(svc::readFrame(p.b).status, svc::FrameStatus::Eof);
}

TEST(Protocol, TruncatedPrefixIsTruncated) {
    Pair p;
    const std::uint8_t twoBytes[2] = {5, 0};
    writeRaw(p.a, twoBytes, 2);
    ::close(p.a);
    p.a = -1;
    EXPECT_EQ(svc::readFrame(p.b).status, svc::FrameStatus::Truncated);
}

TEST(Protocol, TruncatedPayloadIsTruncated) {
    Pair p;
    const std::uint8_t prefix[4] = {100, 0, 0, 0};  // announces 100 bytes
    writeRaw(p.a, prefix, 4);
    writeRaw(p.a, "short", 5);
    ::close(p.a);
    p.a = -1;
    EXPECT_EQ(svc::readFrame(p.b).status, svc::FrameStatus::Truncated);
}

TEST(Protocol, OversizedPrefixIsTooLargeWithoutReadingPayload) {
    Pair p;
    const std::uint8_t prefix[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB claim
    writeRaw(p.a, prefix, 4);
    // No payload is ever sent; the reader must classify from the prefix
    // alone instead of blocking on (or allocating) 4 GiB.
    EXPECT_EQ(svc::readFrame(p.b).status, svc::FrameStatus::TooLarge);
}

TEST(Protocol, CustomFrameBoundIsHonored) {
    Pair p;
    ASSERT_TRUE(svc::writeFrame(p.a, std::string(64, 'x')));
    EXPECT_EQ(svc::readFrame(p.b, 32).status, svc::FrameStatus::TooLarge);
}

TEST(Protocol, WriteFrameRejectsOversizedPayload) {
    Pair p;
    std::string big;
    big.resize(svc::kMaxFrameBytes + 1, 'x');
    EXPECT_FALSE(svc::writeFrame(p.a, big));
}

TEST(Protocol, LargeFrameRoundTripsAcrossThreads) {
    // Bigger than any socket buffer: exercises short reads and writes.
    Pair p;
    std::string payload(3u << 20, 'z');
    payload[0] = 'a';
    payload[payload.size() - 1] = 'b';
    std::thread writer([&] { EXPECT_TRUE(svc::writeFrame(p.a, payload)); });
    const svc::FrameRead r = svc::readFrame(p.b);
    writer.join();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.payload, payload);
}

TEST(Protocol, ParseRequestValid) {
    const svc::Request r = svc::parseRequest(
        R"({"type": "hold-error-mc", "id": 7, "priority": 5, "wait": false,
            "params": {"trials": 4}})");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.type, "hold-error-mc");
    EXPECT_DOUBLE_EQ(r.id.numberOr(0), 7.0);
    EXPECT_EQ(r.priority, 5);
    EXPECT_FALSE(r.wait);
    EXPECT_DOUBLE_EQ(r.params.fieldNumber("trials", 0), 4.0);
}

TEST(Protocol, ParseRequestDefaults) {
    const svc::Request r = svc::parseRequest(R"({"type": "ping"})");
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.id.isNull());
    EXPECT_TRUE(r.params.isObject());
    EXPECT_EQ(r.priority, 0);
    EXPECT_TRUE(r.wait);
}

TEST(Protocol, ParseRequestBadJson) {
    const svc::Request r = svc::parseRequest("{nope");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "bad-json");
    EXPECT_FALSE(r.errorMessage.empty());
}

TEST(Protocol, ParseRequestEnvelopeValidation) {
    EXPECT_EQ(svc::parseRequest("[1, 2]").errorCode, "bad-request");
    EXPECT_EQ(svc::parseRequest("{}").errorCode, "bad-request");
    EXPECT_EQ(svc::parseRequest(R"({"type": 3})").errorCode, "bad-request");
    EXPECT_EQ(svc::parseRequest(R"({"type": "ping", "params": []})").errorCode, "bad-request");
}

TEST(Protocol, PriorityClamped) {
    EXPECT_EQ(svc::parseRequest(R"({"type": "t", "priority": 1000})").priority, 100);
    EXPECT_EQ(svc::parseRequest(R"({"type": "t", "priority": -1000})").priority, -100);
}

TEST(Protocol, TraceIdSanitizedAndBounded) {
    // Pass-through for the filename-safe alphabet.
    EXPECT_EQ(svc::parseRequest(R"({"type": "t", "traceId": "run_3.a-B"})").traceId,
              "run_3.a-B");
    // Default: empty.
    EXPECT_TRUE(svc::parseRequest(R"({"type": "t"})").traceId.empty());
    // The id flows into log lines and trace JSON verbatim, so anything
    // outside the safe alphabet is replaced, never forwarded.
    EXPECT_EQ(svc::parseRequest(R"({"type": "t", "traceId": "a b\"c/d"})").traceId,
              "a_b_c_d");
    // Length is bounded at 64.
    const svc::Request longId =
        svc::parseRequest(R"({"type": "t", "traceId": ")" + std::string(200, 'x') + "\"}");
    ASSERT_TRUE(longId.ok);
    EXPECT_EQ(longId.traceId.size(), 64u);
    // Non-string traceId is a structured bad-request, not a crash.
    const svc::Request bad = svc::parseRequest(R"({"type": "t", "traceId": 7})");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.errorCode, "bad-request");
}

TEST(Protocol, EnvelopeFieldOptsIntoFullReport) {
    EXPECT_FALSE(svc::parseRequest(R"({"type": "t"})").fullEnvelope);
    EXPECT_FALSE(svc::parseRequest(R"({"type": "t", "envelope": "basic"})").fullEnvelope);
    EXPECT_TRUE(svc::parseRequest(R"({"type": "t", "envelope": "full"})").fullEnvelope);
    const svc::Request bad = svc::parseRequest(R"({"type": "t", "envelope": "verbose"})");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.errorCode, "bad-request");
}

TEST(Protocol, ResponseBuilders) {
    const json::Value ok = svc::makeResponse(json::Value::integer(3));
    EXPECT_TRUE(ok.fieldBool("ok", false));
    EXPECT_DOUBLE_EQ(ok.field("id")->numberOr(0), 3.0);

    const json::Value err = svc::makeError(json::Value::null(), "bad-json", "oops");
    EXPECT_FALSE(err.fieldBool("ok", true));
    EXPECT_TRUE(err.field("id")->isNull());
    EXPECT_EQ(err.field("error")->fieldString("code", ""), "bad-json");
    EXPECT_EQ(err.field("error")->fieldString("message", ""), "oops");
}

TEST(Protocol, RoundTripHelper) {
    Pair p;
    std::thread echo([&] {
        const svc::FrameRead r = svc::readFrame(p.b);
        ASSERT_TRUE(r.ok());
        EXPECT_TRUE(svc::writeFrame(p.b, r.payload + "!"));
    });
    EXPECT_EQ(svc::roundTrip(p.a, "hello"), "hello!");
    echo.join();
}
