// Checkpointed jobs survive cancel + restart with bitwise-identical
// results (satellite of the §16 service work; determinism comes from the
// counter-seeded MC trials and the per-segment-fresh RKF45 of the FSM
// path — see DESIGN.md §16).
//
// "Restart" is simulated the way the daemon does it for real: the first
// JobQueue/Daemon is shut down in Checkpoint mode (or the job cancelled),
// a new instance is pointed at the same checkpoint + cache directories,
// and the identical request is resubmitted.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "io/cache.hpp"
#include "io/json.hpp"
#include "service/daemon.hpp"
#include "service/job_queue.hpp"
#include "service/jobs.hpp"

using namespace phlogon;
namespace json = io::json;
namespace fs = std::filesystem;

namespace {

fs::path freshDir(const std::string& name) {
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// One artifact cache per binary so every job after the first gets the
/// characterization for free (and the test also exercises the shared-cache
/// path the daemon uses).
const io::ArtifactCache& sharedCache() {
    static const fs::path dir = freshDir("phlogon_resume_cache");
    static const io::ArtifactCache cache(dir);
    return cache;
}

/// The MC workload: big enough that a cancel lands mid-run (each 10-trial
/// chunk integrates 200 reference cycles, ~tens of ms), small enough for a
/// test.  `chunk` must match between baseline and resumed runs — the
/// outcome hash chains per-chunk summaries.
const char* kMcParams =
    R"({"trials": 60, "chunk": 10, "holdCycles": 200, "seed": 11})";

/// FSM workload with per-slot checkpoints; slots are ~tens of ms.
const char* kFsmParams = R"({"bits": [1, 0, 1, 1, 0], "slotCycles": 300})";

json::Value params(const char* text) {
    const json::ParseResult r = json::parse(text);
    EXPECT_TRUE(r.ok) << r.error;
    return r.value;
}

/// Run one job to its terminal state on a fresh single-worker queue.
svc::JobSnapshot runJob(const std::string& type, const char* paramText,
                        const fs::path& ckptDir) {
    svc::JobEnv env;
    env.cache = &sharedCache();
    env.checkpointDir = ckptDir;
    const svc::BuiltJob built = svc::buildJob(type, params(paramText), env);
    EXPECT_TRUE(built.ok) << built.errorMessage;
    svc::JobQueue::Options qopt;
    qopt.workers = 1;
    svc::JobQueue q(qopt);
    const svc::SubmitResult s = q.submit(type, 0, built.body);
    EXPECT_TRUE(s.accepted);
    const auto snap = q.wait(s.id);
    EXPECT_TRUE(snap.has_value());
    q.shutdown(svc::JobQueue::Shutdown::Drain);
    return *snap;
}

/// Run one job, cancel it once progressDone >= minProgress, return the
/// cancelled snapshot.
svc::JobSnapshot runAndCancel(const std::string& type, const char* paramText,
                              const fs::path& ckptDir, std::uint64_t minProgress) {
    svc::JobEnv env;
    env.cache = &sharedCache();
    env.checkpointDir = ckptDir;
    const svc::BuiltJob built = svc::buildJob(type, params(paramText), env);
    EXPECT_TRUE(built.ok) << built.errorMessage;
    svc::JobQueue::Options qopt;
    qopt.workers = 1;
    svc::JobQueue q(qopt);
    const svc::SubmitResult s = q.submit(type, 0, built.body);
    EXPECT_TRUE(s.accepted);
    while (true) {
        const auto snap = q.find(s.id);
        if (!snap || snap->terminal() || snap->progressDone >= minProgress) break;
        std::this_thread::yield();
    }
    q.cancel(s.id);
    const auto snap = q.wait(s.id);
    EXPECT_TRUE(snap.has_value());
    q.shutdown(svc::JobQueue::Shutdown::Drain);
    return *snap;
}

}  // namespace

TEST(ServiceResume, McCancelResumeBitwiseIdentical) {
    // Uninterrupted baseline: no checkpoint directory at all.
    const svc::JobSnapshot base = runJob("hold-error-mc", kMcParams, fs::path());
    ASSERT_EQ(base.state, svc::JobState::Done);
    const std::string baseHash = base.result.fieldString("outcomeHash", "");
    ASSERT_FALSE(baseHash.empty());
    EXPECT_DOUBLE_EQ(base.result.fieldNumber("trialsDone", 0), 60.0);

    // Interrupted run in its own checkpoint dir.
    const fs::path ckptDir = freshDir("phlogon_resume_mc_ckpt");
    const svc::JobSnapshot cut = runAndCancel("hold-error-mc", kMcParams, ckptDir, 10);
    ASSERT_EQ(cut.state, svc::JobState::Cancelled);
    EXPECT_TRUE(cut.result.fieldBool("resumable", false));
    const double done = cut.result.fieldNumber("trialsDone", 0);
    ASSERT_GT(done, 0.0);
    ASSERT_LT(done, 60.0);
    // The §11 snapshot is on disk.
    EXPECT_TRUE(fs::exists(cut.result.fieldString("checkpoint", "")));

    // "Restart": fresh queue, same dirs, identical request.
    const svc::JobSnapshot resumed = runJob("hold-error-mc", kMcParams, ckptDir);
    ASSERT_EQ(resumed.state, svc::JobState::Done);
    EXPECT_DOUBLE_EQ(resumed.result.fieldNumber("resumedFrom", -1), done);
    EXPECT_DOUBLE_EQ(resumed.result.fieldNumber("trialsDone", 0), 60.0);
    // Bitwise identity: the chained per-chunk outcome hash and the counts
    // match the uninterrupted run exactly.
    EXPECT_EQ(resumed.result.fieldString("outcomeHash", ""), baseHash);
    EXPECT_DOUBLE_EQ(resumed.result.fieldNumber("errors", -1),
                     base.result.fieldNumber("errors", -2));
    EXPECT_DOUBLE_EQ(resumed.result.fieldNumber("trials", -1),
                     base.result.fieldNumber("trials", -2));

    // A third submission finds the completed checkpoint and returns the
    // final result immediately, still identical.
    const svc::JobSnapshot again = runJob("hold-error-mc", kMcParams, ckptDir);
    ASSERT_EQ(again.state, svc::JobState::Done);
    EXPECT_EQ(again.result.fieldString("outcomeHash", ""), baseHash);
    fs::remove_all(ckptDir);
}

TEST(ServiceResume, FsmCancelResumeBitwiseIdentical) {
    const svc::JobSnapshot base = runJob("fsm-transient", kFsmParams, fs::path());
    ASSERT_EQ(base.state, svc::JobState::Done);
    ASSERT_TRUE(base.result.fieldBool("allWritten", false));
    const json::Value* basePhases = base.result.field("endPhase");
    ASSERT_NE(basePhases, nullptr);
    ASSERT_EQ(basePhases->size(), 5u);

    const fs::path ckptDir = freshDir("phlogon_resume_fsm_ckpt");
    const svc::JobSnapshot cut = runAndCancel("fsm-transient", kFsmParams, ckptDir, 1);
    ASSERT_EQ(cut.state, svc::JobState::Cancelled);
    EXPECT_TRUE(cut.result.fieldBool("resumable", false));
    const double slotsDone = cut.result.fieldNumber("slotsDone", 0);
    ASSERT_GT(slotsDone, 0.0);
    ASSERT_LT(slotsDone, 5.0);

    const svc::JobSnapshot resumed = runJob("fsm-transient", kFsmParams, ckptDir);
    ASSERT_EQ(resumed.state, svc::JobState::Done);
    EXPECT_DOUBLE_EQ(resumed.result.fieldNumber("resumedFrom", -1), slotsDone);
    EXPECT_TRUE(resumed.result.fieldBool("allWritten", false));
    const json::Value* phases = resumed.result.field("endPhase");
    ASSERT_NE(phases, nullptr);
    ASSERT_EQ(phases->size(), 5u);
    // Slot boundaries are fresh RKF45 starts in the uninterrupted run too,
    // so every end phase — including the post-resume tail — is the exact
    // same double.
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ((*phases->arr)[i].num, (*basePhases->arr)[i].num) << "slot " << i;
    fs::remove_all(ckptDir);
}

TEST(ServiceResume, DaemonRestartResumesCheckpointedJob) {
    const fs::path cacheDir = sharedCache().dir();
    const fs::path ckptDir = freshDir("phlogon_resume_daemon_ckpt");
    const std::string request =
        std::string(R"({"type": "hold-error-mc", "id": 1, "params": )") + kMcParams + "}";

    // Baseline for the hash (checkpoint-free).
    const svc::JobSnapshot base = runJob("hold-error-mc", kMcParams, fs::path());
    const std::string baseHash = base.result.fieldString("outcomeHash", "");

    svc::DaemonOptions opt;
    opt.queue.workers = 1;
    opt.cacheDir = cacheDir;
    opt.checkpointDir = ckptDir;

    // First daemon instance: submit without waiting, let it make progress,
    // then stop in Checkpoint mode — the SIGTERM path.
    {
        svc::Daemon d1(opt);
        ASSERT_TRUE(d1.start()) << d1.lastError();
        const json::ParseResult sub = json::parse(d1.dispatch(
            std::string(R"({"type": "hold-error-mc", "id": 1, "wait": false, "params": )") +
            kMcParams + "}"));
        ASSERT_TRUE(sub.ok);
        ASSERT_TRUE(sub.value.fieldBool("ok", false));
        const auto jobId = static_cast<std::uint64_t>(sub.value.fieldNumber("job", 0));
        while (true) {
            const auto snap = d1.queue().find(jobId);
            ASSERT_TRUE(snap.has_value());
            if (snap->terminal() || snap->progressDone >= 10) break;
            std::this_thread::yield();
        }
        d1.stop(svc::JobQueue::Shutdown::Checkpoint);
        const auto snap = d1.queue().find(jobId);
        ASSERT_TRUE(snap.has_value());
        ASSERT_EQ(snap->state, svc::JobState::Cancelled);
        ASSERT_LT(snap->progressDone, 60u);
    }

    // Second daemon instance on the same directories: the resubmitted
    // request resumes from the snapshot and finishes bit-identically.
    {
        svc::Daemon d2(opt);
        ASSERT_TRUE(d2.start()) << d2.lastError();
        const json::ParseResult done = json::parse(d2.dispatch(request));
        ASSERT_TRUE(done.ok);
        ASSERT_TRUE(done.value.fieldBool("ok", false));
        const json::Value* result = done.value.field("job")->field("result");
        ASSERT_NE(result, nullptr);
        EXPECT_GT(result->fieldNumber("resumedFrom", 0), 0.0);
        EXPECT_DOUBLE_EQ(result->fieldNumber("trialsDone", 0), 60.0);
        EXPECT_EQ(result->fieldString("outcomeHash", ""), baseHash);
        d2.stop(svc::JobQueue::Shutdown::Drain);
    }
    fs::remove_all(ckptDir);
}
