// End-to-end trace propagation (ISSUE acceptance): a client-supplied
// traceId submitted over the wire protocol must stamp the request span,
// the queue-wait span and every job chunk span — including chunks executed
// after a simulated daemon restart resumes the checkpointed job — and the
// dispatch flow events must link the connection thread to the worker
// thread.  The two daemon lifetimes write two separate trace files which
// are then merged with obs::mergeChromeTraces, exactly the operator
// workflow (`phlogon_trace merge a.json b.json`).

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "service/daemon.hpp"
#include "service/job_queue.hpp"

using namespace phlogon;
namespace json = io::json;
namespace fs = std::filesystem;

#ifndef PHLOGON_NO_OBS

namespace {

fs::path freshDir(const std::string& name) {
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// Chunked MC workload: 60 trials in 10-trial chunks, each chunk a
/// service.job.chunk span and a checkpoint write, so a mid-run cancel
/// leaves work for the resumed daemon.
const char* kMcParams =
    R"({"trials": 60, "chunk": 10, "holdCycles": 200, "seed": 11})";

int countSpans(const std::vector<obs::ParsedEvent>& spans, const std::string& name) {
    int n = 0;
    for (const obs::ParsedEvent& e : spans)
        if (e.name == name) ++n;
    return n;
}

}  // namespace

TEST(TracePropagation, ClientTraceIdLinksChunksAcrossDaemonRestart) {
    const std::string traceId = "e2e-restart-77";
    const fs::path cacheDir = freshDir("phlogon_tprop_cache");
    const fs::path ckptDir = freshDir("phlogon_tprop_ckpt");
    const fs::path traceA = fs::temp_directory_path() / "phlogon_tprop_a.json";
    const fs::path traceB = fs::temp_directory_path() / "phlogon_tprop_b.json";
    fs::remove(traceA);
    fs::remove(traceB);

    svc::DaemonOptions opt;
    opt.queue.workers = 1;
    opt.cacheDir = cacheDir;
    opt.checkpointDir = ckptDir;

    const std::string fullRequest =
        std::string(R"({"type": "hold-error-mc", "id": 2, "traceId": ")") + traceId +
        R"(", "params": )" + kMcParams + "}";

    // --- Daemon lifetime 1: accept the traced job, checkpoint mid-run. ---
    obs::Tracer::instance().start(traceA.string());
    {
        svc::Daemon d1(opt);
        ASSERT_TRUE(d1.start()) << d1.lastError();
        const json::ParseResult sub = json::parse(d1.dispatch(
            std::string(R"({"type": "hold-error-mc", "id": 1, "wait": false, "traceId": ")") +
            traceId + R"(", "params": )" + kMcParams + "}"));
        ASSERT_TRUE(sub.ok);
        ASSERT_TRUE(sub.value.fieldBool("ok", false));
        const auto jobId = static_cast<std::uint64_t>(sub.value.fieldNumber("job", 0));
        while (true) {
            const auto snap = d1.queue().find(jobId);
            ASSERT_TRUE(snap.has_value());
            if (snap->terminal() || snap->progressDone >= 10) break;
            std::this_thread::yield();
        }
        d1.stop(svc::JobQueue::Shutdown::Checkpoint);
        const auto snap = d1.queue().find(jobId);
        ASSERT_TRUE(snap.has_value());
        ASSERT_EQ(snap->state, svc::JobState::Cancelled);
        ASSERT_LT(snap->progressDone, 60u);
        EXPECT_EQ(snap->traceId, traceId);
    }
    obs::Tracer::instance().stop();
    ASSERT_TRUE(obs::Tracer::instance().write());

    // --- Daemon lifetime 2: same dirs, same request + traceId, resumes. ---
    obs::Tracer::instance().start(traceB.string());
    {
        svc::Daemon d2(opt);
        ASSERT_TRUE(d2.start()) << d2.lastError();
        const json::ParseResult done = json::parse(d2.dispatch(fullRequest));
        ASSERT_TRUE(done.ok);
        ASSERT_TRUE(done.value.fieldBool("ok", false));
        const json::Value* result = done.value.field("job")->field("result");
        ASSERT_NE(result, nullptr);
        EXPECT_GT(result->fieldNumber("resumedFrom", 0), 0.0);
        EXPECT_DOUBLE_EQ(result->fieldNumber("trialsDone", 0), 60.0);
        d2.stop(svc::JobQueue::Shutdown::Drain);
    }
    obs::Tracer::instance().stop();
    ASSERT_TRUE(obs::Tracer::instance().write());

    // --- Merge the two lifetimes and walk the joined trace. ---
    std::string mergeError;
    const std::string merged = obs::mergeChromeTraces({traceA, traceB}, &mergeError);
    ASSERT_FALSE(merged.empty()) << mergeError;
    const obs::ParsedTrace trace = obs::parseChromeTrace(merged);
    ASSERT_TRUE(trace.ok) << trace.error;

    const std::vector<obs::ParsedEvent> spans = trace.spansForTraceId(traceId);
    ASSERT_FALSE(spans.empty());

    // One request span and one queue-wait span per daemon lifetime.
    EXPECT_GE(countSpans(spans, "service.request"), 2);
    EXPECT_GE(countSpans(spans, "service.queueWait"), 2);
    EXPECT_GE(countSpans(spans, "service.job"), 2);

    // Every chunk span in the whole merged trace carries the client traceId
    // (no chunk escaped the ambient context), and chunks exist in BOTH
    // halves: the merge remaps tids per input file, so pre- and post-restart
    // worker chunks land on distinct thread ids.
    int chunksTotal = 0;
    std::set<std::int64_t> chunkTids;
    for (const obs::ParsedEvent& e : trace.events) {
        if (e.ph != "X" || e.name != "service.job.chunk") continue;
        ++chunksTotal;
        EXPECT_EQ(e.traceId, traceId) << "chunk span without trace context";
        chunkTids.insert(e.tid);
    }
    EXPECT_EQ(countSpans(spans, "service.job.chunk"), chunksTotal);
    // 60 trials / chunk 10: >=1 chunk before the checkpoint stop, and the
    // resumed daemon runs the remainder.
    EXPECT_GE(chunksTotal, 2);
    EXPECT_GE(chunkTids.size(), 2u) << "expected chunk spans from both daemon lifetimes";

    // The resumed job announced itself inside the same trace.
    bool sawResume = false;
    for (const obs::ParsedEvent& e : trace.events)
        if (e.ph == "i" && e.name == "service.job.resume") sawResume = true;
    EXPECT_TRUE(sawResume);

    // Dispatch flows: each finish (worker side) binds to a start (connection
    // side) with the same flow id, in both lifetimes.
    const std::vector<obs::ParsedEvent> flows = trace.flowsForTraceId(traceId);
    std::set<std::uint64_t> started, finished;
    for (const obs::ParsedEvent& e : flows) {
        ASSERT_NE(e.flowId, 0u);
        if (e.ph == "s") started.insert(e.flowId);
        if (e.ph == "f") {
            EXPECT_EQ(e.bindingPoint, "e");
            finished.insert(e.flowId);
        }
    }
    EXPECT_GE(finished.size(), 1u);
    for (const std::uint64_t id : finished)
        EXPECT_TRUE(started.count(id)) << "flow finish without matching start: " << id;

    // The merged document is still a well-formed trace: spans nest per tid.
    std::string why;
    EXPECT_TRUE(trace.spansProperlyNested(&why)) << why;

    fs::remove(traceA);
    fs::remove(traceB);
    fs::remove_all(cacheDir);
    fs::remove_all(ckptDir);
}

#endif  // PHLOGON_NO_OBS
