#include "viz/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace phlogon::viz {
namespace {

TEST(AsciiPlot, ContainsTitleAndLegend) {
    Chart c("My Title", "time", "volts");
    c.add("trace1", {0, 1, 2}, {0, 1, 0});
    const std::string s = asciiPlot(c);
    EXPECT_NE(s.find("My Title"), std::string::npos);
    EXPECT_NE(s.find("trace1"), std::string::npos);
    EXPECT_NE(s.find("volts"), std::string::npos);
}

TEST(AsciiPlot, RendersGlyphsForData) {
    Chart c;
    c.add("a", {0, 1}, {0, 1});
    const std::string s = asciiPlot(c);
    EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesDistinctGlyphs) {
    Chart c;
    c.add("a", {0, 1}, {0, 0});
    c.add("b", {0, 1}, {1, 1});
    const std::string s = asciiPlot(c);
    EXPECT_NE(s.find('*'), std::string::npos);
    EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(AsciiPlot, RespectsDimensions) {
    Chart c;
    c.add("a", {0, 1}, {0, 1});
    AsciiPlotOptions opt;
    opt.width = 40;
    opt.height = 10;
    opt.drawLegend = false;
    const std::string s = asciiPlot(c, opt);
    // Count plot rows (lines containing " |").
    std::size_t rows = 0, pos = 0;
    while ((pos = s.find(" |", pos)) != std::string::npos) {
        ++rows;
        pos += 2;
    }
    EXPECT_EQ(rows, 10u);
}

TEST(AsciiPlot, HandlesConstantSeries) {
    Chart c;
    c.add("flat", {0, 1, 2}, {5, 5, 5});
    EXPECT_NO_THROW(asciiPlot(c));
}

TEST(AsciiPlot, HandlesNonFiniteGracefully) {
    Chart c;
    c.add("nan", {0, 1, 2}, {0.0, std::nan(""), 1.0});
    EXPECT_NO_THROW(asciiPlot(c));
}

TEST(AsciiPlot, ConvenienceOverload) {
    const std::string s = asciiPlot("quick", {0, 1, 2}, {1, 0, 1});
    EXPECT_NE(s.find("quick"), std::string::npos);
}

}  // namespace
}  // namespace phlogon::viz
