#include "viz/series.hpp"

#include <gtest/gtest.h>

namespace phlogon::viz {
namespace {

TEST(Series, ConstructionValidatesSizes) {
    EXPECT_NO_THROW(Series("s", {1, 2}, {3, 4}));
    EXPECT_THROW(Series("s", {1, 2}, {3}), std::invalid_argument);
}

TEST(Series, SizeAndEmpty) {
    Series s("s", {1, 2, 3}, {4, 5, 6});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(Series().empty());
}

TEST(Chart, AddChainsAndStores) {
    Chart c("t", "x", "y");
    c.add("a", {0, 1}, {0, 1}).add("b", {0, 1}, {2, 3});
    EXPECT_EQ(c.series.size(), 2u);
    EXPECT_EQ(c.series[1].name, "b");
}

TEST(Chart, ExtentsSpanAllSeries) {
    Chart c;
    c.add("a", {0.0, 1.0}, {-2.0, 5.0});
    c.add("b", {-1.0, 3.0}, {0.0, 1.0});
    double xMin, xMax, yMin, yMax;
    c.extents(xMin, xMax, yMin, yMax);
    EXPECT_DOUBLE_EQ(xMin, -1.0);
    EXPECT_DOUBLE_EQ(xMax, 3.0);
    EXPECT_DOUBLE_EQ(yMin, -2.0);
    EXPECT_DOUBLE_EQ(yMax, 5.0);
}

TEST(Chart, ExtentsOfEmptyChartAreSane) {
    Chart c;
    double xMin, xMax, yMin, yMax;
    c.extents(xMin, xMax, yMin, yMax);
    EXPECT_LT(xMin, xMax);
    EXPECT_LT(yMin, yMax);
}

TEST(Scatter, BuildsFromPairs) {
    const Series s = scatter("pts", {{1.0, 2.0}, {3.0, 4.0}});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s.x[1], 3.0);
    EXPECT_DOUBLE_EQ(s.y[0], 2.0);
}

}  // namespace
}  // namespace phlogon::viz
