#include "viz/writers.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace phlogon::viz {
namespace {

namespace fs = std::filesystem;

class WritersTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "phlogon_viz_test";
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    fs::path dir_;

    static std::string slurp(const fs::path& p) {
        std::ifstream in(p);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }
};

TEST_F(WritersTest, CsvLayout) {
    Chart c("Title, with comma", "x", "y");
    c.add("a", {1.0, 2.0}, {3.0, 4.0});
    c.add("b", {5.0}, {6.0});
    writeCsv(c, dir_ / "out.csv");
    const std::string s = slurp(dir_ / "out.csv");
    EXPECT_NE(s.find("# Title  with comma"), std::string::npos);  // sanitized
    EXPECT_NE(s.find("a_x,a_y,b_x,b_y"), std::string::npos);
    EXPECT_NE(s.find("1,3,5,6"), std::string::npos);
    EXPECT_NE(s.find("2,4,,"), std::string::npos);  // padded short series
}

TEST_F(WritersTest, CsvCreatesDirectories) {
    Chart c("t", "", "");
    c.add("a", {1.0}, {2.0});
    writeCsv(c, dir_ / "deep" / "nested" / "f.csv");
    EXPECT_TRUE(fs::exists(dir_ / "deep" / "nested" / "f.csv"));
}

TEST_F(WritersTest, GnuplotScriptReferencesCsvColumns) {
    Chart c("T", "xs", "ys");
    c.add("alpha", {1.0}, {2.0});
    c.add("beta", {1.0}, {2.0});
    writeGnuplot(c, dir_ / "f.gp", "f.csv");
    const std::string s = slurp(dir_ / "f.gp");
    EXPECT_NE(s.find("using 1:2"), std::string::npos);
    EXPECT_NE(s.find("using 3:4"), std::string::npos);
    EXPECT_NE(s.find("'alpha'"), std::string::npos);
    EXPECT_NE(s.find("set xlabel 'xs'"), std::string::npos);
}

TEST_F(WritersTest, ExportChartWritesBothFiles) {
    Chart c("T", "", "");
    c.add("a", {1.0}, {2.0});
    exportChart(c, dir_, "fig1");
    EXPECT_TRUE(fs::exists(dir_ / "fig1.csv"));
    EXPECT_TRUE(fs::exists(dir_ / "fig1.gp"));
}

}  // namespace
}  // namespace phlogon::viz
