// phlogon_artifact — inspect binary artifact files and the artifact cache.
//
//   phlogon_artifact info <file.phlg>...   print header fields + CRC verdict
//   phlogon_artifact verify <file.phlg>... exit 1 if any file fails validation
//   phlogon_artifact cache [dir]           list cache entries (default:
//                                          PHLOGON_CACHE_DIR), oldest first
//   phlogon_artifact scrub [dir]           re-read every entry, dropping any
//                                          that fail validation; exit 1 if
//                                          corruption was found

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/cache.hpp"
#include "io/serialize.hpp"

using namespace phlogon;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: phlogon_artifact info <file>...\n"
                 "       phlogon_artifact verify <file>...\n"
                 "       phlogon_artifact cache [dir]\n"
                 "       phlogon_artifact scrub [dir]\n");
    return 2;
}

/// Probe one file and print a header line; returns true when fully valid.
bool describe(const std::filesystem::path& path, bool verbose) {
    const io::ArtifactProbe p = io::probeArtifactFile(path);
    const bool ok = p.status == io::ArtifactStatus::Ok;
    if (verbose) {
        std::printf("%s:\n", path.string().c_str());
        if (p.status == io::ArtifactStatus::IoError || p.status == io::ArtifactStatus::BadMagic ||
            (p.status == io::ArtifactStatus::Truncated && p.header.payloadSize == 0)) {
            std::printf("  status   %s\n", io::statusName(p.status).c_str());
            return ok;
        }
        std::printf("  format   v%u\n", p.header.version);
        std::printf("  type     %s\n", io::typeName(p.header.type).c_str());
        std::printf("  payload  %llu bytes\n",
                    static_cast<unsigned long long>(p.header.payloadSize));
        std::printf("  crc32    0x%08x (%s)\n", p.header.crc,
                    io::statusName(p.status).c_str());
    } else {
        std::printf("%-10s %-22s %10llu B  %s\n", io::statusName(p.status).c_str(),
                    io::typeName(p.header.type).c_str(),
                    static_cast<unsigned long long>(p.header.payloadSize),
                    path.string().c_str());
    }
    return ok;
}

int listCache(const io::ArtifactCache& cache) {
    if (!cache.enabled()) {
        std::printf("cache disabled (set PHLOGON_CACHE_DIR or pass a directory)\n");
        return 0;
    }
    std::printf("cache dir: %s (max %llu MiB)\n", cache.dir().string().c_str(),
                static_cast<unsigned long long>(cache.maxBytes() / (1024 * 1024)));
    const std::vector<io::ArtifactCache::Entry> entries = cache.entries();
    std::uintmax_t total = 0;
    for (const io::ArtifactCache::Entry& e : entries) {
        total += e.fileBytes;
        const auto age = std::chrono::duration_cast<std::chrono::seconds>(
            std::filesystem::file_time_type::clock::now() - e.mtime);
        std::printf("%016llx  %-22s %10llu B  %8llds  %s\n",
                    static_cast<unsigned long long>(e.key), io::typeName(e.type).c_str(),
                    static_cast<unsigned long long>(e.fileBytes),
                    static_cast<long long>(age.count()), e.valid ? "ok" : "INVALID");
    }
    std::printf("%zu entries, %llu bytes total\n", entries.size(),
                static_cast<unsigned long long>(total));
    const io::CacheStats s = cache.stats();
    std::printf("session stats: %llu hits, %llu misses, %llu stores, %llu evictions, "
                "%llu corruptions\n",
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.stores),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.corruptions));
    if (s.foreign)
        std::printf("%llu foreign *.phlg file(s) skipped (non-key names; never evicted)\n",
                    static_cast<unsigned long long>(s.foreign));
    return 0;
}

/// Fetch every entry through the normal read path: validates CRCs, removes
/// corrupt entries (the cache's own scrub-on-fetch policy) and leaves the
/// session stats populated for the summary line.
int scrubCache(const io::ArtifactCache& cache) {
    if (!cache.enabled()) {
        std::printf("cache disabled (set PHLOGON_CACHE_DIR or pass a directory)\n");
        return 0;
    }
    for (const io::ArtifactCache::Entry& e : cache.entries())
        (void)cache.fetch(e.key, 0);
    const io::CacheStats s = cache.stats();
    std::printf("scrubbed %s: %llu ok, %llu corrupt removed\n", cache.dir().string().c_str(),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.corruptions));
    if (s.foreign)
        std::printf("%llu foreign *.phlg file(s) skipped\n",
                    static_cast<unsigned long long>(s.foreign));
    return s.corruptions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];

    if (cmd == "info" || cmd == "verify") {
        if (argc < 3) return usage();
        bool allOk = true;
        for (int i = 2; i < argc; ++i) allOk = describe(argv[i], cmd == "info") && allOk;
        return allOk ? 0 : 1;
    }
    if (cmd == "cache") {
        if (argc > 3) return usage();
        if (argc == 3) return listCache(io::ArtifactCache(argv[2]));
        return listCache(io::ArtifactCache::fromEnv());
    }
    if (cmd == "scrub") {
        if (argc > 3) return usage();
        if (argc == 3) return scrubCache(io::ArtifactCache(argv[2]));
        return scrubCache(io::ArtifactCache::fromEnv());
    }
    return usage();
}
