// phlogon_client — load generator / CLI for phlogond.
//
// Single request:
//   phlogon_client --socket /tmp/phlogond.sock req characterize-latch
//       --params '{"syncAmp": 1e-4}' [--no-wait] [--priority 5]
//   phlogon_client --socket S status | list | cancel <job> | shutdown [drain]
//
// Scripted mix (sequential):
//   phlogon_client --socket S mix 'characterize-latch:3,hold-error-mc:1' --count 8
//
// Closed-loop load (the saturation driver): N threads, each with its own
// connection, firing requests back-to-back from the weighted mix until
// --count per thread is reached:
//   phlogon_client --socket S load 'characterize-latch:4,locking-range-sweep:1'
//       --threads 4 --count 25 [--assert-p95-ms 500]
//
// Exit status is non-zero if any request failed (CI asserts a clean run),
// or if an --assert-p95-ms budget was exceeded.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "service/protocol.hpp"

using namespace phlogon;
namespace json = io::json;

namespace {

struct Endpoint {
    std::string socketPath;
    int tcpPort = -1;

    int connect() const {
        return socketPath.empty() ? svc::connectTcp(tcpPort) : svc::connectUnix(socketPath);
    }
};

struct MixEntry {
    std::string type;
    int weight = 1;
    std::string params;  ///< JSON object text ("{}" default)
};

/// "type:weight[:jsonparams],..." — params given via --params-for.
std::vector<MixEntry> parseMix(const std::string& spec) {
    std::vector<MixEntry> mix;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        std::string item = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        if (item.empty()) continue;
        MixEntry e;
        const std::size_t colon = item.find(':');
        e.type = item.substr(0, colon);
        if (colon != std::string::npos) e.weight = std::max(1, std::atoi(item.c_str() + colon + 1));
        e.params = "{}";
        mix.push_back(e);
    }
    return mix;
}

struct RequestTrim {
    std::string traceId;   ///< propagated to the daemon's spans/logs
    std::string envelope;  ///< "" (default) or "full" for the RunReport
};

std::string buildRequest(const std::string& type, const std::string& paramsJson, int priority,
                         bool wait, std::uint64_t id, const RequestTrim& trim = {}) {
    std::string r = "{\"type\": " + json::quote(type) + ", \"id\": " + std::to_string(id);
    if (priority != 0) r += ", \"priority\": " + std::to_string(priority);
    if (!wait) r += ", \"wait\": false";
    if (!trim.traceId.empty()) r += ", \"traceId\": " + json::quote(trim.traceId);
    if (!trim.envelope.empty()) r += ", \"envelope\": " + json::quote(trim.envelope);
    if (!paramsJson.empty() && paramsJson != "{}") r += ", \"params\": " + paramsJson;
    r += "}";
    return r;
}

struct LoadResult {
    std::vector<double> latenciesMs;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t retried = 0;  ///< queue-full rejections that were retried
};

/// Closed-loop worker: one connection, `count` requests drawn round-robin
/// by weight from the mix.  queue-full responses honor retryAfterMs and
/// retry the same request (they count as `retried`, not `failed`).
LoadResult runLoad(const Endpoint& ep, const std::vector<MixEntry>& mix, int count, int priority,
                   unsigned threadIdx, const RequestTrim& trim) {
    LoadResult res;
    const int fd = ep.connect();
    if (fd < 0) {
        res.failed = static_cast<std::uint64_t>(count);
        return res;
    }
    // Weighted round-robin schedule.
    std::vector<const MixEntry*> schedule;
    for (const MixEntry& e : mix)
        for (int w = 0; w < e.weight; ++w) schedule.push_back(&e);
    std::uint64_t id = static_cast<std::uint64_t>(threadIdx) * 1000000ull;
    for (int k = 0; k < count; ++k) {
        const MixEntry& e = *schedule[static_cast<std::size_t>(k) % schedule.size()];
        const std::string payload = buildRequest(e.type, e.params, priority, true, ++id, trim);
        for (int attempt = 0;; ++attempt) {
            const auto t0 = std::chrono::steady_clock::now();
            const std::string reply = svc::roundTrip(fd, payload);
            const double ms =
                std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
            if (reply.empty()) {
                ++res.failed;
                ::close(fd);
                return res;  // connection gone
            }
            const json::ParseResult parsed = json::parse(reply);
            if (!parsed.ok) {
                ++res.failed;
                break;
            }
            if (parsed.value.fieldBool("ok", false)) {
                res.latenciesMs.push_back(ms);
                ++res.ok;
                break;
            }
            const json::Value* err = parsed.value.field("error");
            const std::string code = err ? err->fieldString("code", "") : "";
            if (code == "queue-full" && attempt < 50) {
                ++res.retried;
                const double retryMs = parsed.value.fieldNumber("retryAfterMs", 100.0);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(static_cast<int>(retryMs)));
                continue;
            }
            ++res.failed;
            break;
        }
    }
    ::close(fd);
    return res;
}

double quantile(std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double idx = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

int usage() {
    std::fprintf(stderr,
                 "usage: phlogon_client (--socket PATH | --tcp PORT) COMMAND\n"
                 "  req TYPE [--params JSON] [--priority N] [--no-wait]\n"
                 "  status | list | ping\n"
                 "  cancel JOB\n"
                 "  shutdown [drain|checkpoint]\n"
                 "  metrics [--prometheus]\n"
                 "  mix SPEC --count N [--priority N]\n"
                 "  load SPEC --threads K --count N [--assert-p95-ms X] [--quiet]\n"
                 "SPEC: 'type:weight,type:weight,...'\n"
                 "Common options:\n"
                 "  --trace-id ID     correlation id stamped on every span/log the\n"
                 "                    daemon emits for these requests\n"
                 "  --envelope full   ask for the full obs::RunReport under \"obs\"\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    Endpoint ep;
    std::vector<std::string> args;
    std::string paramsJson = "{}";
    int priority = 0;
    int threads = 1;
    int count = 1;
    bool wait = true;
    bool quiet = false;
    double assertP95Ms = 0.0;
    RequestTrim trim;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) std::exit(usage());
            return argv[++i];
        };
        if (arg == "--socket") ep.socketPath = next();
        else if (arg == "--tcp") ep.tcpPort = std::atoi(next());
        else if (arg == "--params") paramsJson = next();
        else if (arg == "--priority") priority = std::atoi(next());
        else if (arg == "--threads") threads = std::max(1, std::atoi(next()));
        else if (arg == "--count") count = std::max(1, std::atoi(next()));
        else if (arg == "--no-wait") wait = false;
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--assert-p95-ms") assertP95Ms = std::atof(next());
        else if (arg == "--trace-id") trim.traceId = next();
        else if (arg == "--envelope") trim.envelope = next();
        else if (arg == "--help" || arg == "-h") return usage();
        else args.push_back(arg);
    }
    if ((ep.socketPath.empty() && ep.tcpPort < 0) || args.empty()) return usage();
    const std::string& cmd = args[0];

    // ---- single-request commands -------------------------------------------
    const auto single = [&](const std::string& payload, bool expectReply) -> int {
        const int fd = ep.connect();
        if (fd < 0) {
            std::fprintf(stderr, "phlogon_client: cannot connect\n");
            return 1;
        }
        const std::string reply = svc::roundTrip(fd, payload);
        ::close(fd);
        if (reply.empty()) {
            // A daemon acting on "shutdown" may close before replying.
            if (!expectReply) return 0;
            std::fprintf(stderr, "phlogon_client: no reply\n");
            return 1;
        }
        std::printf("%s\n", reply.c_str());
        const json::ParseResult parsed = json::parse(reply);
        return parsed.ok && parsed.value.fieldBool("ok", false) ? 0 : 1;
    };

    if (cmd == "req" && args.size() >= 2)
        return single(buildRequest(args[1], paramsJson, priority, wait, 1, trim), true);
    if (cmd == "status") return single("{\"type\": \"status\", \"id\": 1}", true);
    if (cmd == "metrics") {
        const bool prom =
            std::find(args.begin(), args.end(), "--prometheus") != args.end();
        const int fd = ep.connect();
        if (fd < 0) {
            std::fprintf(stderr, "phlogon_client: cannot connect\n");
            return 1;
        }
        const std::string reply = svc::roundTrip(fd, "{\"type\": \"metrics\", \"id\": 1}");
        ::close(fd);
        const json::ParseResult parsed = json::parse(reply);
        if (!parsed.ok || !parsed.value.fieldBool("ok", false)) {
            std::fprintf(stderr, "phlogon_client: metrics request failed\n");
            return 1;
        }
        if (prom)
            std::printf("%s", parsed.value.fieldString("prometheus", "").c_str());
        else
            std::printf("%s\n", reply.c_str());
        return 0;
    }
    if (cmd == "ping") return single("{\"type\": \"ping\", \"id\": 1}", true);
    if (cmd == "list") return single("{\"type\": \"list-jobs\", \"id\": 1}", true);
    if (cmd == "cancel" && args.size() >= 2)
        return single("{\"type\": \"cancel\", \"id\": 1, \"params\": {\"job\": " + args[1] + "}}",
                      true);
    if (cmd == "shutdown") {
        const std::string mode = args.size() >= 2 ? args[1] : "checkpoint";
        return single("{\"type\": \"shutdown\", \"id\": 1, \"params\": {\"mode\": " +
                          json::quote(mode) + "}}",
                      false);
    }

    // ---- mix / load ---------------------------------------------------------
    if ((cmd == "mix" || cmd == "load") && args.size() >= 2) {
        const std::vector<MixEntry> mix = parseMix(args[1]);
        if (mix.empty()) return usage();
        if (!paramsJson.empty() && paramsJson != "{}") {
            std::fprintf(stderr, "phlogon_client: --params applies per-type defaults to every "
                                 "mix entry\n");
        }
        const int nThreads = cmd == "mix" ? 1 : threads;
        std::vector<LoadResult> results(static_cast<std::size_t>(nThreads));
        const auto t0 = std::chrono::steady_clock::now();
        {
            std::vector<std::thread> pool;
            for (int t = 0; t < nThreads; ++t)
                pool.emplace_back([&, t] {
                    results[static_cast<std::size_t>(t)] =
                        runLoad(ep, mix, count, priority, static_cast<unsigned>(t + 1), trim);
                });
            for (std::thread& th : pool) th.join();
        }
        const double wallS =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

        LoadResult total;
        for (const LoadResult& r : results) {
            total.ok += r.ok;
            total.failed += r.failed;
            total.retried += r.retried;
            total.latenciesMs.insert(total.latenciesMs.end(), r.latenciesMs.begin(),
                                     r.latenciesMs.end());
        }
        std::sort(total.latenciesMs.begin(), total.latenciesMs.end());
        const double p50 = quantile(total.latenciesMs, 0.50);
        const double p95 = quantile(total.latenciesMs, 0.95);
        const double p99 = quantile(total.latenciesMs, 0.99);
        if (!quiet) {
            std::printf("phlogon_client: %s threads=%d count=%d/thread\n", cmd.c_str(), nThreads,
                        count);
            std::printf("  ok=%llu failed=%llu retried=%llu wall=%.2fs rate=%.1f req/s\n",
                        static_cast<unsigned long long>(total.ok),
                        static_cast<unsigned long long>(total.failed),
                        static_cast<unsigned long long>(total.retried), wallS,
                        wallS > 0 ? static_cast<double>(total.ok) / wallS : 0.0);
            std::printf("  latency ms: p50=%.2f p95=%.2f p99=%.2f\n", p50, p95, p99);
        }
        if (total.failed > 0) return 1;
        if (assertP95Ms > 0 && p95 > assertP95Ms) {
            std::fprintf(stderr, "phlogon_client: p95 %.2f ms exceeds budget %.2f ms\n", p95,
                         assertP95Ms);
            return 3;
        }
        return 0;
    }
    return usage();
}
