// phlogon_top — live terminal dashboard for a running phlogond.
//
//   phlogon_top (--socket PATH | --tcp PORT) [--interval-ms N] [--once]
//
// Polls the daemon's "status" request and renders the operator's view:
// request rate and windowed latency quantiles, queue depth and worker
// utilization, cache hit rate, the per-job-type trailing-window breakdown
// (wall p50/p95/p99 plus queue-wait p95, so slow jobs and starved jobs
// read differently), and a tail of recently finished jobs with slow ones
// flagged.  Everything shown comes from the windowed histograms — it is
// the last ~60 s, not lifetime averages.
//
// --once prints a single snapshot without clearing the screen (CI logs,
// scripts); otherwise the screen is redrawn every --interval-ms (default
// 1000) until interrupted.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "service/protocol.hpp"

using namespace phlogon;
namespace json = io::json;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

struct Endpoint {
    std::string socketPath;
    int tcpPort = -1;
    int connect() const {
        return socketPath.empty() ? svc::connectTcp(tcpPort) : svc::connectUnix(socketPath);
    }
    std::string name() const {
        return socketPath.empty() ? "127.0.0.1:" + std::to_string(tcpPort) : socketPath;
    }
};

int usage() {
    std::fprintf(stderr,
                 "usage: phlogon_top (--socket PATH | --tcp PORT)\n"
                 "                   [--interval-ms N] [--once] [--slow-ms X]\n");
    return 2;
}

std::string fmtMs(double ms) {
    char buf[32];
    if (ms >= 1000.0)
        std::snprintf(buf, sizeof buf, "%.2fs", ms / 1e3);
    else if (ms >= 1.0)
        std::snprintf(buf, sizeof buf, "%.1fms", ms);
    else
        std::snprintf(buf, sizeof buf, "%.0fus", ms * 1e3);
    return buf;
}

/// One poll + render.  Returns false when the daemon is unreachable (the
/// loop keeps trying; --once exits non-zero).
bool renderOnce(const Endpoint& ep, double slowMs, bool clearScreen) {
    const int fd = ep.connect();
    if (fd < 0) {
        std::printf("phlogon_top: cannot connect to %s\n", ep.name().c_str());
        return false;
    }
    const std::string reply = svc::roundTrip(fd, "{\"type\": \"status\", \"id\": 1}");
    ::close(fd);
    const json::ParseResult parsed = json::parse(reply);
    if (!parsed.ok || !parsed.value.fieldBool("ok", false)) {
        std::printf("phlogon_top: bad status reply from %s\n", ep.name().c_str());
        return false;
    }
    const json::Value* st = parsed.value.field("status");
    if (!st) {
        std::printf("phlogon_top: status reply carries no status object\n");
        return false;
    }

    if (clearScreen) std::printf("\033[H\033[2J");

    std::printf("phlogond @ %s    up %.1fs\n", ep.name().c_str(),
                st->fieldNumber("uptimeSeconds", 0.0));

    const json::Value* lat = st->field("latency");
    if (lat) {
        std::printf(
            "requests  %.1f req/s over %.0fs window  p50 %s  p95 %s  p99 %s  (n=%.0f)\n",
            lat->fieldNumber("ratePerSec", 0.0), lat->fieldNumber("windowSeconds", 0.0),
            fmtMs(lat->fieldNumber("p50Ms", 0.0)).c_str(),
            fmtMs(lat->fieldNumber("p95Ms", 0.0)).c_str(),
            fmtMs(lat->fieldNumber("p99Ms", 0.0)).c_str(), lat->fieldNumber("count", 0.0));
    }

    const json::Value* q = st->field("queue");
    if (q) {
        const double workers = q->fieldNumber("workers", 0.0);
        const double running = q->fieldNumber("running", 0.0);
        const double util = workers > 0 ? 100.0 * running / workers : 0.0;
        std::printf(
            "queue     depth %.0f  running %.0f/%.0f workers (%.0f%% busy)  "
            "submitted %.0f  rejected %.0f  failed %.0f\n",
            q->fieldNumber("depth", 0.0), running, workers, util,
            q->fieldNumber("submitted", 0.0), q->fieldNumber("rejected", 0.0),
            q->fieldNumber("failed", 0.0));
    }

    const json::Value* c = st->field("cache");
    if (c && c->fieldBool("enabled", false)) {
        std::printf("cache     hits %.0f  misses %.0f  hit rate %.1f%%\n",
                    c->fieldNumber("hits", 0.0), c->fieldNumber("misses", 0.0),
                    100.0 * c->fieldNumber("hitRate", 0.0));
    }

    const json::Value* windows = st->field("window");
    if (windows && windows->obj && !windows->obj->empty()) {
        std::size_t width = 12;
        for (const auto& [type, tv] : *windows->obj) width = std::max(width, type.size());
        const int w = static_cast<int>(width);
        std::printf("\n%-*s %6s %8s %9s %9s %9s %9s %11s\n", w, "job type", "n", "rate",
                    "p50", "p95", "p99", "max", "queue p95");
        for (const auto& [type, tv] : *windows->obj) {
            std::printf("%-*s %6.0f %6.1f/s %9s %9s %9s %9s %11s\n", w, type.c_str(),
                        tv.fieldNumber("n", 0.0), tv.fieldNumber("ratePerSec", 0.0),
                        fmtMs(tv.fieldNumber("p50Ms", 0.0)).c_str(),
                        fmtMs(tv.fieldNumber("p95Ms", 0.0)).c_str(),
                        fmtMs(tv.fieldNumber("p99Ms", 0.0)).c_str(),
                        fmtMs(tv.fieldNumber("maxMs", 0.0)).c_str(),
                        fmtMs(tv.fieldNumber("queueWaitP95Ms", 0.0)).c_str());
        }
    }

    const json::Value* recent = st->field("recent");
    if (recent && recent->arr && !recent->arr->empty()) {
        std::printf("\nrecent jobs (oldest first, SLOW >= %s):\n", fmtMs(slowMs).c_str());
        for (const json::Value& j : *recent->arr) {
            const double runMs = j.fieldNumber("runMs", 0.0);
            const std::string traceId = j.fieldString("traceId", "");
            std::printf("  #%-5.0f %-22s %-10s queued %-8s run %-8s%s%s%s\n",
                        j.fieldNumber("job", 0.0), j.fieldString("type", "?").c_str(),
                        j.fieldString("state", "?").c_str(),
                        fmtMs(j.fieldNumber("queuedMs", 0.0)).c_str(), fmtMs(runMs).c_str(),
                        traceId.empty() ? "" : " trace=",
                        traceId.c_str(), runMs >= slowMs ? "  SLOW" : "");
        }
    }
    std::fflush(stdout);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    Endpoint ep;
    int intervalMs = 1000;
    bool once = false;
    double slowMs = 1000.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) std::exit(usage());
            return argv[++i];
        };
        if (arg == "--socket") ep.socketPath = next();
        else if (arg == "--tcp") ep.tcpPort = std::atoi(next());
        else if (arg == "--interval-ms") intervalMs = std::max(50, std::atoi(next()));
        else if (arg == "--once") once = true;
        else if (arg == "--slow-ms") slowMs = std::atof(next());
        else if (arg == "--help" || arg == "-h") return usage();
        else return usage();
    }
    if (ep.socketPath.empty() && ep.tcpPort < 0) return usage();

    if (once) return renderOnce(ep, slowMs, false) ? 0 : 1;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop) {
        renderOnce(ep, slowMs, true);
        for (int waited = 0; waited < intervalMs && !g_stop; waited += 50)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("\n");
    return 0;
}
