// phlogon_trace — summarize and merge Chrome trace-event JSON files written
// by the tracer (PHLOGON_TRACE=out.json).
//
//   phlogon_trace summarize <file.json>     per-span-name breakdown: count,
//                                           total/self/avg wall time, % of
//                                           traced time, over all threads
//   phlogon_trace merge <out.json> <in>...  concatenate traces; thread ids
//                                           are remapped per input file so
//                                           runs don't collide in Perfetto

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_read.hpp"

using namespace phlogon;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: phlogon_trace summarize <trace.json>\n"
                 "       phlogon_trace merge <out.json> <in.json>...\n");
    return 2;
}

std::string fmtUs(double us) {
    char buf[48];
    if (us >= 1e6)
        std::snprintf(buf, sizeof buf, "%.3fs", us / 1e6);
    else if (us >= 1e3)
        std::snprintf(buf, sizeof buf, "%.3fms", us / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.1fus", us);
    return buf;
}

struct NameStats {
    std::uint64_t count = 0;
    double totalUs = 0.0;   ///< inclusive (span duration)
    double selfUs = 0.0;    ///< exclusive (minus direct children)
    double maxUs = 0.0;
};

int summarize(const char* file) {
    const obs::ParsedTrace trace = obs::readChromeTraceFile(file);
    if (!trace.ok) {
        std::fprintf(stderr, "phlogon_trace: %s: %s\n", file, trace.error.c_str());
        return 1;
    }

    std::map<std::string, NameStats> byName;
    std::map<std::string, std::uint64_t> instants;
    double tracedUs = 0.0;  // sum of root-span durations = total traced time
    std::size_t spanCount = 0;

    for (const std::int64_t tid : trace.spanThreadIds()) {
        // Reconstruct nesting from interval containment (spansForThread sorts
        // parents before children), charging each span's duration against its
        // parent's self time.
        const std::vector<obs::ParsedEvent> spans = trace.spansForThread(tid);
        struct Open {
            const obs::ParsedEvent* span;
            double childUs = 0.0;
        };
        std::vector<Open> stack;
        auto close = [&](const Open& o) {
            NameStats& s = byName[o.span->name];
            s.count += 1;
            s.totalUs += o.span->durUs;
            s.selfUs += std::max(0.0, o.span->durUs - o.childUs);
            s.maxUs = std::max(s.maxUs, o.span->durUs);
        };
        for (const obs::ParsedEvent& e : spans) {
            ++spanCount;
            while (!stack.empty() &&
                   e.tsUs >= stack.back().span->tsUs + stack.back().span->durUs) {
                close(stack.back());
                stack.pop_back();
            }
            if (stack.empty())
                tracedUs += e.durUs;
            else
                stack.back().childUs += e.durUs;
            stack.push_back({&e});
        }
        while (!stack.empty()) {
            close(stack.back());
            stack.pop_back();
        }
    }
    for (const obs::ParsedEvent& e : trace.events)
        if (e.ph == "i" || e.ph == "I") ++instants[e.name];

    std::printf("%s: %zu spans on %zu threads", file, spanCount,
                trace.spanThreadIds().size());
    if (trace.droppedEvents) {
        std::printf(", %llu DROPPED",
                    static_cast<unsigned long long>(trace.droppedEvents));
    }
    std::printf(", traced %s\n\n", fmtUs(tracedUs).c_str());

    std::size_t width = 18;
    for (const auto& [name, s] : byName) width = std::max(width, name.size());
    const int w = static_cast<int>(width);

    // Sort by total time descending — the expensive spans lead.
    std::vector<std::pair<std::string, NameStats>> rows(byName.begin(), byName.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second.totalUs > b.second.totalUs;
    });

    std::printf("%-*s %8s %12s %12s %12s %12s %7s\n", w, "span", "count", "total",
                "self", "avg", "max", "%total");
    for (const auto& [name, s] : rows) {
        const double avg = s.count ? s.totalUs / static_cast<double>(s.count) : 0.0;
        const double pct = tracedUs > 0.0 ? 100.0 * s.totalUs / tracedUs : 0.0;
        std::printf("%-*s %8llu %12s %12s %12s %12s %6.1f%%\n", w, name.c_str(),
                    static_cast<unsigned long long>(s.count), fmtUs(s.totalUs).c_str(),
                    fmtUs(s.selfUs).c_str(), fmtUs(avg).c_str(), fmtUs(s.maxUs).c_str(),
                    pct);
    }
    if (!instants.empty()) {
        std::printf("\n%-*s %8s\n", w, "instant", "count");
        for (const auto& [name, n] : instants)
            std::printf("%-*s %8llu\n", w, name.c_str(),
                        static_cast<unsigned long long>(n));
    }
    return 0;
}

void appendEscaped(std::string& out, const std::string& s) {
    for (char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
}

int merge(const char* outPath, const std::vector<const char*>& inputs) {
    std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::uint64_t dropped = 0;
    std::int64_t tidBase = 0;

    for (const char* file : inputs) {
        const obs::ParsedTrace trace = obs::readChromeTraceFile(file);
        if (!trace.ok) {
            std::fprintf(stderr, "phlogon_trace: %s: %s\n", file, trace.error.c_str());
            return 1;
        }
        dropped += trace.droppedEvents;

        // Remap this file's tids to a disjoint range; keep relative order so
        // "main" from each run stays at the top of its block.
        std::map<std::int64_t, std::int64_t> tidMap;
        auto mapped = [&](std::int64_t tid) {
            const auto [it, inserted] =
                tidMap.emplace(tid, tidBase + static_cast<std::int64_t>(tidMap.size()));
            (void)inserted;
            return it->second;
        };

        char buf[64];
        for (const auto& [tid, name] : trace.threads) {
            if (!first) json += ",";
            first = false;
            json += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
            std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(mapped(tid)));
            json += buf;
            json += ",\"args\":{\"name\":\"";
            appendEscaped(json, name);
            json += " [";
            appendEscaped(json, file);
            json += "]\"}}";
        }
        for (const obs::ParsedEvent& e : trace.events) {
            if (!first) json += ",";
            first = false;
            json += "{\"ph\":\"";
            appendEscaped(json, e.ph);
            json += "\",\"name\":\"";
            appendEscaped(json, e.name);
            json += "\",\"cat\":\"";
            appendEscaped(json, e.cat.empty() ? std::string("trace") : e.cat);
            json += "\",\"pid\":1,\"tid\":";
            std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(mapped(e.tid)));
            json += buf;
            std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", e.tsUs);
            json += buf;
            if (e.ph == "X") {
                std::snprintf(buf, sizeof buf, ",\"dur\":%.3f", e.durUs);
                json += buf;
            } else if (e.ph == "i" || e.ph == "I") {
                json += ",\"s\":\"t\"";
            }
            json += "}";
        }
        tidBase += static_cast<std::int64_t>(tidMap.size());
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "],\"otherData\":{\"droppedEvents\":%llu}}",
                  static_cast<unsigned long long>(dropped));
    json += buf;

    std::FILE* f = std::fopen(outPath, "wb");
    if (!f) {
        std::fprintf(stderr, "phlogon_trace: cannot write %s\n", outPath);
        return 1;
    }
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok) {
        std::fprintf(stderr, "phlogon_trace: short write to %s\n", outPath);
        return 1;
    }
    std::printf("merged %zu file(s) -> %s\n", inputs.size(), outPath);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "summarize") {
        if (argc != 3) return usage();
        return summarize(argv[2]);
    }
    if (cmd == "merge") {
        if (argc < 4) return usage();
        std::vector<const char*> inputs(argv + 3, argv + argc);
        return merge(argv[2], inputs);
    }
    return usage();
}
