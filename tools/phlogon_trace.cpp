// phlogon_trace — summarize and merge Chrome trace-event JSON files written
// by the tracer (PHLOGON_TRACE=out.json).
//
//   phlogon_trace summarize <file.json>     per-span-name breakdown: count,
//       [--trace ID] [--job N]              total/self/avg wall time, % of
//                                           traced time, over all threads;
//                                           filters restrict to one client
//                                           trace id / one job's spans
//   phlogon_trace merge <out.json> <in>...  concatenate traces; thread ids
//                                           are remapped per input file so
//                                           runs don't collide in Perfetto;
//                                           args (traceId/job) and flow ids
//                                           survive the merge

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_read.hpp"

using namespace phlogon;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: phlogon_trace summarize <trace.json> [--trace ID] [--job N]\n"
                 "       phlogon_trace merge <out.json> <in.json>...\n");
    return 2;
}

struct SummarizeFilter {
    std::string traceId;       ///< keep only events with args.traceId == this
    std::uint64_t jobId = 0;   ///< keep only events with args.job == this
    bool active() const { return !traceId.empty() || jobId != 0; }
    bool keep(const obs::ParsedEvent& e) const {
        if (!traceId.empty() && e.traceId != traceId) return false;
        if (jobId != 0 && e.jobId != jobId) return false;
        return true;
    }
};

std::string fmtUs(double us) {
    char buf[48];
    if (us >= 1e6)
        std::snprintf(buf, sizeof buf, "%.3fs", us / 1e6);
    else if (us >= 1e3)
        std::snprintf(buf, sizeof buf, "%.3fms", us / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.1fus", us);
    return buf;
}

struct NameStats {
    std::uint64_t count = 0;
    double totalUs = 0.0;   ///< inclusive (span duration)
    double selfUs = 0.0;    ///< exclusive (minus direct children)
    double maxUs = 0.0;
};

int summarize(const char* file, const SummarizeFilter& filter) {
    obs::ParsedTrace trace = obs::readChromeTraceFile(file);
    if (!trace.ok) {
        std::fprintf(stderr, "phlogon_trace: %s: %s\n", file, trace.error.c_str());
        return 1;
    }
    if (filter.active()) {
        std::vector<obs::ParsedEvent> kept;
        kept.reserve(trace.events.size());
        for (const obs::ParsedEvent& e : trace.events)
            if (filter.keep(e)) kept.push_back(e);
        trace.events = std::move(kept);
    }

    std::map<std::string, NameStats> byName;
    std::map<std::string, std::uint64_t> instants;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> flows;  // name -> (starts, finishes)
    double tracedUs = 0.0;  // sum of root-span durations = total traced time
    std::size_t spanCount = 0;

    for (const std::int64_t tid : trace.spanThreadIds()) {
        // Reconstruct nesting from interval containment (spansForThread sorts
        // parents before children), charging each span's duration against its
        // parent's self time.
        const std::vector<obs::ParsedEvent> spans = trace.spansForThread(tid);
        struct Open {
            const obs::ParsedEvent* span;
            double childUs = 0.0;
        };
        std::vector<Open> stack;
        auto close = [&](const Open& o) {
            NameStats& s = byName[o.span->name];
            s.count += 1;
            s.totalUs += o.span->durUs;
            s.selfUs += std::max(0.0, o.span->durUs - o.childUs);
            s.maxUs = std::max(s.maxUs, o.span->durUs);
        };
        for (const obs::ParsedEvent& e : spans) {
            ++spanCount;
            while (!stack.empty() &&
                   e.tsUs >= stack.back().span->tsUs + stack.back().span->durUs) {
                close(stack.back());
                stack.pop_back();
            }
            if (stack.empty())
                tracedUs += e.durUs;
            else
                stack.back().childUs += e.durUs;
            stack.push_back({&e});
        }
        while (!stack.empty()) {
            close(stack.back());
            stack.pop_back();
        }
    }
    for (const obs::ParsedEvent& e : trace.events) {
        if (e.ph == "i" || e.ph == "I") ++instants[e.name];
        if (e.ph == "s") ++flows[e.name].first;
        if (e.ph == "f") ++flows[e.name].second;
    }

    std::printf("%s: %zu spans on %zu threads", file, spanCount,
                trace.spanThreadIds().size());
    if (filter.active()) {
        std::printf(" (filtered");
        if (!filter.traceId.empty()) std::printf(" trace=%s", filter.traceId.c_str());
        if (filter.jobId != 0)
            std::printf(" job=%llu", static_cast<unsigned long long>(filter.jobId));
        std::printf(")");
    }
    if (trace.droppedEvents) {
        std::printf(", %llu DROPPED",
                    static_cast<unsigned long long>(trace.droppedEvents));
    }
    std::printf(", traced %s\n\n", fmtUs(tracedUs).c_str());

    std::size_t width = 18;
    for (const auto& [name, s] : byName) width = std::max(width, name.size());
    const int w = static_cast<int>(width);

    // Sort by total time descending — the expensive spans lead.
    std::vector<std::pair<std::string, NameStats>> rows(byName.begin(), byName.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second.totalUs > b.second.totalUs;
    });

    std::printf("%-*s %8s %12s %12s %12s %12s %7s\n", w, "span", "count", "total",
                "self", "avg", "max", "%total");
    for (const auto& [name, s] : rows) {
        const double avg = s.count ? s.totalUs / static_cast<double>(s.count) : 0.0;
        const double pct = tracedUs > 0.0 ? 100.0 * s.totalUs / tracedUs : 0.0;
        std::printf("%-*s %8llu %12s %12s %12s %12s %6.1f%%\n", w, name.c_str(),
                    static_cast<unsigned long long>(s.count), fmtUs(s.totalUs).c_str(),
                    fmtUs(s.selfUs).c_str(), fmtUs(avg).c_str(), fmtUs(s.maxUs).c_str(),
                    pct);
    }
    if (!instants.empty()) {
        std::printf("\n%-*s %8s\n", w, "instant", "count");
        for (const auto& [name, n] : instants)
            std::printf("%-*s %8llu\n", w, name.c_str(),
                        static_cast<unsigned long long>(n));
    }
    if (!flows.empty()) {
        std::printf("\n%-*s %8s %8s\n", w, "flow", "starts", "finishes");
        for (const auto& [name, n] : flows)
            std::printf("%-*s %8llu %8llu\n", w, name.c_str(),
                        static_cast<unsigned long long>(n.first),
                        static_cast<unsigned long long>(n.second));
    }
    return 0;
}

int merge(const char* outPath, const std::vector<const char*>& inputs) {
    // The merge itself lives in obs::mergeChromeTraces so the golden tests
    // and the daemon-restart acceptance test share it with this tool.
    std::vector<std::filesystem::path> paths(inputs.begin(), inputs.end());
    std::string error;
    const std::string json = obs::mergeChromeTraces(paths, &error);
    if (json.empty()) {
        std::fprintf(stderr, "phlogon_trace: %s\n", error.c_str());
        return 1;
    }

    std::FILE* f = std::fopen(outPath, "wb");
    if (!f) {
        std::fprintf(stderr, "phlogon_trace: cannot write %s\n", outPath);
        return 1;
    }
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok) {
        std::fprintf(stderr, "phlogon_trace: short write to %s\n", outPath);
        return 1;
    }
    std::printf("merged %zu file(s) -> %s\n", inputs.size(), outPath);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "summarize") {
        if (argc < 3) return usage();
        SummarizeFilter filter;
        const char* file = nullptr;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--trace" && i + 1 < argc) {
                filter.traceId = argv[++i];
            } else if (arg == "--job" && i + 1 < argc) {
                filter.jobId = std::strtoull(argv[++i], nullptr, 10);
            } else if (!file) {
                file = argv[i];
            } else {
                return usage();
            }
        }
        if (!file) return usage();
        return summarize(file, filter);
    }
    if (cmd == "merge") {
        if (argc < 4) return usage();
        std::vector<const char*> inputs(argv + 3, argv + argc);
        return merge(argv[2], inputs);
    }
    return usage();
}
