// phlogond — the long-running characterization/simulation service.
//
//   phlogond --socket /tmp/phlogond.sock --workers 2 --cache /tmp/cache
//            --ckpt /tmp/ckpt
//
// Serves the analysis request types (characterize-latch,
// locking-range-sweep, hold-error-mc, fsm-transient) plus control requests
// (status, list-jobs, job-status, cancel, shutdown, ping) over
// length-prefixed JSON frames; see DESIGN.md §16 and tools/phlogon_client.
// SIGINT/SIGTERM drain gracefully: queued jobs are cancelled, running jobs
// write their checkpoint and stop, the daemon exits 0.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.hpp"
#include "service/daemon.hpp"
#include "service/shutdown.hpp"

namespace {

void usage() {
    std::printf(
        "usage: phlogond [options]\n"
        "  --socket PATH     Unix-domain socket to listen on\n"
        "  --tcp PORT        also listen on 127.0.0.1:PORT (0 = ephemeral)\n"
        "  --workers N       job-queue worker threads (default 2)\n"
        "  --depth N         queued-job bound before rejection (default 64)\n"
        "  --retry-ms N      retry-after hint on rejection (default 200)\n"
        "  --cache DIR       artifact cache directory (default $PHLOGON_CACHE_DIR)\n"
        "  --cache-max-mb N  cache size bound (default 256)\n"
        "  --ckpt DIR        checkpoint directory for long jobs (default off)\n"
        "  --log PATH        structured JSON-lines log sink (also $PHLOGON_LOG;\n"
        "                    \"-\" = stderr)\n"
        "  --log-level LVL   debug|info|warn|error (default info)\n"
        "  --slow-ms N       jobs running >= N ms get a service.job.slow warn\n"
        "                    record (default 1000)\n"
        "At least one of --socket/--tcp is required.\n");
}

}  // namespace

int main(int argc, char** argv) {
    using namespace phlogon;
    svc::DaemonOptions opt;
    if (const char* env = std::getenv("PHLOGON_CACHE_DIR"); env && *env) opt.cacheDir = env;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "phlogond: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socketPath = next();
        } else if (arg == "--tcp") {
            opt.tcpPort = std::atoi(next());
        } else if (arg == "--workers") {
            opt.queue.workers = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--depth") {
            opt.queue.maxDepth = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--retry-ms") {
            opt.queue.retryAfterMs = std::atoi(next());
        } else if (arg == "--cache") {
            opt.cacheDir = next();
        } else if (arg == "--cache-max-mb") {
            opt.cacheMaxBytes = static_cast<std::uintmax_t>(std::atof(next()) * 1024.0 * 1024.0);
        } else if (arg == "--ckpt") {
            opt.checkpointDir = next();
        } else if (arg == "--log") {
            // The logger reads these lazily at the first log call, so the
            // flags are just a spelling of the environment contract.
            ::setenv("PHLOGON_LOG", next(), 1);
        } else if (arg == "--log-level") {
            ::setenv("PHLOGON_LOG_LEVEL", next(), 1);
        } else if (arg == "--slow-ms") {
            opt.slowJobMs = std::atof(next());
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "phlogond: unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }
    if (opt.socketPath.empty() && opt.tcpPort < 0) {
        usage();
        return 2;
    }

    svc::ShutdownSignal::instance().install();
    svc::Daemon daemon(opt);
    if (!daemon.start()) {
        std::fprintf(stderr, "phlogond: %s\n", daemon.lastError().c_str());
        return 1;
    }
    if (!opt.socketPath.empty()) std::printf("phlogond: listening on %s\n", opt.socketPath.c_str());
    if (daemon.tcpPort() >= 0) std::printf("phlogond: listening on 127.0.0.1:%d\n", daemon.tcpPort());
    std::printf("phlogond: workers=%zu depth=%zu cache=%s ckpt=%s\n", opt.queue.workers,
                opt.queue.maxDepth,
                opt.cacheDir.empty() ? "(off)" : opt.cacheDir.string().c_str(),
                opt.checkpointDir.empty() ? "(off)" : opt.checkpointDir.string().c_str());
    std::fflush(stdout);

    const int rc = daemon.run();

    const svc::DaemonStats st = daemon.stats();
    std::printf("phlogond: served %llu requests (%llu errors, %llu bad frames) on %llu connections\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.errors),
                static_cast<unsigned long long>(st.badFrames),
                static_cast<unsigned long long>(st.connections));
    obs::maybePrintRunReport(stdout);
    return rc;
}
